#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [extra cargo args]
#
# The gate is hermetic: every external dependency is vendored under
# stubs/ and patched in by the workspace Cargo.toml, so builds resolve
# entirely against the committed Cargo.lock. --offline --locked is
# baked in to guarantee cargo never tries to reach a registry (machines
# without registry access used to die re-resolving on DNS).
set -euo pipefail
cd "$(dirname "$0")/.."

HERMETIC=(--offline --locked)

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets "${HERMETIC[@]}" "$@" -- -D warnings

echo "==> cargo test"
cargo test --workspace -q "${HERMETIC[@]}" "$@"

echo "==> serve_load --smoke (serving-path gate: admission + deadlines + shedding)"
cargo run --release -p trinity-bench --bin serve_load "${HERMETIC[@]}" "$@" -- --smoke

echo "==> chaos --smoke (fault-injection gate: 3 pinned seeds, run + replay)"
cargo run --release -p trinity-bench --bin chaos_smoke "${HERMETIC[@]}" "$@" -- --smoke

echo "==> cache_traversal --smoke (remote-read cache gate: warm hits + envelope reduction + trace critical path)"
cargo run --release -p trinity-bench --bin cache_traversal "${HERMETIC[@]}" "$@" -- --smoke \
    --metrics-out results/cache_traversal.metrics.json \
    --trace-out results/cache_traversal.trace.json

echo "==> scaleout --smoke (elastic gate: zero failed ops across an online join + rebalance convergence)"
cargo run --release -p trinity-bench --bin scaleout "${HERMETIC[@]}" "$@" -- --smoke \
    --metrics-out results/scaleout.metrics.json

echo "==> freshness --smoke (streaming gate: zero oracle divergences + incremental beats full recompute at ~1% dirty)"
cargo run --release -p trinity-bench --bin freshness "${HERMETIC[@]}" "$@" -- --smoke \
    --metrics-out results/freshness.metrics.json

echo "==> e13_residency (tiering model: residency table + schedule peak-bytes check)"
cargo run --release -p trinity-bench --bin e13_residency "${HERMETIC[@]}" "$@"

echo "==> tiering --smoke (out-of-core gate: 2x-budget wall within 2.5x resident, prefetch >=80%, chaos seeds clean)"
cargo run --release -p trinity-bench --bin tiering "${HERMETIC[@]}" "$@" -- --smoke \
    --metrics-out results/tiering.metrics.json

echo "==> metrics_check (observability gate: exported artifacts schema-validate)"
cargo run --release -p trinity-bench --bin metrics_check "${HERMETIC[@]}" "$@" -- \
    results/cache_traversal.metrics.json results/cache_traversal.trace.json \
    results/scaleout.metrics.json results/freshness.metrics.json \
    results/tiering.metrics.json

echo "==> chaos --force-fail (postmortem gate: a failing run must leave a flight dump)"
TRINITY_FLIGHT_DIR=results/flight \
    cargo run --release -p trinity-bench --bin chaos_smoke "${HERMETIC[@]}" "$@" -- --force-fail
cargo run --release -p trinity-bench --bin metrics_check "${HERMETIC[@]}" "$@" -- \
    results/flight/sabotaged-seed2989.flight.json

echo "==> bsp_scaling --smoke (worker-pool gate: bit-identical results across thread counts)"
cargo run --release -p trinity-bench --bin bsp_scaling "${HERMETIC[@]}" "$@" -- --smoke

echo "==> bsp determinism suite, serial harness + stressed pool width"
# RUST_TEST_THREADS=1 keeps the test harness from adding its own
# parallelism so the worker pool is the only source of threading;
# TRINITY_STRESS_THREADS=8 widens every pool past the trunk count to
# stress the sharded inbox handoff.
RUST_TEST_THREADS=1 TRINITY_STRESS_THREADS=8 \
    cargo test -q "${HERMETIC[@]}" "$@" --test bsp_determinism

echo "All checks passed."
