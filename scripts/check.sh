#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [extra cargo args]
#
# The gate is hermetic: every external dependency is vendored under
# stubs/ and patched in by the workspace Cargo.toml, so builds resolve
# entirely against the committed Cargo.lock. --offline --locked is
# baked in to guarantee cargo never tries to reach a registry (machines
# without registry access used to die re-resolving on DNS).
set -euo pipefail
cd "$(dirname "$0")/.."

HERMETIC=(--offline --locked)

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets "${HERMETIC[@]}" "$@" -- -D warnings

echo "==> cargo test"
cargo test --workspace -q "${HERMETIC[@]}" "$@"

echo "==> serve_load --smoke (serving-path gate: admission + deadlines + shedding)"
cargo run --release -p trinity-bench --bin serve_load "${HERMETIC[@]}" "$@" -- --smoke

echo "==> chaos --smoke (fault-injection gate: 3 pinned seeds, run + replay)"
cargo run --release -p trinity-bench --bin chaos_smoke "${HERMETIC[@]}" "$@" -- --smoke

echo "==> cache_traversal --smoke (remote-read cache gate: warm hits + envelope reduction)"
cargo run --release -p trinity-bench --bin cache_traversal "${HERMETIC[@]}" "$@" -- --smoke

echo "All checks passed."
