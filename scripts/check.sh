#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the full test suite.
# Usage: scripts/check.sh [extra cargo args, e.g. --offline]
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets "$@" -- -D warnings

echo "==> cargo test"
cargo test --workspace -q "$@"

echo "==> serve_load --smoke (serving-path gate: admission + deadlines + shedding)"
cargo run --release -p trinity-bench --bin serve_load "$@" -- --smoke

echo "==> chaos --smoke (fault-injection gate: 3 pinned seeds, run + replay)"
cargo run --release -p trinity-bench --bin chaos_smoke "$@" -- --smoke

echo "All checks passed."
