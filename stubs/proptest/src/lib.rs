//! Dev-only functional mini-proptest: seeded random generation, no
//! shrinking. Covers exactly the API surface the workspace's tests use.

pub mod test_runner {
    /// Deterministic splitmix64 generator.
    pub struct Rng(u64);

    impl Rng {
        pub fn new(seed: u64) -> Self {
            Rng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n > 0`.
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::Rng;

    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut Rng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> Box<dyn Strategy<Value = Self::Value>>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            (**self).generate(rng)
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut Rng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut Rng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies of one value type.
    pub struct OneOf<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> OneOf<V> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum::<u64>().max(1);
            OneOf { arms, total }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn generate(&self, rng: &mut Rng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.arms.last().expect("prop_oneof of no arms").1.generate(rng)
        }
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `any::<T>()` marker strategy.
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(std::marker::PhantomData)
        }
    }

    impl<T> Copy for Any<T> {}

    pub fn any<T>() -> Any<T>
    where
        Any<T>: Strategy,
    {
        Any(std::marker::PhantomData)
    }

    macro_rules! any_int {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut Rng) -> $t {
                    // Mix in small values: edge-heavy distributions find
                    // more bugs than uniform bits.
                    match rng.below(4) {
                        0 => (rng.below(16) as i64 - 8) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }
    any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut Rng) -> bool {
            rng.below(2) == 1
        }
    }

    impl Strategy for Any<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut Rng) -> f32 {
            f64::from_bits(rng.next_u64()) as f32
        }
    }

    impl Strategy for Any<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut Rng) -> f64 {
            match rng.below(4) {
                0 => rng.below(1000) as f64 / 10.0,
                _ => f64::from_bits(rng.next_u64()),
            }
        }
    }

    impl<A: Strategy> Strategy for (A,) {
        type Value = (A::Value,);
        fn generate(&self, rng: &mut Rng) -> Self::Value {
            (self.0.generate(rng),)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $S:ident),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut Rng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K)
        (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H, 8 I, 9 J, 10 K, 11 L)
    }

    /// String strategies from `"[class]{m,n}"` patterns (the only regex
    /// shape the workspace uses). Unrecognized patterns yield themselves.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut Rng) -> String {
            match parse_pattern(self) {
                Some((chars, lo, hi)) if !chars.is_empty() => {
                    let n = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..n).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
                }
                _ => (*self).to_string(),
            }
        }
    }

    fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut chars = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i] as u32, class[i + 2] as u32);
                for c in a..=b {
                    chars.push(char::from_u32(c)?);
                }
                i += 3;
            } else {
                chars.push(class[i]);
                i += 1;
            }
        }
        let reps = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match reps.split_once(',') {
            Some((l, h)) => (l.trim().parse().ok()?, h.trim().parse().ok()?),
            None => {
                let n = reps.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((chars, lo, hi))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;
    use std::ops::Range;

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    #[derive(Clone)]
    pub struct OptionStrategy<S>(S);

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut Rng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::Rng;

    #[derive(Clone)]
    pub struct Uniform4<S>(S);

    pub fn uniform4<S: Strategy>(inner: S) -> Uniform4<S> {
        Uniform4(inner)
    }

    impl<S: Strategy> Strategy for Uniform4<S> {
        type Value = [S::Value; 4];
        fn generate(&self, rng: &mut Rng) -> [S::Value; 4] {
            [
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
                self.0.generate(rng),
            ]
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// `Just` as used from the prelude is a constructor call `Just(v)`;
    /// the tuple struct doubles as one.
    pub use crate::strategy::Just;
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return ::std::result::Result::Err(format!(
                "{}: `{:?}` != `{:?}`",
                format!($($fmt)+),
                a,
                b
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($w as u32, $crate::strategy::Strategy::boxed($s))),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { (<$crate::test_runner::Config as ::std::default::Default>::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::Rng::new(0xb5ad4eceda1ce2a9);
            for case in 0..config.cases {
                let result: ::std::result::Result<(), ::std::string::String> = {
                    $(let $pat = $crate::strategy::Strategy::generate(&{ $strat }, &mut rng);)+
                    #[allow(unreachable_code)]
                    (|| {
                        { $body }
                        ::std::result::Result::Ok(())
                    })()
                };
                if let ::std::result::Result::Err(msg) = result {
                    panic!("proptest case {case} failed: {msg}");
                }
            }
        }
    )*};
}
