//! Dev-only stand-in for `parking_lot`, backed by `std::sync` with
//! poison-free semantics (panicking while holding a lock does not poison
//! it for later users). Only the API surface this workspace uses is
//! provided.

use std::time::{Duration, Instant};

fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
    match r {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<()>,
    data: std::cell::UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for Mutex<T> {}
unsafe impl<T: ?Sized + Send> Sync for Mutex<T> {}

pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    guard: Option<std::sync::MutexGuard<'a, ()>>,
}

unsafe impl<'a, T: ?Sized + Sync> Sync for MutexGuard<'a, T> {}

impl<T> Mutex<T> {
    pub const fn new(t: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(()), data: std::cell::UnsafeCell::new(t) }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard { mutex: self, guard: Some(unpoison(self.inner.lock())) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { mutex: self, guard: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { mutex: self, guard: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        debug_assert!(self.guard.is_some());
        unsafe { &*self.mutex.data.get() }
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        debug_assert!(self.guard.is_some());
        unsafe { &mut *self.mutex.data.get() }
    }
}

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<()>,
    data: std::cell::UnsafeCell<T>,
}

unsafe impl<T: ?Sized + Send> Send for RwLock<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for RwLock<T> {}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _guard: std::sync::RwLockReadGuard<'a, ()>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    lock: &'a RwLock<T>,
    _guard: std::sync::RwLockWriteGuard<'a, ()>,
}

unsafe impl<'a, T: ?Sized + Sync> Sync for RwLockReadGuard<'a, T> {}
unsafe impl<'a, T: ?Sized + Sync> Sync for RwLockWriteGuard<'a, T> {}

impl<T> RwLock<T> {
    pub const fn new(t: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(()), data: std::cell::UnsafeCell::new(t) }
    }

    pub fn into_inner(self) -> T {
        self.data.into_inner()
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard { lock: self, _guard: unpoison(self.inner.read()) }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard { lock: self, _guard: unpoison(self.inner.write()) }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { lock: self, _guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockReadGuard { lock: self, _guard: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { lock: self, _guard: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(RwLockWriteGuard { lock: self, _guard: p.into_inner() })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unsafe { &mut *self.data.get() }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockReadGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<'a, T: ?Sized> std::ops::Deref for RwLockWriteGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        unsafe { &*self.lock.data.get() }
    }
}

impl<'a, T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        unsafe { &mut *self.lock.data.get() }
    }
}

/// Condvar supporting parking_lot's `wait(&mut MutexGuard)` shape.
///
/// Implemented as a notify-epoch counter with a short poll, which is
/// semantically adequate (spurious wakeups are allowed) if less efficient
/// than the real thing.
pub struct Condvar {
    epoch: std::sync::Mutex<u64>,
    inner: std::sync::Condvar,
}

pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { epoch: std::sync::Mutex::new(0), inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        *unpoison(self.epoch.lock()) += 1;
        self.inner.notify_all();
    }

    pub fn notify_all(&self) {
        *unpoison(self.epoch.lock()) += 1;
        self.inner.notify_all();
    }

    pub fn wait<T: ?Sized>(&self, guard: &mut MutexGuard<'_, T>) {
        self.wait_core(guard, None);
    }

    pub fn wait_for<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        self.wait_core(guard, Some(Instant::now() + timeout))
    }

    pub fn wait_until<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        self.wait_core(guard, Some(deadline))
    }

    fn wait_core<T: ?Sized>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Option<Instant>,
    ) -> WaitTimeoutResult {
        // Record the epoch before releasing the caller's lock so a notify
        // racing with the release is not lost.
        let start = *unpoison(self.epoch.lock());
        let mutex = guard.mutex;
        guard.guard.take();
        let mut timed_out = false;
        {
            let mut ep = unpoison(self.epoch.lock());
            while *ep == start {
                match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            timed_out = true;
                            break;
                        }
                        ep = match self.inner.wait_timeout(ep, d - now) {
                            Ok((g, _)) => g,
                            Err(p) => p.into_inner().0,
                        };
                    }
                    None => ep = unpoison(self.inner.wait(ep)),
                }
            }
        }
        guard.guard = Some(unpoison(mutex.inner.lock()));
        WaitTimeoutResult(timed_out)
    }
}
