//! Dev-only offline stand-in for criterion: same surface as the subset the
//! benches use (groups, bench_function, iter/iter_batched, sample_size),
//! executing each closure a handful of times with rough wall-clock output.

use std::time::Instant;

pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.samples = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        BenchmarkGroup { c: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: self.samples,
            total_ns: 0,
            iters: 0,
        };
        f(&mut b);
        let per = if b.iters > 0 { b.total_ns / b.iters } else { 0 };
        println!("  {name}: ~{per} ns/iter ({} iters)", b.iters);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.c.bench_function(name, f);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    samples: usize,
    total_ns: u128,
    iters: u128,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        for _ in 0..self.samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }

    pub fn iter_batched<I, R, S: FnMut() -> I, F: FnMut(I) -> R>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        for _ in 0..self.samples {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.total_ns += t0.elapsed().as_nanos();
            self.iters += 1;
        }
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($t:path),+ $(,)?) => {
        fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($t(&mut c);)+
        }
    };
    ($name:ident, $($t:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($t(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
