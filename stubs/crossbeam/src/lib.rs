//! Dev-only stand-in for `crossbeam`, providing the multi-producer
//! multi-consumer channel subset this workspace uses.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: Mutex<State<T>>,
        cv: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    pub struct Sender<T>(Arc<Inner<T>>);
    pub struct Receiver<T>(Arc<Inner<T>>);

    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    fn unpoison<G>(r: Result<G, std::sync::PoisonError<G>>) -> G {
        match r {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(State { items: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender(Arc::clone(&inner)), Receiver(inner))
    }

    /// Capacity is ignored: the queue is unbounded. Fine for this
    /// workspace, which uses `bounded(1)` only as a one-shot mailbox.
    pub fn bounded<T>(_cap: usize) -> (Sender<T>, Receiver<T>) {
        unbounded()
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            unpoison(self.0.queue.lock()).senders += 1;
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            unpoison(self.0.queue.lock()).receivers += 1;
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = unpoison(self.0.queue.lock());
            st.senders -= 1;
            if st.senders == 0 {
                self.0.cv.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            unpoison(self.0.queue.lock()).receivers -= 1;
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = unpoison(self.0.queue.lock());
            if st.receivers == 0 {
                return Err(SendError(t));
            }
            st.items.push_back(t);
            drop(st);
            self.0.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = unpoison(self.0.queue.lock());
            loop {
                if let Some(t) = st.items.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = unpoison(self.0.cv.wait(st));
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = unpoison(self.0.queue.lock());
            loop {
                if let Some(t) = st.items.pop_front() {
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                st = match self.0.cv.wait_timeout(st, deadline - now) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = unpoison(self.0.queue.lock());
            match st.items.pop_front() {
                Some(t) => Ok(t),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn len(&self) -> usize {
            unpoison(self.0.queue.lock()).items.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
