//! Dev-only stand-in for `rand` 0.10 covering the subset this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::next_u64`, and the `RngExt`
//! convenience methods (`random`, `random_range`, `random_bool`).

pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    /// splitmix64 — statistically fine for simulation workloads and
    /// deterministic per seed, which is all the generators need.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed ^ 0x51c6_4e6d_30f9_5d3b }
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_u64(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable by [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + self.start as i128;
                v as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128 + lo as i128;
                v as $t
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::from_u64(rng.next_u64()) * (self.end - self.start)
    }
}

pub trait RngExt: Rng {
    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        f64::from_u64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}
