// Dev-only empty stub; real crate unavailable offline.
