//! The Trinity File System (TFS).
//!
//! Trinity backs its memory trunks up in "a shared distributed file system
//! called TFS (Trinity File System), which is similar to HDFS" (paper §3).
//! TFS is what makes the memory cloud fault tolerant:
//!
//! * every memory trunk has a persistent image in TFS, reloaded onto a
//!   surviving machine when its host fails;
//! * the primary addressing table is persisted in TFS before any update
//!   commits (§6.2);
//! * BSP checkpoints and asynchronous-computation snapshots are TFS files;
//! * leader election "marks a flag on the shared distributed fault-tolerant
//!   file system" to prevent split-brain (§6.2).
//!
//! The paper treats TFS as a given substrate; this crate implements the
//! closest equivalent that exercises the same code paths: a named blob
//! store replicated across `n` storage nodes with failure injection.
//! Files are placed on `replication` nodes chosen deterministically from
//! the file name; writes go to every live replica, reads return the
//! freshest live copy, and a heal pass re-replicates under-replicated
//! files — so any data written while at least one of its replicas survives
//! is durable, which is the property the recovery protocols in
//! `trinity-core` rely on.
//!
//! # Example
//!
//! ```
//! use trinity_tfs::{Tfs, TfsConfig};
//!
//! let tfs = Tfs::new(TfsConfig { nodes: 4, replication: 2 });
//! tfs.write("trunks/00000007", b"snapshot bytes").unwrap();
//! tfs.kill_node(0); // any single node may die
//! assert_eq!(tfs.read("trunks/00000007").unwrap(), b"snapshot bytes");
//! assert!(tfs.try_acquire_flag("leader", "machine-3"));
//! assert!(!tfs.try_acquire_flag("leader", "machine-5"));
//! ```

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;
use trinity_memstore::hash::mix64;

/// Errors returned by TFS operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TfsError {
    /// No such file (or all replicas are on dead nodes).
    NotFound(String),
    /// Every replica node for this file is currently dead, so the write
    /// cannot be made durable.
    NoLiveReplica(String),
    /// Node index out of range.
    NoSuchNode(usize),
    /// A conditional write lost its race: the file's current version is
    /// not the one the writer read (see [`Tfs::write_if_version`]).
    VersionMismatch {
        name: String,
        expected: u64,
        found: u64,
    },
}

impl fmt::Display for TfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TfsError::NotFound(n) => write!(f, "TFS file not found: {n}"),
            TfsError::NoLiveReplica(n) => write!(f, "no live replica node for TFS file: {n}"),
            TfsError::NoSuchNode(i) => write!(f, "no such TFS node: {i}"),
            TfsError::VersionMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "TFS conditional write of {name} lost: expected version {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for TfsError {}

/// TFS deployment shape.
#[derive(Debug, Clone, Copy)]
pub struct TfsConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Copies kept of every file (HDFS default is 3; tests often use 2).
    pub replication: usize,
}

impl Default for TfsConfig {
    fn default() -> Self {
        TfsConfig {
            nodes: 3,
            replication: 3,
        }
    }
}

#[derive(Debug, Default)]
struct Node {
    alive: bool,
    files: HashMap<String, (u64, Arc<Vec<u8>>)>,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Node>,
    replication: usize,
    /// Monotonic version stamp so revived nodes' stale copies lose.
    clock: u64,
    /// Election flags: flag name → owner.
    flags: HashMap<String, String>,
}

/// Handle to a TFS deployment. Cheap to clone; all clones address the same
/// file system (it is *shared* storage, like the HDFS cluster the paper
/// assumes).
#[derive(Debug, Clone)]
pub struct Tfs {
    inner: Arc<Mutex<Inner>>,
}

impl Tfs {
    /// Bring up a TFS deployment with all nodes alive.
    pub fn new(cfg: TfsConfig) -> Self {
        assert!(cfg.nodes >= 1, "TFS needs at least one node");
        let replication = cfg.replication.clamp(1, cfg.nodes);
        let nodes = (0..cfg.nodes)
            .map(|_| Node {
                alive: true,
                files: HashMap::new(),
            })
            .collect();
        Tfs {
            inner: Arc::new(Mutex::new(Inner {
                nodes,
                replication,
                clock: 0,
                flags: HashMap::new(),
            })),
        }
    }

    /// The replica node indices for `name` (deterministic placement:
    /// `replication` consecutive nodes starting at the name hash).
    pub fn placement(&self, name: &str) -> Vec<usize> {
        let inner = self.inner.lock();
        Self::placement_inner(&inner, name)
    }

    fn placement_inner(inner: &Inner, name: &str) -> Vec<usize> {
        let n = inner.nodes.len();
        let start = (mix64(fnv1a(name)) % n as u64) as usize;
        (0..inner.replication).map(|i| (start + i) % n).collect()
    }

    /// Write (create or replace) a file. The write is applied to every
    /// *live* replica node; it fails only if all replicas are dead.
    pub fn write(&self, name: &str, bytes: &[u8]) -> Result<(), TfsError> {
        let mut inner = self.inner.lock();
        let placement = Self::placement_inner(&inner, name);
        inner.clock += 1;
        let version = inner.clock;
        let blob = Arc::new(bytes.to_vec());
        let mut wrote = false;
        for i in placement {
            if inner.nodes[i].alive {
                inner.nodes[i]
                    .files
                    .insert(name.to_string(), (version, Arc::clone(&blob)));
                wrote = true;
            }
        }
        if wrote {
            Ok(())
        } else {
            Err(TfsError::NoLiveReplica(name.to_string()))
        }
    }

    /// Read the freshest live copy of a file.
    pub fn read(&self, name: &str) -> Result<Vec<u8>, TfsError> {
        self.read_versioned(name).map(|(_, bytes)| bytes)
    }

    /// Freshest live version stamp of a file, if any replica survives.
    fn freshest_inner<'a>(inner: &'a Inner, name: &str) -> Option<&'a (u64, Arc<Vec<u8>>)> {
        let mut best: Option<&(u64, Arc<Vec<u8>>)> = None;
        for i in Self::placement_inner(inner, name) {
            if inner.nodes[i].alive {
                if let Some(entry) = inner.nodes[i].files.get(name) {
                    if best.is_none_or(|b| entry.0 > b.0) {
                        best = Some(entry);
                    }
                }
            }
        }
        best
    }

    /// Read the freshest live copy of a file along with its version
    /// stamp, for a later [`Tfs::write_if_version`]. Every write of a
    /// file (same bytes or not) advances its stamp.
    pub fn read_versioned(&self, name: &str) -> Result<(u64, Vec<u8>), TfsError> {
        let inner = self.inner.lock();
        Self::freshest_inner(&inner, name)
            .map(|(v, blob)| (*v, blob.to_vec()))
            .ok_or_else(|| TfsError::NotFound(name.to_string()))
    }

    /// Batched [`Tfs::read_versioned`]: resolve many files under one
    /// lock acquisition, one result per name in order. The bulk primitive
    /// for trunk-image prefetch — a BSP bucket fetcher resolving the next
    /// bucket's spilled trunks pays one lock round instead of one per
    /// trunk.
    pub fn read_versioned_many(&self, names: &[String]) -> Vec<Result<(u64, Vec<u8>), TfsError>> {
        let inner = self.inner.lock();
        names
            .iter()
            .map(|name| {
                Self::freshest_inner(&inner, name)
                    .map(|(v, blob)| (*v, blob.to_vec()))
                    .ok_or_else(|| TfsError::NotFound(name.clone()))
            })
            .collect()
    }

    /// Conditional write: replace the file only if its freshest live
    /// version is still `expected` (`0` = the file must not exist yet).
    /// Fails with [`TfsError::VersionMismatch`] when another writer got
    /// there first — the read-modify-write must be retried from a fresh
    /// read. This is the fencing primitive for the addressing-table
    /// updates: concurrent recoveries, migration flips, and a donor's
    /// seal-lease release all serialize through it, so no table write
    /// can silently clobber another. Returns the new version stamp.
    pub fn write_if_version(
        &self,
        name: &str,
        bytes: &[u8],
        expected: u64,
    ) -> Result<u64, TfsError> {
        let mut inner = self.inner.lock();
        let found = Self::freshest_inner(&inner, name).map_or(0, |(v, _)| *v);
        if found != expected {
            return Err(TfsError::VersionMismatch {
                name: name.to_string(),
                expected,
                found,
            });
        }
        let placement = Self::placement_inner(&inner, name);
        inner.clock += 1;
        let version = inner.clock;
        let blob = Arc::new(bytes.to_vec());
        let mut wrote = false;
        for i in placement {
            if inner.nodes[i].alive {
                inner.nodes[i]
                    .files
                    .insert(name.to_string(), (version, Arc::clone(&blob)));
                wrote = true;
            }
        }
        if wrote {
            Ok(version)
        } else {
            Err(TfsError::NoLiveReplica(name.to_string()))
        }
    }

    /// Whether a live replica of the file exists.
    pub fn exists(&self, name: &str) -> bool {
        self.read(name).is_ok()
    }

    /// Delete a file from all live replicas.
    pub fn delete(&self, name: &str) -> Result<(), TfsError> {
        let mut inner = self.inner.lock();
        let placement = Self::placement_inner(&inner, name);
        let mut found = false;
        for i in placement {
            if inner.nodes[i].alive {
                found |= inner.nodes[i].files.remove(name).is_some();
            }
        }
        if found {
            Ok(())
        } else {
            Err(TfsError::NotFound(name.to_string()))
        }
    }

    /// All file names with the given prefix that have a live replica,
    /// sorted and deduplicated.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        let inner = self.inner.lock();
        let mut names: Vec<String> = inner
            .nodes
            .iter()
            .filter(|n| n.alive)
            .flat_map(|n| n.files.keys())
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    // ------------------------------------------------------------------
    // Failure injection & healing
    // ------------------------------------------------------------------

    /// Kill a storage node. Its copies become unreachable until revival.
    pub fn kill_node(&self, idx: usize) {
        let mut inner = self.inner.lock();
        if idx < inner.nodes.len() {
            inner.nodes[idx].alive = false;
        }
    }

    /// Revive a storage node. Its copies may be stale; reads prefer higher
    /// versions and [`Tfs::heal`] refreshes them.
    pub fn revive_node(&self, idx: usize) {
        let mut inner = self.inner.lock();
        if idx < inner.nodes.len() {
            inner.nodes[idx].alive = true;
        }
    }

    /// Indices of live storage nodes.
    pub fn alive_nodes(&self) -> Vec<usize> {
        let inner = self.inner.lock();
        inner
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive)
            .map(|(i, _)| i)
            .collect()
    }

    /// Re-replicate: copy the freshest version of every file onto every
    /// live replica node that is missing it or holds a stale copy.
    /// Returns the number of replica copies refreshed.
    pub fn heal(&self) -> usize {
        let mut inner = self.inner.lock();
        let names: Vec<String> = {
            let mut v: Vec<String> = inner
                .nodes
                .iter()
                .filter(|n| n.alive)
                .flat_map(|n| n.files.keys().cloned())
                .collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        let mut refreshed = 0;
        for name in names {
            let placement = Self::placement_inner(&inner, &name);
            let best: Option<(u64, Arc<Vec<u8>>)> = placement
                .iter()
                .filter(|&&i| inner.nodes[i].alive)
                .filter_map(|&i| inner.nodes[i].files.get(&name))
                .max_by_key(|(v, _)| *v)
                .map(|(v, b)| (*v, Arc::clone(b)));
            if let Some((version, blob)) = best {
                for i in placement {
                    if inner.nodes[i].alive {
                        let entry = inner.nodes[i].files.get(&name);
                        if entry.is_none_or(|(v, _)| *v < version) {
                            inner.nodes[i]
                                .files
                                .insert(name.clone(), (version, Arc::clone(&blob)));
                            refreshed += 1;
                        }
                    }
                }
            }
        }
        refreshed
    }

    // ------------------------------------------------------------------
    // Leader flag (paper §6.2)
    // ------------------------------------------------------------------

    /// Atomically mark the flag for `owner` if unclaimed (or already ours).
    /// "The new leader marks a flag on the shared distributed fault-tolerant
    /// file system to avoid multiple leaders."
    pub fn try_acquire_flag(&self, flag: &str, owner: &str) -> bool {
        let mut inner = self.inner.lock();
        match inner.flags.get(flag) {
            Some(cur) => cur == owner,
            None => {
                inner.flags.insert(flag.to_string(), owner.to_string());
                true
            }
        }
    }

    /// Release the flag if held by `owner`.
    pub fn release_flag(&self, flag: &str, owner: &str) -> bool {
        let mut inner = self.inner.lock();
        if inner.flags.get(flag).map(|s| s.as_str()) == Some(owner) {
            inner.flags.remove(flag);
            true
        } else {
            false
        }
    }

    /// Current owner of the flag.
    pub fn flag_owner(&self, flag: &str) -> Option<String> {
        self.inner.lock().flags.get(flag).cloned()
    }

    /// Forcibly clear the flag regardless of owner (used when the recovery
    /// protocol has established that the previous owner is dead).
    pub fn break_flag(&self, flag: &str) {
        self.inner.lock().flags.remove(flag);
    }
}

/// FNV-1a over the file name, feeding the placement mix.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_delete_roundtrip() {
        let tfs = Tfs::new(TfsConfig {
            nodes: 3,
            replication: 2,
        });
        tfs.write("a/b", b"hello").unwrap();
        assert_eq!(tfs.read("a/b").unwrap(), b"hello");
        assert!(tfs.exists("a/b"));
        tfs.write("a/b", b"world").unwrap();
        assert_eq!(tfs.read("a/b").unwrap(), b"world");
        tfs.delete("a/b").unwrap();
        assert!(!tfs.exists("a/b"));
        assert_eq!(tfs.read("a/b"), Err(TfsError::NotFound("a/b".into())));
    }

    #[test]
    fn survives_single_node_failure() {
        let tfs = Tfs::new(TfsConfig {
            nodes: 4,
            replication: 2,
        });
        for i in 0..50 {
            tfs.write(&format!("f{i}"), format!("data{i}").as_bytes())
                .unwrap();
        }
        tfs.kill_node(1);
        for i in 0..50 {
            assert_eq!(
                tfs.read(&format!("f{i}")).unwrap(),
                format!("data{i}").as_bytes()
            );
        }
    }

    #[test]
    fn loses_data_when_all_replicas_die() {
        let tfs = Tfs::new(TfsConfig {
            nodes: 3,
            replication: 1,
        });
        tfs.write("only", b"copy").unwrap();
        let holder = tfs.placement("only")[0];
        tfs.kill_node(holder);
        assert_eq!(tfs.read("only"), Err(TfsError::NotFound("only".into())));
        // And writes to a file whose sole replica node is dead fail loudly.
        assert_eq!(
            tfs.write("only", b"again"),
            Err(TfsError::NoLiveReplica("only".into()))
        );
    }

    #[test]
    fn revived_node_serves_stale_copy_only_until_heal() {
        let tfs = Tfs::new(TfsConfig {
            nodes: 2,
            replication: 2,
        });
        tfs.write("f", b"v1").unwrap();
        tfs.kill_node(0);
        tfs.write("f", b"v2").unwrap(); // only node 1 gets v2
        tfs.revive_node(0);
        // Freshest-copy read must return v2 even though node 0 has v1.
        assert_eq!(tfs.read("f").unwrap(), b"v2");
        let refreshed = tfs.heal();
        assert_eq!(refreshed, 1);
        tfs.kill_node(1);
        assert_eq!(
            tfs.read("f").unwrap(),
            b"v2",
            "heal should have refreshed node 0"
        );
    }

    #[test]
    fn list_filters_by_prefix() {
        let tfs = Tfs::new(TfsConfig::default());
        tfs.write("trunks/1", b"x").unwrap();
        tfs.write("trunks/2", b"y").unwrap();
        tfs.write("ckpt/1", b"z").unwrap();
        assert_eq!(
            tfs.list("trunks/"),
            vec!["trunks/1".to_string(), "trunks/2".to_string()]
        );
        assert_eq!(
            tfs.list(""),
            vec![
                "ckpt/1".to_string(),
                "trunks/1".to_string(),
                "trunks/2".to_string()
            ]
        );
    }

    #[test]
    fn conditional_write_detects_interleaved_writers() {
        let tfs = Tfs::new(TfsConfig::default());
        // Creation: expected version 0 only while the file is absent.
        let v1 = tfs.write_if_version("t", b"a", 0).unwrap();
        assert_eq!(
            tfs.write_if_version("t", b"b", 0),
            Err(TfsError::VersionMismatch {
                name: "t".into(),
                expected: 0,
                found: v1,
            })
        );
        // Read-modify-write succeeds against the version it read...
        let (ver, bytes) = tfs.read_versioned("t").unwrap();
        assert_eq!((ver, bytes.as_slice()), (v1, &b"a"[..]));
        let v2 = tfs.write_if_version("t", b"c", ver).unwrap();
        assert!(v2 > v1);
        // ...and a second writer holding the stale version loses, even
        // when rewriting identical bytes (a version "touch" fences it).
        assert!(matches!(
            tfs.write_if_version("t", b"c", ver),
            Err(TfsError::VersionMismatch { found, .. }) if found == v2
        ));
        let v3 = tfs.write_if_version("t", b"c", v2).unwrap();
        assert!(v3 > v2, "a same-bytes touch must advance the version");
        assert_eq!(tfs.read("t").unwrap(), b"c");
    }

    #[test]
    fn unconditional_write_advances_the_conditional_version() {
        let tfs = Tfs::new(TfsConfig::default());
        let v1 = tfs.write_if_version("t", b"a", 0).unwrap();
        tfs.write("t", b"b").unwrap();
        assert!(matches!(
            tfs.write_if_version("t", b"c", v1),
            Err(TfsError::VersionMismatch { .. })
        ));
        let (ver, _) = tfs.read_versioned("t").unwrap();
        tfs.write_if_version("t", b"c", ver).unwrap();
        assert_eq!(tfs.read("t").unwrap(), b"c");
    }

    #[test]
    fn leader_flag_is_mutually_exclusive() {
        let tfs = Tfs::new(TfsConfig::default());
        assert!(tfs.try_acquire_flag("leader", "m1"));
        assert!(
            tfs.try_acquire_flag("leader", "m1"),
            "re-acquire by owner is idempotent"
        );
        assert!(!tfs.try_acquire_flag("leader", "m2"));
        assert_eq!(tfs.flag_owner("leader").as_deref(), Some("m1"));
        assert!(!tfs.release_flag("leader", "m2"));
        assert!(tfs.release_flag("leader", "m1"));
        assert!(tfs.try_acquire_flag("leader", "m2"));
        tfs.break_flag("leader");
        assert_eq!(tfs.flag_owner("leader"), None);
    }

    #[test]
    fn placement_is_deterministic_and_sized() {
        let tfs = Tfs::new(TfsConfig {
            nodes: 5,
            replication: 3,
        });
        let p1 = tfs.placement("some/file");
        let p2 = tfs.placement("some/file");
        assert_eq!(p1, p2);
        assert_eq!(p1.len(), 3);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "replicas must be distinct nodes");
    }

    #[test]
    fn concurrent_writers_from_clones() {
        let tfs = Tfs::new(TfsConfig {
            nodes: 4,
            replication: 2,
        });
        let mut handles = Vec::new();
        for t in 0..4 {
            let tfs = tfs.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    tfs.write(&format!("w{t}/f{i}"), &[t as u8, i as u8])
                        .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(tfs.list("").len(), 400);
    }
}
