//! Baseline engines from the paper's evaluation (§7).
//!
//! The paper compares Trinity against two systems, attributing their
//! slowdowns and memory blowups to specific mechanisms. Each baseline
//! here implements those mechanisms *literally* and runs the same
//! algorithms for real, so the comparison figures regenerate for the same
//! reasons as the originals (see DESIGN.md's substitution table):
//!
//! * [`giraph`] — a JVM Pregel: vertices as heap objects with per-object
//!   overhead, per-message serialization every superstep, one transfer
//!   per message (no transparent packing, no hub buffering), and a
//!   per-superstep coordination cost. "Graph nodes exist as runtime
//!   objects in memory. They take much more memory than Trinity's plain
//!   blobs" — and run out of it at degree 16 on the 256 M node graph.
//! * [`pbgl`] — the Parallel Boost Graph Library: MPI-style two-sided
//!   bulk communication and **ghost cells** (local replicas of every
//!   remote neighbor). "The ghost cell mechanism only works well for
//!   well-partitioned graphs. Great memory overhead would be incurred for
//!   not-well-partitioned large graphs" — on a random hash partition the
//!   ghosts approach a full copy of the vertex set per machine.

pub mod giraph;
pub mod pbgl;

pub use giraph::{giraph_pagerank, GiraphConfig, GiraphReport};
pub use pbgl::{pbgl_bfs, PbglConfig, PbglReport};

/// Error returned when a baseline's modeled memory exceeds its limit —
/// the "out of memory" points in Figures 12(d) and 13.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutOfMemory {
    /// Bytes the run would need.
    pub required: u64,
    /// Configured per-machine limit times machine count.
    pub limit: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "baseline out of memory: needs {} bytes, limit {}",
            self.required, self.limit
        )
    }
}

impl std::error::Error for OutOfMemory {}
