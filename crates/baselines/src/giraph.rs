//! A Giraph-like Pregel engine (Figure 12(d)).
//!
//! Giraph circa the paper's evaluation is a Hadoop-hosted, JVM Pregel.
//! The paper measures it two orders of magnitude slower than Trinity and
//! far more memory hungry, and names the mechanisms; this model
//! implements exactly those mechanisms and actually runs the algorithm:
//!
//! * **runtime-object storage** — every vertex, edge list, and message is
//!   a heap object with JVM-style headers (the paper: an empty object
//!   costs 24 bytes on a 64-bit JVM); the memory accountant reproduces
//!   the out-of-memory point of Figure 12(d);
//! * **serialization on every hop** — messages are encoded to bytes and
//!   decoded again each superstep (Writables), even between local
//!   vertices: the serialization work is performed for real, so it shows
//!   up in measured compute time;
//! * **no transparent packing** — every remote message is priced as its
//!   own transfer;
//! * **per-superstep coordination** — a fixed ZooKeeper-style barrier
//!   cost.

use trinity_graph::Csr;
use trinity_net::CostModel;

use crate::OutOfMemory;

/// Giraph deployment model.
#[derive(Debug, Clone, Copy)]
pub struct GiraphConfig {
    /// Worker count.
    pub machines: usize,
    /// JVM heap per worker (the paper sets 81 GB).
    pub heap_bytes_per_machine: u64,
    /// Interconnect pricing.
    pub cost: CostModel,
    /// Coordination (barrier + ZooKeeper) seconds per superstep.
    pub coordination_s: f64,
}

impl GiraphConfig {
    /// A scaled-down deployment matching the repo's experiment sizes.
    pub fn scaled(machines: usize) -> Self {
        GiraphConfig {
            machines,
            heap_bytes_per_machine: 256 << 20,
            cost: CostModel::gigabit_ethernet(),
            coordination_s: 0.5,
        }
    }
}

/// Result of a Giraph-model PageRank run.
#[derive(Debug, Clone)]
pub struct GiraphReport {
    /// Final ranks (verifiably identical to the reference).
    pub ranks: Vec<f64>,
    /// Modeled seconds per superstep (measured compute + priced traffic
    /// + coordination).
    pub per_superstep_seconds: Vec<f64>,
    /// Peak modeled memory across the cluster.
    pub memory_bytes: u64,
    /// Remote messages (each its own transfer).
    pub remote_messages: u64,
}

impl GiraphReport {
    /// Modeled seconds for one average superstep (what Figure 12(d)
    /// plots).
    pub fn seconds_per_iteration(&self) -> f64 {
        self.per_superstep_seconds.iter().sum::<f64>()
            / self.per_superstep_seconds.len().max(1) as f64
    }
}

/// JVM-style memory accounting for the vertex objects of a partition.
///
/// Per vertex: object header + fields (id, value, edge-list ref, flags)
/// ≈ 64 bytes; the edge list is an object (16) holding 8-byte ids; each
/// in-flight message is a boxed object of ~48 bytes (header + value +
/// list node).
pub fn giraph_memory_bytes(csr: &Csr, peak_messages: u64) -> u64 {
    let v = csr.node_count() as u64;
    let e = csr.arc_count() as u64;
    v * 64 + v * 16 + e * 8 + peak_messages * 48
}

/// Run PageRank on the Giraph model. The algorithm is executed for real
/// (ranks are exact); time and memory come out of the model.
pub fn giraph_pagerank(
    csr: &Csr,
    iterations: usize,
    cfg: GiraphConfig,
) -> Result<GiraphReport, OutOfMemory> {
    let n = csr.node_count();
    let machines = cfg.machines.max(1);
    // Peak in-flight messages ≈ one per arc (everyone messages every
    // neighbor each superstep).
    let memory = giraph_memory_bytes(csr, csr.arc_count() as u64);
    let limit = cfg.heap_bytes_per_machine * machines as u64;
    if memory > limit {
        return Err(OutOfMemory {
            required: memory,
            limit,
        });
    }
    let part = |v: u64| (v % machines as u64) as usize;
    let damping = 0.85;
    let mut rank = vec![1.0 / n as f64; n];
    let mut per_superstep = Vec::with_capacity(iterations);
    let mut remote_total = 0u64;
    for _ in 0..iterations {
        let t0 = std::time::Instant::now();
        let mut next = vec![(1.0 - damping) / n as f64; n];
        let mut remote_msgs = 0u64;
        let mut remote_bytes = 0u64;
        for v in 0..n as u64 {
            let outs = csr.neighbors(v);
            if outs.is_empty() {
                continue;
            }
            let share = damping * rank[v as usize] / outs.len() as f64;
            for &t in outs {
                // Writable serialization: encode then decode, every hop.
                let wire = share.to_be_bytes(); // Hadoop is big-endian
                let decoded = f64::from_be_bytes(wire);
                next[t as usize] += decoded;
                if part(v) != part(t) {
                    remote_msgs += 1;
                    remote_bytes += 8 + 16; // value + Writable envelope
                }
            }
        }
        rank = next;
        let compute = t0.elapsed().as_secs_f64();
        // Every remote message is its own transfer (no packing); traffic
        // is split over the machines' links.
        let comm = cfg.cost.seconds(remote_msgs, remote_bytes) / machines as f64;
        per_superstep.push(compute + comm + cfg.coordination_s);
        remote_total += remote_msgs;
    }
    Ok(GiraphReport {
        ranks: rank,
        per_superstep_seconds: per_superstep,
        memory_bytes: memory,
        remote_messages: remote_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_exact_despite_the_overhead_model() {
        let csr = trinity_graphgen::rmat(8, 6, 4);
        let report = giraph_pagerank(&csr, 5, GiraphConfig::scaled(4)).unwrap();
        let expect = trinity_algos::pagerank_reference(&csr, 5);
        for (v, r) in report.ranks.iter().enumerate() {
            let e = expect[&(v as u64)];
            assert!((r - e).abs() < 1e-12, "vertex {v}: {r} vs {e}");
        }
    }

    #[test]
    fn memory_model_oomps_on_big_dense_graphs() {
        let csr = trinity_graphgen::rmat(12, 16, 7);
        let need = giraph_memory_bytes(&csr, csr.arc_count() as u64);
        let tiny = GiraphConfig {
            heap_bytes_per_machine: need / 8,
            ..GiraphConfig::scaled(4)
        };
        assert!(matches!(
            giraph_pagerank(&csr, 1, tiny),
            Err(OutOfMemory { .. })
        ));
        let roomy = GiraphConfig {
            heap_bytes_per_machine: need,
            ..GiraphConfig::scaled(4)
        };
        assert!(giraph_pagerank(&csr, 1, roomy).is_ok());
    }

    #[test]
    fn memory_far_exceeds_a_plain_blob_representation() {
        let csr = trinity_graphgen::rmat(10, 13, 5);
        let giraph = giraph_memory_bytes(&csr, csr.arc_count() as u64);
        // Trinity stores a node as a 13-byte header + 8 bytes per edge.
        let trinity: u64 = (0..csr.node_count() as u64)
            .map(|v| 13 + 8 * csr.out_degree(v) as u64)
            .sum();
        assert!(
            giraph > 3 * trinity,
            "object overhead should multiply memory: {giraph} vs {trinity}"
        );
    }

    #[test]
    fn more_machines_cut_comm_but_not_coordination() {
        let csr = trinity_graphgen::rmat(10, 8, 9);
        let slow = giraph_pagerank(&csr, 2, GiraphConfig::scaled(2)).unwrap();
        let fast = giraph_pagerank(&csr, 2, GiraphConfig::scaled(8)).unwrap();
        // Speedup exists but saturates toward the coordination floor.
        assert!(fast.seconds_per_iteration() < slow.seconds_per_iteration());
        assert!(
            fast.seconds_per_iteration() >= 0.5,
            "coordination cost is a floor"
        );
    }
}
