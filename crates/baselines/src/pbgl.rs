//! A PBGL-like distributed BFS engine (Figure 13).
//!
//! The Parallel Boost Graph Library distributes a graph over MPI ranks
//! and keeps a **ghost cell** — a local replica — for every remote vertex
//! adjacent to a local one. On a well-partitioned graph few edges cross
//! machines and the ghosts are cheap; on a randomly hash-partitioned
//! scale-free graph nearly every vertex has neighbors everywhere, so each
//! machine ends up holding a large fraction of the whole vertex set as
//! ghosts. The paper measures ~10× Trinity's memory and an out-of-memory
//! crash at average degree 32 on the 256 M node graph; its explanation —
//! "the ghost cell mechanism only works well for well-partitioned
//! graphs" — is the mechanism implemented here.
//!
//! Communication is MPI-style two-sided bulk exchange: each BFS level,
//! every machine posts one message per discovered ghost (fine-grained
//! sends, no transparent packing).

use trinity_graph::Csr;
use trinity_net::CostModel;

use crate::OutOfMemory;

/// PBGL deployment model.
#[derive(Debug, Clone, Copy)]
pub struct PbglConfig {
    /// MPI rank count.
    pub machines: usize,
    /// Memory per rank.
    pub memory_bytes_per_machine: u64,
    /// Interconnect pricing.
    pub cost: CostModel,
}

impl PbglConfig {
    /// A scaled-down deployment matching the repo's experiment sizes.
    pub fn scaled(machines: usize) -> Self {
        PbglConfig {
            machines,
            memory_bytes_per_machine: 256 << 20,
            cost: CostModel::gigabit_ethernet(),
        }
    }
}

/// Result of a PBGL-model BFS run.
#[derive(Debug, Clone)]
pub struct PbglReport {
    /// BFS depths (verifiably identical to the reference).
    pub dist: Vec<u64>,
    /// Modeled seconds (measured compute + priced traffic).
    pub seconds: f64,
    /// Peak modeled memory across the cluster, ghosts included.
    pub memory_bytes: u64,
    /// Ghost cells across all machines.
    pub ghost_cells: u64,
    /// Remote messages (one per ghost update).
    pub remote_messages: u64,
}

/// Count ghost cells under a hash partition: for each machine, the
/// distinct remote endpoints of its local edges.
pub fn count_ghosts(csr: &Csr, machines: usize) -> u64 {
    let part = |v: u64| (v % machines as u64) as usize;
    // Bitsets per machine would be exact but heavy; a sorted-dedup pass
    // per machine stays O(E log E) and exact.
    let mut total = 0u64;
    for m in 0..machines {
        let mut ghosts: Vec<u64> = Vec::new();
        for v in 0..csr.node_count() as u64 {
            if part(v) != m {
                continue;
            }
            ghosts.extend(csr.neighbors(v).iter().copied().filter(|&t| part(t) != m));
        }
        ghosts.sort_unstable();
        ghosts.dedup();
        total += ghosts.len() as u64;
    }
    total
}

/// PBGL memory model: local vertex records (48 bytes: property maps,
/// color, queue slot) + 8 bytes per stored arc + a 64-byte ghost record
/// per replica (remote descriptor, owner, cached property, message slot).
pub fn pbgl_memory_bytes(csr: &Csr, ghosts: u64) -> u64 {
    csr.node_count() as u64 * 48 + csr.arc_count() as u64 * 8 + ghosts * 64
}

/// Run level-synchronous BFS on the PBGL model. The traversal is real
/// (depths are exact); time and memory come out of the model.
pub fn pbgl_bfs(csr: &Csr, source: u64, cfg: PbglConfig) -> Result<PbglReport, OutOfMemory> {
    let machines = cfg.machines.max(1);
    let ghosts = count_ghosts(csr, machines);
    let memory = pbgl_memory_bytes(csr, ghosts);
    let limit = cfg.memory_bytes_per_machine * machines as u64;
    if memory > limit {
        return Err(OutOfMemory {
            required: memory,
            limit,
        });
    }
    let part = |v: u64| (v % machines as u64) as usize;
    let t0 = std::time::Instant::now();
    let n = csr.node_count();
    let mut dist = vec![u64::MAX; n];
    dist[source as usize] = 0;
    let mut frontier = vec![source];
    let mut depth = 0u64;
    let mut remote_messages = 0u64;
    let mut remote_bytes = 0u64;
    while !frontier.is_empty() {
        depth += 1;
        let mut next = Vec::new();
        for &v in &frontier {
            for &t in csr.neighbors(v) {
                if dist[t as usize] == u64::MAX {
                    dist[t as usize] = depth;
                    next.push(t);
                }
                // Ghost update: the owner of `t` must hear about the
                // relaxation whenever the edge crosses machines —
                // discovered or not (PBGL sends, the owner filters).
                if part(v) != part(t) {
                    remote_messages += 1;
                    remote_bytes += 24; // (vertex, depth, tag)
                }
            }
        }
        frontier = next;
    }
    let compute = t0.elapsed().as_secs_f64();
    let comm = cfg.cost.seconds(remote_messages, remote_bytes) / machines as f64;
    Ok(PbglReport {
        dist,
        seconds: compute + comm,
        memory_bytes: memory,
        ghost_cells: ghosts,
        remote_messages,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_depths_are_exact() {
        let csr = trinity_graphgen::rmat(8, 8, 3);
        let report = pbgl_bfs(&csr, 0, PbglConfig::scaled(4)).unwrap();
        let expect = trinity_algos::bfs_reference(&csr, 0);
        for (v, d) in report.dist.iter().enumerate() {
            assert_eq!(*d, expect[&(v as u64)], "vertex {v}");
        }
    }

    #[test]
    fn ghosts_explode_on_random_partitions() {
        // Scale-free graph, hash partition: ghosts per machine approach
        // the number of other machines' frequently-referenced vertices.
        let csr = trinity_graphgen::rmat(11, 16, 5);
        let n = csr.node_count() as u64;
        let ghosts = count_ghosts(&csr, 8);
        assert!(
            ghosts > 2 * n,
            "ghost replicas ({ghosts}) should far exceed the vertex count ({n})"
        );
        // And the memory model reflects it: the replica records dwarf the
        // real (owned) vertex records.
        let owned_vertex_bytes = csr.node_count() as u64 * 48;
        assert!(
            ghosts * 64 > 2 * owned_vertex_bytes,
            "ghost bytes {} should dwarf owned vertex bytes {owned_vertex_bytes}",
            ghosts * 64
        );
    }

    #[test]
    fn ghost_memory_grows_with_degree_until_oom() {
        // Figure 13's crossing: at low degree PBGL fits; at high degree it
        // runs out of memory while the same budget would hold the plain
        // adjacency easily.
        let machines = 4usize;
        let sparse = trinity_graphgen::rmat(12, 4, 9);
        let dense = trinity_graphgen::rmat(12, 32, 9);
        let sparse_need = pbgl_memory_bytes(&sparse, count_ghosts(&sparse, machines));
        let dense_need = pbgl_memory_bytes(&dense, count_ghosts(&dense, machines));
        assert!(
            dense_need > sparse_need,
            "denser graph must need more memory"
        );
        // Budget between the two: sparse fits, dense does not.
        let budget = (sparse_need + dense_need) / 2;
        let cfg = PbglConfig {
            memory_bytes_per_machine: budget / machines as u64,
            ..PbglConfig::scaled(machines)
        };
        assert!(pbgl_bfs(&sparse, 0, cfg).is_ok());
        assert!(matches!(pbgl_bfs(&dense, 0, cfg), Err(OutOfMemory { .. })));
        // The dense graph's raw adjacency alone would fit in that budget;
        // the ghosts (plus property records) are what break it.
        let raw = dense.footprint_bytes() as u64;
        assert!(
            raw < budget,
            "raw adjacency {raw} fits the budget {budget}; only replicas do not"
        );
    }

    #[test]
    fn more_machines_mean_more_ghosts_not_fewer() {
        let csr = trinity_graphgen::rmat(10, 8, 2);
        let g4 = count_ghosts(&csr, 4);
        let g8 = count_ghosts(&csr, 8);
        assert!(
            g8 >= g4,
            "splitting a random partition finer cannot reduce replicas: {g8} vs {g4}"
        );
    }
}
