//! Synthetic graph generators for the Trinity evaluation workloads.
//!
//! Every experiment in the paper's §7 runs on one of four graph families,
//! all reproduced here (deterministically, from a seed):
//!
//! * **R-MAT** ([`rmat`]) — the recursive matrix model of Chakrabarti et
//!   al. (paper ref [12]); used by the PageRank, BFS, and PBGL/Giraph
//!   comparison experiments.
//! * **Power-law** ([`power_law`]) — degree distribution `P(k) ∝ c·k^-γ`
//!   with the paper's §5.4 parameters `c = 1.16`, `γ = 2.16`; used by the
//!   hub-vertex message-optimization analysis and the distance-oracle
//!   experiment.
//! * **Social** ([`social`]) — a Facebook-like graph with a configurable
//!   average degree (the paper sweeps 10–200 for people search, with 130
//!   called out as Facebook's average), plus a first-name attribute
//!   generator ([`names`]) in which "David" is a popular name.
//! * **LUBM-like RDF** ([`lubm`]) and **real-world stand-ins**
//!   ([`realworld`]) — for the SPARQL and subgraph-match speedup figures.

pub mod lubm;
pub mod names;
pub mod realworld;
pub mod rmat;
pub mod social;

pub use lubm::{lubm_like, LubmGraph, NodeType};
pub use realworld::{patent_like, wordnet_like};
pub use rmat::rmat;
pub use social::{power_law, social};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The deterministic RNG used by every generator.
pub(crate) fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
