//! First-name attributes for the people-search experiment.
//!
//! The paper's "David problem" (§5.1): find anyone named David within 3
//! hops of a given user. David must be a *popular* first name for the
//! experiment to be meaningful — popular names defeat name-indexing
//! strategies, which is the paper's argument for exploration instead of
//! indexes. The distribution below gives David roughly a 1.5% share,
//! matching its rank among US male first names.

use rand::Rng;
use rand::RngExt;

/// Name pool with rough real-world frequencies (weights sum to 1000).
const NAMES: &[(&str, u32)] = &[
    ("James", 33),
    ("Mary", 32),
    ("John", 31),
    ("Patricia", 25),
    ("Robert", 25),
    ("Jennifer", 22),
    ("Michael", 21),
    ("William", 20),
    ("Linda", 19),
    ("David", 15),
    ("Elizabeth", 15),
    ("Richard", 14),
    ("Barbara", 14),
    ("Susan", 13),
    ("Joseph", 13),
    ("Thomas", 12),
    ("Jessica", 12),
    ("Charles", 11),
    ("Sarah", 11),
    ("Christopher", 10),
    ("Karen", 10),
    ("Daniel", 10),
    ("Nancy", 9),
    ("Matthew", 9),
    ("Lisa", 9),
    ("Anthony", 8),
    ("Betty", 8),
    ("Donald", 8),
    ("Margaret", 8),
    ("Mark", 8),
    ("Sandra", 7),
    ("Paul", 7),
    ("Ashley", 7),
    ("Steven", 7),
    ("Kimberly", 6),
    ("Andrew", 6),
    ("Emily", 6),
    ("Kenneth", 6),
    ("Donna", 6),
    ("Joshua", 6),
    ("Michelle", 5),
    ("Kevin", 5),
    ("Carol", 5),
    ("Brian", 5),
    ("Amanda", 5),
    ("George", 5),
    ("Melissa", 5),
    ("Edward", 4),
    ("Deborah", 4),
    ("Ronald", 4),
    // Long tail bucket: unique-ish names.
    ("Other", 423),
];

/// Sample a first name for person `id` (deterministic per `(seed, id)`).
pub fn name_for(seed: u64, id: u64) -> String {
    let mut rng = crate::rng(seed ^ id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let total: u32 = NAMES.iter().map(|(_, w)| w).sum();
    let mut pick = rng.random_range(0..total);
    for (name, w) in NAMES {
        if pick < *w {
            if *name == "Other" {
                return format!("Person{:x}", rng.next_u64() & 0xFFFFFF);
            }
            return (*name).to_string();
        }
        pick -= w;
    }
    unreachable!("weights exhausted")
}

/// Expected share of people named `name` under this distribution.
pub fn expected_share(name: &str) -> f64 {
    let total: u32 = NAMES.iter().map(|(_, w)| w).sum();
    NAMES
        .iter()
        .find(|(n, _)| *n == name)
        .map_or(0.0, |(_, w)| *w as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed_and_id() {
        assert_eq!(name_for(1, 42), name_for(1, 42));
    }

    #[test]
    fn david_share_is_about_1_5_percent() {
        let n = 50_000u64;
        let davids = (0..n).filter(|&i| name_for(7, i) == "David").count();
        let share = davids as f64 / n as f64;
        let expect = expected_share("David");
        assert!(
            (share - expect).abs() < 0.005,
            "David share {share:.4}, expected ~{expect:.4}"
        );
        assert!(
            share > 0.008,
            "David must stay a popular name for the experiment"
        );
    }

    #[test]
    fn other_bucket_produces_unique_names() {
        let unique: std::collections::HashSet<String> = (0..1000u64)
            .map(|i| name_for(3, i))
            .filter(|n| n.starts_with("Person"))
            .collect();
        assert!(unique.len() > 300, "long tail too small: {}", unique.len());
    }
}
