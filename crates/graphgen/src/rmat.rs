//! R-MAT recursive matrix graphs (paper reference [12]).
//!
//! Each arc is placed by recursively descending into one of the four
//! quadrants of the adjacency matrix with probabilities `(a, b, c, d)`;
//! the classic skewed parameters produce the power-law-ish degree
//! distributions of web graphs. The paper's Figure 12(b,c) R-MAT graphs
//! use average degree 13.

use rand::RngExt;
use trinity_graph::Csr;

/// R-MAT quadrant probabilities. The defaults are the Graph500/Kronecker
/// standard `(0.57, 0.19, 0.19, 0.05)`.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl Default for RmatParams {
    fn default() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Generate a directed R-MAT graph with `2^scale` nodes and
/// `avg_degree * 2^scale` arcs.
pub fn rmat(scale: u32, avg_degree: usize, seed: u64) -> Csr {
    rmat_with(scale, avg_degree, seed, RmatParams::default())
}

/// Generate with explicit quadrant probabilities.
pub fn rmat_with(scale: u32, avg_degree: usize, seed: u64, p: RmatParams) -> Csr {
    let n = 1usize << scale;
    let arcs_wanted = n * avg_degree;
    let mut rng = crate::rng(seed);
    let mut arcs = Vec::with_capacity(arcs_wanted);
    // Slight parameter noise per level, as in the original paper, to avoid
    // exactly repeated degree ties.
    for _ in 0..arcs_wanted {
        let (mut x, mut y) = (0u64, 0u64);
        for level in 0..scale {
            let shift = scale - 1 - level;
            let r: f64 = rng.random();
            let (dx, dy) = if r < p.a {
                (0, 0)
            } else if r < p.a + p.b {
                (0, 1)
            } else if r < p.a + p.b + p.c {
                (1, 0)
            } else {
                (1, 1)
            };
            x |= dx << shift;
            y |= dy << shift;
        }
        arcs.push((x, y));
    }
    Csr::from_arcs(n, arcs, true, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_requested_size() {
        let g = rmat(10, 13, 42);
        assert_eq!(g.node_count(), 1024);
        assert_eq!(g.arc_count(), 1024 * 13);
        assert!((g.avg_degree() - 13.0).abs() < 1e-9);
        assert!(g.directed);
    }

    #[test]
    fn is_deterministic_per_seed() {
        assert_eq!(rmat(8, 4, 7), rmat(8, 4, 7));
        assert_ne!(rmat(8, 4, 7), rmat(8, 4, 8));
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = rmat(12, 16, 1);
        let mut degrees: Vec<usize> = (0..g.node_count() as u64)
            .map(|v| g.out_degree(v))
            .collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // The hot head should hold far more than its proportional share:
        // top 1% of nodes should own > 10% of all arcs.
        let top: usize = degrees.iter().take(g.node_count() / 100).sum();
        assert!(
            top as f64 > 0.10 * g.arc_count() as f64,
            "R-MAT head too flat: top 1% holds {top} of {}",
            g.arc_count()
        );
        // And all targets are in range.
        assert!(g.arcs().all(|(s, t)| s < 4096 && t < 4096));
    }
}
