//! LUBM-like RDF benchmark data (paper reference [20]).
//!
//! The paper's Figure 14(b) runs four SPARQL queries over a LUBM data set
//! (via the Trinity.RDF engine of reference [36]). This generator produces
//! the same *shape* of data: a university ontology — universities,
//! departments, professors, students, courses — with the standard LUBM
//! relationship edges, scaled by a university count. Node types are
//! stored as a one-byte attribute; the SPARQL-subset engine in
//! `trinity-algos` matches typed structural patterns against it.

use rand::RngExt;
use trinity_graph::Csr;

/// Entity types in the university ontology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum NodeType {
    University = 0,
    Department = 1,
    Professor = 2,
    Student = 3,
    Course = 4,
}

impl NodeType {
    /// Decode from the attribute byte.
    pub fn from_byte(b: u8) -> Option<NodeType> {
        Some(match b {
            0 => NodeType::University,
            1 => NodeType::Department,
            2 => NodeType::Professor,
            3 => NodeType::Student,
            4 => NodeType::Course,
            _ => return None,
        })
    }
}

/// A generated LUBM-like graph: typed nodes plus directed edges with
/// in-links (RDF queries traverse both directions).
#[derive(Debug, Clone)]
pub struct LubmGraph {
    /// Directed adjacency (subject → object).
    pub csr: Csr,
    /// Node type per id.
    pub types: Vec<NodeType>,
}

impl LubmGraph {
    /// Number of entities.
    pub fn node_count(&self) -> usize {
        self.types.len()
    }

    /// Ids of all nodes of a type.
    pub fn of_type(&self, t: NodeType) -> impl Iterator<Item = u64> + '_ {
        self.types
            .iter()
            .enumerate()
            .filter(move |(_, ty)| **ty == t)
            .map(|(i, _)| i as u64)
    }
}

/// Generate `universities` universities worth of LUBM-like data.
///
/// Per university: 12–18 departments. Per department: 8–12 professors,
/// 40–80 students, 10–15 courses; students take 2–4 courses, professors
/// teach 1–2, students have one advisor.
pub fn lubm_like(universities: usize, seed: u64) -> LubmGraph {
    let mut rng = crate::rng(seed);
    let mut types = Vec::new();
    let mut edges: Vec<(u64, u64)> = Vec::new();
    let new_node = |types: &mut Vec<NodeType>, t: NodeType| -> u64 {
        types.push(t);
        (types.len() - 1) as u64
    };
    for _ in 0..universities {
        let uni = new_node(&mut types, NodeType::University);
        let n_depts = rng.random_range(12..=18);
        for _ in 0..n_depts {
            let dept = new_node(&mut types, NodeType::Department);
            edges.push((dept, uni)); // subOrganizationOf
            let n_prof = rng.random_range(8..=12);
            let n_stud = rng.random_range(40..=80);
            let n_course = rng.random_range(10..=15);
            let profs: Vec<u64> = (0..n_prof)
                .map(|_| {
                    let p = new_node(&mut types, NodeType::Professor);
                    edges.push((p, dept)); // worksFor
                    p
                })
                .collect();
            let courses: Vec<u64> = (0..n_course)
                .map(|_| {
                    let c = new_node(&mut types, NodeType::Course);
                    edges.push((c, dept)); // offeredBy
                    c
                })
                .collect();
            for &p in &profs {
                let teaches = rng.random_range(1..=2usize);
                for _ in 0..teaches {
                    let c = courses[rng.random_range(0..courses.len())];
                    edges.push((p, c)); // teacherOf
                }
            }
            for _ in 0..n_stud {
                let s = new_node(&mut types, NodeType::Student);
                edges.push((s, dept)); // memberOf
                let advisor = profs[rng.random_range(0..profs.len())];
                edges.push((s, advisor)); // advisor
                let takes = rng.random_range(2..=4usize);
                for _ in 0..takes {
                    let c = courses[rng.random_range(0..courses.len())];
                    edges.push((s, c)); // takesCourse
                }
            }
        }
    }
    let n = types.len();
    LubmGraph {
        csr: Csr::from_arcs(n, edges, true, true),
        types,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_entity_types_in_plausible_ratios() {
        let g = lubm_like(3, 17);
        let count = |t| g.of_type(t).count();
        assert_eq!(count(NodeType::University), 3);
        let depts = count(NodeType::Department);
        assert!((36..=54).contains(&depts), "{depts} departments");
        assert!(count(NodeType::Student) > count(NodeType::Professor) * 3);
        assert!(count(NodeType::Course) > 0);
        assert_eq!(g.node_count(), g.csr.node_count());
    }

    #[test]
    fn every_student_has_department_advisor_and_courses() {
        let g = lubm_like(1, 5);
        for s in g.of_type(NodeType::Student) {
            let outs = g.csr.neighbors(s);
            assert!(
                outs.iter()
                    .any(|&o| g.types[o as usize] == NodeType::Department),
                "student {s} has no dept"
            );
            assert!(
                outs.iter()
                    .any(|&o| g.types[o as usize] == NodeType::Professor),
                "student {s} has no advisor"
            );
            // Duplicate enrollments are deduplicated, so 1 is possible.
            let courses = outs
                .iter()
                .filter(|&&o| g.types[o as usize] == NodeType::Course)
                .count();
            assert!(
                (1..=4).contains(&courses),
                "student {s} takes {courses} courses"
            );
        }
    }

    #[test]
    fn type_bytes_roundtrip() {
        for t in [
            NodeType::University,
            NodeType::Department,
            NodeType::Professor,
            NodeType::Student,
            NodeType::Course,
        ] {
            assert_eq!(NodeType::from_byte(t as u8), Some(t));
        }
        assert_eq!(NodeType::from_byte(9), None);
    }

    #[test]
    fn deterministic() {
        let a = lubm_like(2, 3);
        let b = lubm_like(2, 3);
        assert_eq!(a.csr, b.csr);
        assert_eq!(a.types, b.types);
    }
}
