//! Stand-ins for the paper's real-life graphs.
//!
//! Figure 14(a) measures subgraph-match speedup on Wordnet and the US
//! patent citation network. Neither data set ships with this repository,
//! so we generate graphs with matching size and degree statistics (see
//! DESIGN.md's substitution table): parallel speedup depends on node
//! count, degree distribution, and partition balance — all reproduced —
//! not on the specific vocabulary of synsets or patent numbers.

use rand::RngExt;
use trinity_graph::Csr;

/// A Wordnet-like graph: ~82 K nodes, sparse (average degree ~3),
/// mildly skewed. Pass `scale = 1.0` for full size.
pub fn wordnet_like(scale: f64, seed: u64) -> Csr {
    let n = ((82_000_f64 * scale) as usize).max(100);
    crate::social::power_law(n, 2.5, 1, 60, seed)
}

/// A US-patent-citation-like graph: a preferential-attachment DAG where
/// each patent cites ~4.4 earlier patents (the real network has 3.77 M
/// nodes and 16.5 M edges; pass `n` scaled to taste). Directed, acyclic.
pub fn patent_like(n: usize, seed: u64) -> Csr {
    assert!(n >= 16);
    let mut rng = crate::rng(seed);
    let per_node = 4usize;
    let mut arcs: Vec<(u64, u64)> = Vec::with_capacity(n * per_node);
    // Preferential attachment over earlier nodes: sample a previous arc's
    // endpoint with probability 1/2 (rich get richer), uniform otherwise.
    for v in 1..n as u64 {
        let cites = per_node.min(v as usize);
        for _ in 0..cites {
            let target = if !arcs.is_empty() && rng.random_bool(0.5) {
                let (_, t) = arcs[rng.random_range(0..arcs.len())];
                if t < v {
                    t
                } else {
                    rng.random_range(0..v)
                }
            } else {
                rng.random_range(0..v)
            };
            arcs.push((v, target));
        }
    }
    Csr::from_arcs(n, arcs, true, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wordnet_is_sparse_and_sized() {
        let g = wordnet_like(0.05, 3); // 4100 nodes for the test
        assert!((3_500..=4_500).contains(&g.node_count()));
        assert!(g.avg_degree() < 8.0, "avg degree {:.1}", g.avg_degree());
    }

    #[test]
    fn patent_is_a_dag_with_requested_density() {
        let g = patent_like(5_000, 9);
        assert!(g.directed);
        // All citations point backward: acyclic by construction.
        assert!(g.arcs().all(|(s, t)| t < s));
        let avg = g.avg_degree();
        assert!((3.0..=4.5).contains(&avg), "avg degree {avg:.1}");
    }

    #[test]
    fn patent_has_highly_cited_patents() {
        let g = patent_like(10_000, 4);
        let t = g.transpose();
        let max_in = (0..t.node_count() as u64)
            .map(|v| t.out_degree(v))
            .max()
            .unwrap();
        assert!(
            max_in > 40,
            "preferential attachment should create hubs, max in-degree {max_in}"
        );
    }
}
