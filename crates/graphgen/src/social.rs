//! Power-law and social graph generators.
//!
//! [`power_law`] samples a degree sequence from `P(k) ∝ c·k^-γ` (the paper
//! §5.4 uses `c = 1.16`, `γ = 2.16` when reasoning about hub vertices) and
//! wires stubs with a configuration-model pass. [`social`] is the
//! Facebook-like graph of the people-search experiment: every node gets
//! `degree` friends chosen uniformly, making the average degree (not the
//! maximum) the controlled parameter.

use rand::RngExt;
use trinity_graph::Csr;

/// Generate an undirected power-law graph: `n` nodes, degrees sampled
/// from `P(k) ∝ k^-gamma` over `[k_min, k_max]`.
pub fn power_law(n: usize, gamma: f64, k_min: usize, k_max: usize, seed: u64) -> Csr {
    assert!(n > 1 && k_min >= 1 && k_max >= k_min);
    let mut rng = crate::rng(seed);
    // Inverse-CDF table over the discrete degree support.
    let weights: Vec<f64> = (k_min..=k_max).map(|k| (k as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut cdf = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total;
        cdf.push(acc);
    }
    let sample_degree = |rng: &mut rand::rngs::StdRng| -> usize {
        let r: f64 = rng.random();
        let idx = cdf.partition_point(|&c| c < r).min(cdf.len() - 1);
        k_min + idx
    };
    // Configuration model: each node contributes `degree` stubs; stubs are
    // shuffled and paired.
    let mut stubs: Vec<u64> = Vec::new();
    for v in 0..n as u64 {
        let d = sample_degree(&mut rng).min(n - 1);
        stubs.extend(std::iter::repeat_n(v, d));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    // Fisher-Yates shuffle.
    for i in (1..stubs.len()).rev() {
        let j = rng.random_range(0..=i);
        stubs.swap(i, j);
    }
    let edges: Vec<(u64, u64)> = stubs
        .chunks_exact(2)
        .map(|p| (p[0], p[1]))
        .filter(|(u, v)| u != v)
        .collect();
    Csr::undirected_from_edges(n, &edges, true)
}

/// Generate a Facebook-like social graph: `n` people with an average
/// adjacency length of ~`degree`. Each person initiates `degree / 2`
/// friendships with uniformly random others; every friendship appears in
/// both adjacency lists, so the expected stored degree is `degree`. The
/// people-search experiment sweeps `degree` from 10 to 200.
pub fn social(n: usize, degree: usize, seed: u64) -> Csr {
    assert!(n > degree);
    let mut rng = crate::rng(seed);
    // Each node initiates degree/2 friendships; since edges are stored in
    // both adjacency lists, the expected adjacency length is ~degree.
    let per_node = (degree / 2).max(1);
    let mut edges = Vec::with_capacity(n * per_node);
    for u in 0..n as u64 {
        for _ in 0..per_node {
            let mut v = rng.random_range(0..n as u64);
            while v == u {
                v = rng.random_range(0..n as u64);
            }
            edges.push((u, v));
        }
    }
    Csr::undirected_from_edges(n, &edges, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_has_hubs_and_tail() {
        let g = power_law(5_000, 2.16, 1, 500, 3);
        let mut degs: Vec<usize> = (0..g.node_count() as u64)
            .map(|v| g.out_degree(v))
            .collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs exist...
        assert!(
            degs[0] >= 50,
            "max degree {} too small for a power law",
            degs[0]
        );
        // ...but the median node is small-degree.
        assert!(
            degs[g.node_count() / 2] <= 4,
            "median degree {} too large",
            degs[g.node_count() / 2]
        );
    }

    #[test]
    fn power_law_hub_concentration_matches_paper_claim() {
        // Paper §5.4: for c=1.16, γ=2.16, a small fraction of hub vertices
        // covers a large fraction of edges (20% of hubs → 80% of message
        // needs). Verify the top 20% of nodes own >= 60% of arc endpoints.
        let g = power_law(20_000, 2.16, 1, 2_000, 11);
        let mut degs: Vec<usize> = (0..g.node_count() as u64)
            .map(|v| g.out_degree(v))
            .collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        let top20: usize = degs.iter().take(g.node_count() / 5).sum();
        let frac = top20 as f64 / g.arc_count() as f64;
        assert!(frac > 0.6, "top-20% degree share only {frac:.2}");
    }

    #[test]
    fn social_hits_requested_average_degree() {
        for want in [10usize, 50, 130] {
            let g = social(4_000, want, 9);
            let avg = g.avg_degree();
            assert!(
                (avg - want as f64).abs() / (want as f64) < 0.15,
                "requested avg degree {want}, got {avg:.1}"
            );
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(
            power_law(500, 2.16, 1, 50, 5),
            power_law(500, 2.16, 1, 50, 5)
        );
        assert_eq!(social(500, 10, 5), social(500, 10, 5));
    }

    #[test]
    fn no_self_loops_in_social() {
        let g = social(1_000, 20, 4);
        assert!(g.arcs().all(|(u, v)| u != v));
    }
}
