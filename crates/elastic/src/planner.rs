//! Rebalance planning: which trunks move where, and why.
//!
//! Plans are pure functions of an addressing table plus (for the
//! load-driven planner) per-trunk hotness scores merged from the cluster
//! [`LoadMap`](trinity_obs::LoadMap)s. The engine executes a plan one
//! migration at a time, so a crash mid-plan leaves a consistent (just
//! less balanced) cloud.

use std::collections::HashMap;

use trinity_memcloud::{AddressingTable, MemoryCloud};
use trinity_net::MachineId;

/// One planned trunk move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Move {
    pub trunk: u64,
    pub from: MachineId,
    pub to: MachineId,
}

/// Merge every machine's per-trunk load into cluster-wide hotness
/// scores ([`TrunkLoad::score`](trinity_obs::TrunkLoad::score): ops/s
/// regardless of kind). Owner-side and client-side attributions for the
/// same trunk add up.
pub fn cluster_trunk_scores(cloud: &MemoryCloud) -> HashMap<u64, f64> {
    let mut scores: HashMap<u64, f64> = HashMap::new();
    for scope in cloud.fabric().obs().scopes() {
        for tl in scope.load().snapshot() {
            *scores.entry(tl.trunk).or_default() += tl.score();
        }
    }
    scores
}

/// Hotness imbalance of a placement: max per-machine score over mean
/// per-machine score (`1.0` = perfectly balanced, `0.0` = no load).
pub fn placement_imbalance(table: &AddressingTable, scores: &HashMap<u64, f64>) -> f64 {
    let machines = table.machines();
    if machines.is_empty() {
        return 0.0;
    }
    let loads: Vec<f64> = machines
        .iter()
        .map(|&m| {
            table
                .trunks_of(m)
                .iter()
                .map(|t| scores.get(t).copied().unwrap_or(0.0))
                .sum()
        })
        .collect();
    let sum: f64 = loads.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    let mean = sum / loads.len() as f64;
    loads.iter().cloned().fold(0.0, f64::max) / mean
}

/// Plan the fewest moves that bring [`placement_imbalance`] at or under
/// `threshold` (e.g. `1.5`). Greedy: repeatedly shift the hottest
/// movable trunk from the most loaded machine to the least loaded one,
/// stopping when the threshold is met, a move stops helping, or every
/// trunk of the hot machine has been considered. Deterministic — ties
/// break toward lower ids.
pub fn plan_rebalance(
    table: &AddressingTable,
    scores: &HashMap<u64, f64>,
    threshold: f64,
) -> Vec<Move> {
    let mut table = table.clone();
    let mut moves = Vec::new();
    // One pass per trunk at most: the greedy loop always terminates.
    for _ in 0..table.trunk_count() {
        if placement_imbalance(&table, scores) <= threshold {
            break;
        }
        let machines = table.machines();
        let load_of = |t: &AddressingTable, m: MachineId| -> f64 {
            t.trunks_of(m)
                .iter()
                .map(|g| scores.get(g).copied().unwrap_or(0.0))
                .sum()
        };
        let &hot = machines
            .iter()
            .max_by(|&&a, &&b| {
                load_of(&table, a)
                    .partial_cmp(&load_of(&table, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(&a.0))
            })
            .expect("non-empty cluster");
        let &cold = machines
            .iter()
            .min_by(|&&a, &&b| {
                load_of(&table, a)
                    .partial_cmp(&load_of(&table, b))
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.0.cmp(&b.0))
            })
            .expect("non-empty cluster");
        if hot == cold {
            break;
        }
        let gap = load_of(&table, hot) - load_of(&table, cold);
        // The best trunk to move is the hottest one that still fits in
        // the gap — moving something hotter than the gap would just swap
        // which machine is overloaded.
        let candidate = table
            .trunks_of(hot)
            .into_iter()
            .map(|g| (g, scores.get(&g).copied().unwrap_or(0.0)))
            .filter(|&(_, s)| s > 0.0 && s < gap)
            .max_by(|a, b| {
                a.1.partial_cmp(&b.1)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(b.0.cmp(&a.0))
            });
        let Some((trunk, _)) = candidate else {
            break;
        };
        moves.push(Move {
            trunk,
            from: hot,
            to: cold,
        });
        table.reassign_one(trunk, cold);
    }
    moves
}

/// Plan a join: the trunks a newcomer should receive for a fair share,
/// stolen count-wise from the most loaded machines (same placement the
/// stop-the-world `cold_join` produces, as a list of online moves).
pub fn plan_join(table: &AddressingTable, joiner: MachineId) -> Vec<Move> {
    let mut scratch = table.clone();
    scratch
        .rebalance_join(joiner)
        .into_iter()
        .map(|(trunk, from)| Move {
            trunk,
            from,
            to: joiner,
        })
        .collect()
}

/// Plan a drain: every trunk of `victim` goes to the live machine with
/// the fewest trunks at that point (ties toward the lower machine id),
/// so the survivors end up count-balanced.
pub fn plan_drain(table: &AddressingTable, victim: MachineId, live: &[MachineId]) -> Vec<Move> {
    let mut scratch = table.clone();
    let targets: Vec<MachineId> = live.iter().copied().filter(|&m| m != victim).collect();
    assert!(!targets.is_empty(), "cannot drain the last machine");
    let mut moves = Vec::new();
    for trunk in scratch.trunks_of(victim) {
        let &to = targets
            .iter()
            .min_by_key(|&&m| (scratch.trunks_of(m).len(), m.0))
            .expect("non-empty targets");
        moves.push(Move {
            trunk,
            from: victim,
            to,
        });
        scratch.reassign_one(trunk, to);
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(p: u32, machines: usize) -> AddressingTable {
        AddressingTable::round_robin(p, machines)
    }

    #[test]
    fn rebalance_plan_moves_heat_off_the_hot_machine() {
        let t = table(4, 4); // 16 trunks over 4 machines
                             // All heat on machine 0's trunks.
        let mut scores = HashMap::new();
        for g in t.trunks_of(MachineId(0)) {
            scores.insert(g, 100.0);
        }
        for g in 0..16u64 {
            scores.entry(g).or_insert(10.0);
        }
        assert!(placement_imbalance(&t, &scores) > 1.5);
        let moves = plan_rebalance(&t, &scores, 1.5);
        assert!(!moves.is_empty());
        assert!(moves.iter().all(|m| m.from == MachineId(0)));
        // Applying the plan meets the threshold.
        let mut after = t.clone();
        for m in &moves {
            after.reassign_one(m.trunk, m.to);
        }
        assert!(placement_imbalance(&after, &scores) <= 1.5);
        // And the plan is minimal in the greedy sense: prefix plans do
        // not already meet the threshold.
        let mut partial = t.clone();
        for m in &moves[..moves.len() - 1] {
            partial.reassign_one(m.trunk, m.to);
        }
        assert!(placement_imbalance(&partial, &scores) > 1.5);
    }

    #[test]
    fn rebalance_plan_is_empty_when_balanced() {
        let t = table(4, 4);
        let scores: HashMap<u64, f64> = (0..16u64).map(|g| (g, 5.0)).collect();
        assert!(plan_rebalance(&t, &scores, 1.5).is_empty());
        // No load at all: nothing to do either.
        assert!(plan_rebalance(&t, &HashMap::new(), 1.5).is_empty());
    }

    #[test]
    fn drain_plan_empties_the_victim_and_balances_survivors() {
        let t = table(4, 4);
        let live: Vec<MachineId> = (0..4).map(MachineId).collect();
        let moves = plan_drain(&t, MachineId(2), &live);
        assert_eq!(moves.len(), t.trunks_of(MachineId(2)).len());
        let mut after = t.clone();
        for m in &moves {
            assert_eq!(m.from, MachineId(2));
            assert_ne!(m.to, MachineId(2));
            after.reassign_one(m.trunk, m.to);
        }
        assert!(after.trunks_of(MachineId(2)).is_empty());
        for &m in live.iter().filter(|&&m| m != MachineId(2)) {
            let n = after.trunks_of(m).len();
            assert!((5..=6).contains(&n), "machine {m:?} got {n} trunks");
        }
    }

    #[test]
    fn join_plan_matches_cold_join_placement() {
        let t = table(4, 3);
        let moves = plan_join(&t, MachineId(3));
        assert_eq!(moves.len(), 4); // 16 / 4 fair share
        assert!(moves.iter().all(|m| m.to == MachineId(3)));
    }
}
