//! Elastic membership for the Trinity memory cloud.
//!
//! The paper's memory cloud supports joins and leaves by reassigning
//! addressing-table slots and reloading trunks from TFS backups — a
//! stop-the-world move that loses writes racing the snapshot. This crate
//! adds the *online* path: a coordinator-driven migration engine that
//! streams a trunk's cells from donor to recipient in bounded chunks
//! **while the donor keeps serving**, captures concurrent writes in a
//! version-stamped delta log, replays them in a catch-up pass, and
//! commits with an epoch-bumped addressing-table flip persisted to TFS
//! before any replica installs it. Stale owners answer post-flip
//! requests with `Moved{epoch}`, which the access path resolves by
//! syncing its table replica and retrying — so a healthy migration is
//! invisible to clients.
//!
//! On top of single-trunk migration sit three cluster operations:
//!
//! * [`MigrationEngine::join_machine`] — bring a standby in by streaming
//!   its fair share of trunks onto it, one at a time;
//! * [`MigrationEngine::drain_machine`] — gracefully retire a machine by
//!   migrating everything off it before it leaves;
//! * [`MigrationEngine::rebalance`] — consume the per-trunk
//!   [`LoadMap`](trinity_obs::LoadMap) rates to plan the fewest moves
//!   that bring hotness imbalance under a threshold, then execute them.
//!
//! The wire protocol and the donor/recipient state machines live in
//! `trinity_memcloud::migration`; this crate is the coordinator.

mod engine;
mod planner;

pub use engine::{ElasticError, MigrationConfig, MigrationEngine, MigrationPhase, MigrationReport};
pub use planner::{
    cluster_trunk_scores, placement_imbalance, plan_drain, plan_join, plan_rebalance, Move,
};

/// Result alias for elastic operations.
pub type Result<T> = std::result::Result<T, ElasticError>;
