//! The migration coordinator.
//!
//! [`MigrationEngine`] drives the six-phase protocol implemented by
//! `trinity_memcloud::migration` (begin → stream → catch-up → seal →
//! commit → flip) from whichever machine hosts the coordinator — in the
//! full system, the recovery leader. Every frame travels over the
//! fabric, so chaos faults (crashes, duplicated or delayed frames)
//! exercise the protocol's fencing; only the final table *installs* are
//! direct in-process calls, mirroring how `MemoryCloud::recover`
//! distributes a new table.
//!
//! Failure handling is uniform: any error after `begin` sends
//! best-effort aborts to both peers (the donor unseals and keeps
//! serving; the recipient discards its staging) and surfaces the error.
//! A donor that never hears the abort — coordinator crash — unseals
//! itself through the `SEAL_TIMEOUT` path by consulting the TFS primary.

use std::fmt;
use std::time::{Duration, Instant};

use trinity_memcloud::migration;
use trinity_memcloud::{AddressingTable, CloudError, MemoryCloud, TFS_TABLE_PATH};
use trinity_net::MachineId;
use trinity_obs::{next_trace_id, TraceGuard};

use crate::planner::{cluster_trunk_scores, plan_drain, plan_join, plan_rebalance, Move};
use crate::Result;

/// Errors surfaced by the migration engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElasticError {
    /// The underlying cloud operation failed (network, store, TFS, or a
    /// migration peer refusing a frame).
    Cloud(CloudError),
    /// Ownership of the trunk changed under the coordinator (a recovery
    /// or competing migration won); the attempt was aborted.
    Raced { trunk: u64 },
    /// The recipient died before the flip; the attempt was aborted and
    /// the donor keeps serving.
    RecipientDead { trunk: u64, machine: MachineId },
    /// No live machine can act as coordinator or migration target.
    NoCandidate,
}

impl fmt::Display for ElasticError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElasticError::Cloud(e) => write!(f, "cloud error: {e}"),
            ElasticError::Raced { trunk } => {
                write!(f, "trunk {trunk} changed owner mid-migration")
            }
            ElasticError::RecipientDead { trunk, machine } => {
                write!(f, "recipient {machine} died migrating trunk {trunk}")
            }
            ElasticError::NoCandidate => write!(f, "no live candidate machine"),
        }
    }
}

impl std::error::Error for ElasticError {}

impl From<CloudError> for ElasticError {
    fn from(e: CloudError) -> Self {
        ElasticError::Cloud(e)
    }
}

/// Protocol phase, reported through the engine's phase hook. The chaos
/// harness maps these to fabric marks to crash machines at exact points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationPhase {
    Begin,
    Stream,
    CatchUp,
    Seal,
    Commit,
    Flip,
}

impl MigrationPhase {
    /// Stable small integer for chaos `Mark` triggers (1..=6).
    pub fn mark(self) -> u64 {
        match self {
            MigrationPhase::Begin => 1,
            MigrationPhase::Stream => 2,
            MigrationPhase::CatchUp => 3,
            MigrationPhase::Seal => 4,
            MigrationPhase::Commit => 5,
            MigrationPhase::Flip => 6,
        }
    }

    /// Human-readable phase name.
    pub fn name(self) -> &'static str {
        match self {
            MigrationPhase::Begin => "begin",
            MigrationPhase::Stream => "stream",
            MigrationPhase::CatchUp => "catch-up",
            MigrationPhase::Seal => "seal",
            MigrationPhase::Commit => "commit",
            MigrationPhase::Flip => "flip",
        }
    }
}

/// Tuning knobs for the migration engine.
#[derive(Debug, Clone)]
pub struct MigrationConfig {
    /// Max cells per streamed chunk.
    pub chunk_cells: u32,
    /// Soft byte bound per streamed chunk (the chunk ends at the cell
    /// that crosses it).
    pub chunk_bytes: u32,
    /// Seal once a catch-up drain leaves at most this many dirty cells —
    /// the remainder drains inside the (brief) seal window.
    pub catchup_threshold: u64,
    /// Catch-up rounds before sealing regardless of the dirty backlog
    /// (bounds the chase against a write-heavy trunk).
    pub max_catchup_rounds: u32,
    /// Imbalance (max/mean machine hotness) the rebalance planner drives
    /// the cluster under.
    pub rebalance_threshold: f64,
    /// Machine to issue coordinator frames from; `None` picks the first
    /// live machine. The recovery leader sets this to itself.
    pub coordinator: Option<u16>,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            chunk_cells: 128,
            chunk_bytes: 256 * 1024,
            catchup_threshold: 16,
            max_catchup_rounds: 8,
            rebalance_threshold: 1.5,
            coordinator: None,
        }
    }
}

/// What one completed migration did.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    pub trunk: u64,
    pub from: MachineId,
    pub to: MachineId,
    /// Distinct cell states shipped (stream + delta replay).
    pub cells_moved: u64,
    /// Payload bytes streamed in the snapshot phase.
    pub bytes_streamed: u64,
    /// Delta-log entries replayed in catch-up and the seal drain.
    pub delta_replayed: u64,
    /// Table epoch after the flip (unchanged for a no-op migration).
    pub epoch: u64,
    pub duration: Duration,
}

type PhaseHook = Box<dyn Fn(MigrationPhase, u64) + Send + Sync>;

/// Coordinator for online trunk migrations.
#[derive(Default)]
pub struct MigrationEngine {
    cfg: MigrationConfig,
    on_phase: Option<PhaseHook>,
}

impl fmt::Debug for MigrationEngine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MigrationEngine")
            .field("cfg", &self.cfg)
            .finish()
    }
}

impl MigrationEngine {
    pub fn new(cfg: MigrationConfig) -> Self {
        MigrationEngine {
            cfg,
            on_phase: None,
        }
    }

    /// Install a phase hook, called as each migration enters each phase
    /// with `(phase, trunk)`. The chaos harness uses this to place
    /// fabric marks; the scale-out bench uses it for timelines.
    pub fn with_phase_hook(
        mut self,
        hook: impl Fn(MigrationPhase, u64) + Send + Sync + 'static,
    ) -> Self {
        self.on_phase = Some(Box::new(hook));
        self
    }

    fn phase(&self, p: MigrationPhase, trunk: u64) {
        if let Some(h) = &self.on_phase {
            h(p, trunk);
        }
    }

    /// The machine coordinator frames are issued from.
    fn coordinator(&self, cloud: &MemoryCloud) -> Result<MachineId> {
        if let Some(c) = self.cfg.coordinator {
            let m = MachineId(c);
            if !cloud.fabric().is_dead(m) {
                return Ok(m);
            }
        }
        (0..cloud.machines() as u16)
            .map(MachineId)
            .find(|&m| !cloud.fabric().is_dead(m))
            .ok_or(ElasticError::NoCandidate)
    }

    /// Migrate one trunk to `to`, streaming while the donor serves.
    /// No-op (and no epoch bump) when the trunk already lives there.
    pub fn migrate_trunk(
        &self,
        cloud: &MemoryCloud,
        trunk: u64,
        to: MachineId,
    ) -> Result<MigrationReport> {
        let started = Instant::now();
        let coord = self.coordinator(cloud)?;
        let ep = cloud.node(coord.0 as usize).endpoint().clone();
        let obs = ep.obs().clone();
        // The whole migration is one trace: every fabric frame it issues
        // records `net.*` spans under it, so the cross-machine timeline
        // shows chunk-by-chunk progress.
        let _trace = TraceGuard::enter(next_trace_id());
        let span_start = obs.now_us();

        let table = read_primary(cloud)?;
        let from = table.machine_for(trunk);
        if from == to {
            return Ok(MigrationReport {
                trunk,
                from,
                to,
                cells_moved: 0,
                bytes_streamed: 0,
                delta_replayed: 0,
                epoch: table.epoch,
                duration: started.elapsed(),
            });
        }
        if cloud.fabric().is_dead(to) {
            return Err(ElasticError::RecipientDead { trunk, machine: to });
        }
        let mid = migration::next_migration_id();
        match self.run_migration(cloud, &ep, trunk, from, to, mid) {
            Ok((cells_moved, bytes_streamed, delta_replayed, epoch)) => {
                obs.counter("elastic.cells_moved").add(cells_moved);
                obs.counter("elastic.bytes_streamed").add(bytes_streamed);
                obs.counter("elastic.delta_replayed").add(delta_replayed);
                obs.counter("elastic.migrations").inc();
                let duration = started.elapsed();
                obs.histogram("elastic.migration_us")
                    .record(duration.as_micros() as u64);
                obs.span(
                    "elastic.migrate",
                    0,
                    bytes_streamed,
                    cells_moved.min(u32::MAX as u64) as u32,
                    span_start,
                );
                Ok(MigrationReport {
                    trunk,
                    from,
                    to,
                    cells_moved,
                    bytes_streamed,
                    delta_replayed,
                    epoch,
                    duration,
                })
            }
            Err(e) => {
                // Best-effort aborts: the donor unseals and serves on,
                // the recipient discards its staging. Unreachable peers
                // resolve themselves (seal timeout / recovery).
                let _ = migration::abort(&ep, from, mid, trunk);
                let _ = migration::abort(&ep, to, mid, trunk);
                obs.counter("elastic.aborts").inc();
                Err(e)
            }
        }
    }

    fn run_migration(
        &self,
        cloud: &MemoryCloud,
        ep: &trinity_net::Endpoint,
        trunk: u64,
        from: MachineId,
        to: MachineId,
        mid: u64,
    ) -> Result<(u64, u64, u64, u64)> {
        self.phase(MigrationPhase::Begin, trunk);
        let total = migration::begin(ep, from, mid, trunk)?;

        self.phase(MigrationPhase::Stream, trunk);
        let mut cursor = 0u64;
        let mut cells_moved = 0u64;
        let mut bytes_streamed = 0u64;
        while cursor < total {
            let (next, entries) = migration::read_chunk(
                ep,
                from,
                mid,
                trunk,
                cursor,
                self.cfg.chunk_cells,
                self.cfg.chunk_bytes,
            )?;
            if !entries.is_empty() {
                cells_moved += entries.len() as u64;
                bytes_streamed += entries.iter().map(|e| e.payload_len() as u64).sum::<u64>();
                migration::apply(ep, to, mid, trunk, &entries)?;
            }
            if next <= cursor {
                break; // donor reports no forward progress: snapshot done
            }
            cursor = next;
        }

        self.phase(MigrationPhase::CatchUp, trunk);
        let mut delta_replayed = 0u64;
        for _ in 0..self.cfg.max_catchup_rounds.max(1) {
            let (remaining, entries) =
                migration::drain_delta(ep, from, mid, trunk, self.cfg.chunk_cells)?;
            if !entries.is_empty() {
                delta_replayed += entries.len() as u64;
                migration::apply(ep, to, mid, trunk, &entries)?;
            }
            if remaining <= self.cfg.catchup_threshold {
                break;
            }
        }

        // Seal: writes refuse with MOVED from here; drain the tail dry.
        self.phase(MigrationPhase::Seal, trunk);
        migration::seal(ep, from, mid, trunk)?;
        loop {
            let (remaining, entries) =
                migration::drain_delta(ep, from, mid, trunk, self.cfg.chunk_cells)?;
            let drained = entries.len();
            if drained > 0 {
                delta_replayed += drained as u64;
                migration::apply(ep, to, mid, trunk, &entries)?;
            }
            if remaining == 0 && drained == 0 {
                break;
            }
        }

        self.phase(MigrationPhase::Commit, trunk);
        migration::commit(ep, to, mid, trunk)?;

        self.phase(MigrationPhase::Flip, trunk);
        let (table_ver, mut cur) = read_primary_versioned(cloud)?;
        if cur.machine_for(trunk) != from {
            return Err(ElasticError::Raced { trunk });
        }
        if cloud.fabric().is_dead(to) {
            return Err(ElasticError::RecipientDead { trunk, machine: to });
        }
        cur.reassign_one(trunk, to);
        // The flip is a *conditional* write against the version read
        // above: a concurrent table writer — a recovery reassigning a
        // dead machine's trunks, a competing coordinator, or the donor
        // releasing its seal lease after deciding we died — wins the
        // race and this flip aborts instead of clobbering their update
        // (or committing a stream the donor no longer feeds).
        match cloud
            .tfs()
            .write_if_version(TFS_TABLE_PATH, &cur.encode(), table_ver)
        {
            Ok(_) => {}
            Err(trinity_tfs::TfsError::VersionMismatch { .. }) => {
                return Err(ElasticError::Raced { trunk });
            }
            Err(e) => return Err(ElasticError::Cloud(CloudError::Tfs(e))),
        }
        let epoch = cur.epoch;
        // Install order matters: the recipient first (so the moment the
        // donor starts answering MOVED, the new owner already serves),
        // the donor second (it evicts the trunk and records the flip
        // epoch), then the rest of the cluster. Stale replicas self-heal
        // through the MOVED/sync path regardless.
        cloud.node(to.0 as usize).install_table(cur.clone())?;
        if !cloud.fabric().is_dead(from) {
            cloud.node(from.0 as usize).install_table(cur.clone())?;
        }
        for m in 0..cloud.machines() {
            let machine = MachineId(m as u16);
            if machine == from || machine == to || cloud.fabric().is_dead(machine) {
                continue;
            }
            cloud.node(m).install_table(cur.clone())?;
        }
        Ok((cells_moved, bytes_streamed, delta_replayed, epoch))
    }

    /// Execute a plan one migration at a time. Stops at the first error;
    /// completed moves stay flipped (the cloud is consistent, just less
    /// rebalanced than planned).
    pub fn execute(&self, cloud: &MemoryCloud, moves: &[Move]) -> Result<Vec<MigrationReport>> {
        let mut reports = Vec::with_capacity(moves.len());
        for mv in moves {
            reports.push(self.migrate_trunk(cloud, mv.trunk, mv.to)?);
        }
        Ok(reports)
    }

    /// Online join: stream a fair share of trunks onto machine `m` while
    /// the donors keep serving (the elastic replacement for
    /// `MemoryCloud::cold_join`).
    pub fn join_machine(&self, cloud: &MemoryCloud, m: usize) -> Result<Vec<MigrationReport>> {
        let table = read_primary(cloud)?;
        let moves = plan_join(&table, MachineId(m as u16));
        self.execute(cloud, &moves)
    }

    /// Graceful leave: migrate every trunk off machine `m`, leaving it
    /// owning nothing — it can then be shut down without data loss or a
    /// recovery event.
    pub fn drain_machine(&self, cloud: &MemoryCloud, m: usize) -> Result<Vec<MigrationReport>> {
        let victim = MachineId(m as u16);
        let live: Vec<MachineId> = (0..cloud.machines() as u16)
            .map(MachineId)
            .filter(|&x| x != victim && !cloud.fabric().is_dead(x))
            .collect();
        if live.is_empty() {
            return Err(ElasticError::NoCandidate);
        }
        let table = read_primary(cloud)?;
        let moves = plan_drain(&table, victim, &live);
        self.execute(cloud, &moves)
    }

    /// Load-driven rebalance: merge the cluster's per-trunk hotness,
    /// plan the fewest moves that bring imbalance at or under the
    /// configured threshold, and execute them. Returns the reports (an
    /// empty vec when the cluster is already balanced).
    pub fn rebalance(&self, cloud: &MemoryCloud) -> Result<Vec<MigrationReport>> {
        let table = read_primary(cloud)?;
        let scores = cluster_trunk_scores(cloud);
        let moves = plan_rebalance(&table, &scores, self.cfg.rebalance_threshold);
        self.execute(cloud, &moves)
    }
}

/// Read the primary addressing-table replica from TFS.
fn read_primary(cloud: &MemoryCloud) -> Result<AddressingTable> {
    read_primary_versioned(cloud).map(|(_, t)| t)
}

/// Read the primary table plus its TFS file version, for a conditional
/// flip write (`write_if_version`).
fn read_primary_versioned(cloud: &MemoryCloud) -> Result<(u64, AddressingTable)> {
    let (ver, bytes) = cloud
        .tfs()
        .read_versioned(TFS_TABLE_PATH)
        .map_err(|e| ElasticError::Cloud(CloudError::Tfs(e)))?;
    let table = AddressingTable::decode(&bytes).ok_or(ElasticError::Cloud(CloudError::BadReply))?;
    Ok((ver, table))
}
