//! End-to-end migration tests over a simulated memory cloud: cells
//! survive the move, concurrent writes land exactly once, and the
//! cluster operations (join, drain, rebalance) leave every cell
//! readable through every machine.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trinity_elastic::{MigrationConfig, MigrationEngine, MigrationPhase};
use trinity_memcloud::{migration, AddressingTable, CloudConfig, MemoryCloud, TFS_TABLE_PATH};
use trinity_net::MachineId;

fn cloud_with_standby(machines: usize, standby: usize) -> MemoryCloud {
    MemoryCloud::new(CloudConfig {
        standby_machines: standby,
        ..CloudConfig::small(machines)
    })
}

/// Ids that route to `trunk` under the cloud's table.
fn ids_in_trunk(cloud: &MemoryCloud, trunk: u64, n: usize) -> Vec<u64> {
    let table = cloud.node(0).table();
    (0u64..)
        .filter(|&i| table.trunk_of(i) == trunk)
        .take(n)
        .collect()
}

/// A trunk owned by `m` (the first one).
fn trunk_of_machine(cloud: &MemoryCloud, m: u16) -> u64 {
    cloud.node(0).table().trunks_of(MachineId(m))[0]
}

#[test]
fn migrate_trunk_moves_cells_and_bumps_epoch() {
    let cloud = cloud_with_standby(3, 1);
    for i in 0..300u64 {
        cloud.node(0).put(i, format!("v{i}").as_bytes()).unwrap();
    }
    let trunk = trunk_of_machine(&cloud, 0);
    let before_epoch = cloud.node(0).table().epoch;
    let engine = MigrationEngine::new(MigrationConfig::default());
    let report = engine
        .migrate_trunk(&cloud, trunk, MachineId(3))
        .expect("migration");
    assert_eq!(report.from, MachineId(0));
    assert_eq!(report.to, MachineId(3));
    assert!(report.cells_moved > 0, "the trunk must carry cells");
    assert_eq!(report.epoch, before_epoch + 1);
    // The recipient owns the trunk on every replica, and every cell
    // reads back through every machine.
    for m in 0..4 {
        assert_eq!(
            cloud.node(m).table().machine_for(trunk),
            MachineId(3),
            "replica {m} still routes the trunk to the donor"
        );
    }
    for i in 0..300u64 {
        for m in 0..4 {
            assert_eq!(
                cloud.node(m).get(i).unwrap().as_deref(),
                Some(format!("v{i}").as_bytes()),
                "cell {i} via machine {m} after migration"
            );
        }
    }
    // Writes to the moved trunk land on the new owner.
    let id = ids_in_trunk(&cloud, trunk, 1)[0];
    cloud.node(1).put(id, b"post-flip").unwrap();
    assert_eq!(cloud.node(3).get(id).unwrap().unwrap(), b"post-flip");
    cloud.shutdown();
}

#[test]
fn migrating_to_current_owner_is_a_noop() {
    let cloud = cloud_with_standby(3, 0);
    let trunk = trunk_of_machine(&cloud, 1);
    let before = cloud.node(0).table().epoch;
    let engine = MigrationEngine::new(MigrationConfig::default());
    let report = engine.migrate_trunk(&cloud, trunk, MachineId(1)).unwrap();
    assert_eq!(report.cells_moved, 0);
    assert_eq!(report.epoch, before, "a no-op must not bump the epoch");
    cloud.shutdown();
}

#[test]
fn writes_during_stream_and_catchup_are_replayed() {
    let cloud = cloud_with_standby(3, 1);
    let trunk = trunk_of_machine(&cloud, 0);
    let ids = ids_in_trunk(&cloud, trunk, 40);
    for &i in &ids {
        cloud.node(0).put(i, b"original").unwrap();
    }
    // The phase hook mutates the trunk mid-protocol, from another
    // machine's vantage point: overwrites during the stream, an
    // overwrite plus a remove during catch-up. All must be reflected
    // after the flip — the delta log replays them.
    let hook_cloud: Arc<MemoryCloud> = Arc::new(cloud);
    let cloud = Arc::clone(&hook_cloud);
    let ids_hook = ids.clone();
    let engine = MigrationEngine::new(MigrationConfig {
        // Tiny chunks so the stream phase takes several round trips.
        chunk_cells: 8,
        ..MigrationConfig::default()
    })
    .with_phase_hook(move |phase, _trunk| match phase {
        MigrationPhase::Stream => {
            for &i in ids_hook.iter().take(10) {
                hook_cloud.node(1).put(i, b"streamed-over").unwrap();
            }
        }
        MigrationPhase::CatchUp => {
            hook_cloud.node(2).put(ids_hook[0], b"caught-up").unwrap();
            hook_cloud.node(2).remove(ids_hook[1]).unwrap();
        }
        _ => {}
    });
    let report = engine.migrate_trunk(&cloud, trunk, MachineId(3)).unwrap();
    assert!(
        report.delta_replayed >= 2,
        "concurrent writes must flow through the delta log (replayed {})",
        report.delta_replayed
    );
    // Final states: id[0] caught-up, id[1] removed, ids[2..10]
    // streamed-over, the rest original.
    assert_eq!(
        cloud.node(0).get(ids[0]).unwrap().as_deref(),
        Some(&b"caught-up"[..])
    );
    assert_eq!(cloud.node(0).get(ids[1]).unwrap(), None);
    for &i in &ids[2..10] {
        assert_eq!(
            cloud.node(0).get(i).unwrap().as_deref(),
            Some(&b"streamed-over"[..]),
            "cell {i}"
        );
    }
    for &i in &ids[10..] {
        assert_eq!(
            cloud.node(0).get(i).unwrap().as_deref(),
            Some(&b"original"[..]),
            "cell {i}"
        );
    }
    cloud.shutdown();
}

#[test]
fn donor_serves_reads_through_every_pre_flip_phase() {
    let cloud = cloud_with_standby(3, 1);
    let trunk = trunk_of_machine(&cloud, 0);
    let ids = ids_in_trunk(&cloud, trunk, 20);
    for &i in &ids {
        cloud.node(0).put(i, b"readable").unwrap();
    }
    let hook_cloud: Arc<MemoryCloud> = Arc::new(cloud);
    let cloud = Arc::clone(&hook_cloud);
    let ids_hook = ids.clone();
    let saw_flip = Arc::new(AtomicBool::new(false));
    let saw_flip_hook = Arc::clone(&saw_flip);
    let engine =
        MigrationEngine::new(MigrationConfig::default()).with_phase_hook(move |phase, _| {
            if phase == MigrationPhase::Flip {
                saw_flip_hook.store(true, Ordering::SeqCst);
            }
            // Reads must succeed in every phase — served by the donor
            // until the flip, by the recipient after. Cache cleared so
            // each read exercises the fabric path.
            hook_cloud.node(1).clear_cache();
            for &i in ids_hook.iter().take(5) {
                assert_eq!(
                    hook_cloud.node(1).get(i).unwrap().as_deref(),
                    Some(&b"readable"[..]),
                    "read failed during phase {}",
                    phase.name()
                );
            }
        });
    engine.migrate_trunk(&cloud, trunk, MachineId(3)).unwrap();
    assert!(saw_flip.load(Ordering::SeqCst));
    cloud.shutdown();
}

#[test]
fn concurrent_writers_ride_out_the_whole_migration() {
    let cloud = Arc::new(cloud_with_standby(3, 1));
    let trunk = trunk_of_machine(&cloud, 0);
    let ids = ids_in_trunk(&cloud, trunk, 16);
    for &i in &ids {
        cloud.node(0).put(i, &0u64.to_le_bytes()).unwrap();
    }
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for (w, &id) in ids.iter().enumerate().take(4) {
        let cloud = Arc::clone(&cloud);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let via = (w % 3) + 1; // never the standby
            let mut n = 0u64;
            while !stop.load(Ordering::Relaxed) {
                n += 1;
                // Every write must succeed: the access path retries
                // MOVED (seal window, post-flip staleness) internally.
                cloud.node(via).put(id, &n.to_le_bytes()).unwrap();
            }
            n
        }));
    }
    let engine = MigrationEngine::new(MigrationConfig {
        chunk_cells: 4,
        ..MigrationConfig::default()
    });
    let report = engine.migrate_trunk(&cloud, trunk, MachineId(3)).unwrap();
    stop.store(true, Ordering::Relaxed);
    let finals: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(report.to, MachineId(3));
    // The last acknowledged write of each writer is the visible state —
    // nothing lost, nothing rolled back.
    for (w, &id) in ids.iter().enumerate().take(4) {
        let got = cloud.node(0).get(id).unwrap().unwrap();
        let got = u64::from_le_bytes(got.as_slice().try_into().unwrap());
        assert_eq!(
            got, finals[w],
            "writer {w}: cell shows {got}, last ack was {}",
            finals[w]
        );
    }
    cloud.shutdown();
}

#[test]
fn join_machine_streams_a_fair_share_online() {
    let cloud = cloud_with_standby(3, 1);
    for i in 0..400u64 {
        cloud.node(0).put(i, format!("j{i}").as_bytes()).unwrap();
    }
    assert_eq!(cloud.node(3).store().cell_count(), 0);
    let engine = MigrationEngine::new(MigrationConfig::default());
    let reports = engine.join_machine(&cloud, 3).expect("join");
    let fair = cloud.node(0).table().trunk_count() / 4;
    assert_eq!(reports.len(), fair, "the joiner gets a fair share");
    assert_eq!(cloud.node(0).table().trunks_of(MachineId(3)).len(), fair);
    assert!(cloud.node(3).store().cell_count() > 0);
    for i in 0..400u64 {
        for m in 0..4 {
            assert_eq!(
                cloud.node(m).get(i).unwrap().as_deref(),
                Some(format!("j{i}").as_bytes()),
                "cell {i} via machine {m} after online join"
            );
        }
    }
    cloud.shutdown();
}

#[test]
fn drain_machine_empties_it_without_data_loss() {
    let cloud = cloud_with_standby(4, 0);
    for i in 0..400u64 {
        cloud.node(0).put(i, format!("d{i}").as_bytes()).unwrap();
    }
    let victim = 2;
    assert!(cloud.node(victim).store().cell_count() > 0);
    let engine = MigrationEngine::new(MigrationConfig::default());
    let reports = engine.drain_machine(&cloud, victim).expect("drain");
    assert!(!reports.is_empty());
    assert!(
        cloud
            .node(0)
            .table()
            .trunks_of(MachineId(victim as u16))
            .is_empty(),
        "the drained machine must own nothing"
    );
    // The machine can now leave without a recovery event: kill it and
    // read everything back with no recover() call.
    cloud.kill_machine(victim);
    for i in 0..400u64 {
        assert_eq!(
            cloud.node(0).get(i).unwrap().as_deref(),
            Some(format!("d{i}").as_bytes()),
            "cell {i} lost by the drain"
        );
    }
    cloud.shutdown();
}

#[test]
fn uncommitted_staging_is_not_adopted_by_failure_recovery() {
    let cloud = cloud_with_standby(3, 1);
    let donor = MachineId(0);
    let recipient = MachineId(3);
    let trunk = trunk_of_machine(&cloud, 0);
    let ids = ids_in_trunk(&cloud, trunk, 12);
    for &i in &ids {
        cloud.node(0).put(i, b"durable").unwrap();
    }
    cloud.backup_all().unwrap();
    // A coordinator streams a *partial* chunk into the standby, then
    // dies before MIG_COMMIT: the staging persists, uncommitted.
    let ep = cloud.node(1).endpoint().clone();
    let mid = migration::next_migration_id();
    let total = migration::begin(&ep, donor, mid, trunk).unwrap();
    let (_, entries) = migration::read_chunk(&ep, donor, mid, trunk, 0, 4, u32::MAX).unwrap();
    assert!(
        (entries.len() as u64) < total,
        "the staged image must be incomplete for this test to bite"
    );
    migration::apply(&ep, recipient, mid, trunk, &entries).unwrap();
    // The donor dies, and recovery happens to hand its trunks to the
    // very machine holding the partial staging.
    cloud.kill_machine(0);
    let mut table = cloud.node(1).table();
    for gid in table.trunks_of(donor) {
        table.reassign_one(gid, recipient);
    }
    cloud.tfs().write(TFS_TABLE_PATH, &table.encode()).unwrap();
    for m in 1..4 {
        cloud.node(m).install_table(table.clone()).unwrap();
    }
    // The new owner must serve the reloaded TFS backup — every acked
    // cell — never the partial staged image.
    for &i in &ids {
        assert_eq!(
            cloud.node(1).get(i).unwrap().as_deref(),
            Some(&b"durable"[..]),
            "cell {i} vanished: uncommitted staging was adopted as authoritative"
        );
    }
    cloud.shutdown();
}

#[test]
fn donor_unseal_fences_out_a_slow_coordinators_flip() {
    let cloud = cloud_with_standby(3, 1);
    let trunk = trunk_of_machine(&cloud, 0);
    let id = ids_in_trunk(&cloud, trunk, 1)[0];
    cloud.node(0).put(id, b"before").unwrap();
    let ep = cloud.node(1).endpoint().clone();
    let mid = migration::next_migration_id();
    migration::begin(&ep, MachineId(0), mid, trunk).unwrap();
    migration::seal(&ep, MachineId(0), mid, trunk).unwrap();
    // The coordinator reads the table for its flip... then stalls.
    let (ver, bytes) = cloud.tfs().read_versioned(TFS_TABLE_PATH).unwrap();
    let mut flipped = AddressingTable::decode(&bytes).unwrap();
    flipped.reassign_one(trunk, MachineId(3));
    // The seal lease expires; the donor persists its unseal decision
    // through TFS and applies the write — which was never streamed.
    std::thread::sleep(migration::SEAL_TIMEOUT + Duration::from_millis(100));
    cloud.node(2).put(id, b"after-unseal").unwrap();
    // The stalled coordinator wakes and attempts the flip: the donor's
    // lease release bumped the table version, so the conditional write
    // must lose — committing it would drop the acked write above.
    assert!(
        matches!(
            cloud
                .tfs()
                .write_if_version(TFS_TABLE_PATH, &flipped.encode(), ver),
            Err(trinity_tfs::TfsError::VersionMismatch { .. })
        ),
        "a flip planned before the unseal must be fenced out"
    );
    cloud.node(1).clear_cache();
    assert_eq!(cloud.node(1).get(id).unwrap().unwrap(), b"after-unseal");
    cloud.shutdown();
}

#[test]
fn idle_unsealed_donor_entry_is_garbage_collected() {
    let cloud = cloud_with_standby(3, 1);
    let trunk = trunk_of_machine(&cloud, 0);
    let id = ids_in_trunk(&cloud, trunk, 1)[0];
    cloud.node(0).put(id, b"v0").unwrap();
    let ep = cloud.node(1).endpoint().clone();
    let mid = migration::next_migration_id();
    migration::begin(&ep, MachineId(0), mid, trunk).unwrap();
    // The coordinator dies before SEAL: no frame ever arrives again.
    // After the idle timeout the first gated write reaps the entry, so
    // the trunk stops paying the delta-log tax...
    std::thread::sleep(migration::DONOR_IDLE_TIMEOUT + Duration::from_millis(100));
    cloud.node(2).put(id, b"v1").unwrap();
    // ...and stale frames of the abandoned attempt are refused.
    assert!(
        migration::read_chunk(&ep, MachineId(0), mid, trunk, 0, 8, u32::MAX).is_err(),
        "the reaped migration must not serve further frames"
    );
    assert_eq!(cloud.node(0).get(id).unwrap().unwrap(), b"v1");
    cloud.shutdown();
}

#[test]
fn rebalance_follows_the_load_map() {
    let cloud = cloud_with_standby(3, 1);
    // Heat exactly one machine's trunks so max/mean is far above the
    // threshold, then let the planner spread them out.
    for i in 0..2000u64 {
        let id = i;
        if cloud.node(0).table().machine_of(id) == MachineId(0) {
            cloud.node(0).put(id, b"hot").unwrap();
            cloud.node(0).get(id).unwrap();
        }
    }
    let engine = MigrationEngine::new(MigrationConfig::default());
    let reports = engine.rebalance(&cloud).expect("rebalance");
    assert!(
        !reports.is_empty(),
        "a lopsided load map must produce at least one move"
    );
    assert!(reports.iter().all(|r| r.from == MachineId(0)));
    cloud.shutdown();
}
