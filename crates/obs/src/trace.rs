//! Distributed query tracing.
//!
//! A *trace* is one logical unit of distributed work — an online traversal
//! query, a BSP job, a recovery episode. At entry the coordinator allocates
//! a process-unique 64-bit id with [`next_trace_id`] and installs it in its
//! thread with a [`TraceGuard`]. The network layer stamps the current trace
//! id into every outgoing envelope header, and re-installs it around
//! handler dispatch on the receiving machine — so the id follows the query
//! across machine hops (and across the recursive fan-out of the paper's
//! §5.1 traversal) with no cooperation from the algorithm code.
//!
//! Every machine owns a bounded [`SpanRing`] of [`SpanEvent`]s. Recording
//! is skipped when no trace is active, so untraced work pays a single
//! thread-local read; when the ring fills, the oldest spans are dropped
//! (and counted) rather than blocking or growing.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// The "no active trace" sentinel: untraced envelopes carry this id and
/// record no spans.
pub const NO_TRACE: u64 = 0;

/// Span ring capacity per machine. 4096 spans comfortably covers a
/// multi-hop query or a few supersteps; long jobs wrap (oldest dropped).
pub const SPAN_RING_CAPACITY: usize = 4096;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(NO_TRACE) };
}

/// Allocate a fresh process-unique trace id (never [`NO_TRACE`]).
pub fn next_trace_id() -> u64 {
    NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
}

/// The trace id active on this thread, or [`NO_TRACE`].
#[inline]
pub fn current_trace() -> u64 {
    CURRENT.with(|c| c.get())
}

/// RAII guard installing a trace id on the current thread; the previous id
/// is restored on drop, so nested scopes (a traced handler issuing its own
/// traced sub-query) compose.
#[derive(Debug)]
pub struct TraceGuard {
    prev: u64,
}

impl TraceGuard {
    /// Install `id` as the current thread's trace.
    pub fn enter(id: u64) -> Self {
        let prev = CURRENT.with(|c| c.replace(id));
        TraceGuard { prev }
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// One recorded event inside a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Trace this span belongs to.
    pub trace: u64,
    /// Machine that recorded the span.
    pub machine: u16,
    /// What happened — a static label like `"net.deliver"` or
    /// `"bsp.superstep"`.
    pub label: &'static str,
    /// Protocol id involved, or 0 where not applicable.
    pub proto: u16,
    /// Bytes moved or touched by the event.
    pub bytes: u64,
    /// Payload frames (logical messages) involved.
    pub frames: u32,
    /// Start, in microseconds since the owning ring's epoch.
    pub start_us: u64,
    /// End, in microseconds since the owning ring's epoch.
    pub end_us: u64,
}

/// Bounded, overwrite-oldest buffer of span events for one machine.
#[derive(Debug)]
pub struct SpanRing {
    epoch: Instant,
    inner: Mutex<RingState>,
    dropped: AtomicU64,
    capacity: usize,
}

#[derive(Debug)]
struct RingState {
    /// Preallocated storage; once full it is overwritten circularly.
    slots: Vec<SpanEvent>,
    /// Next write position when the ring is full.
    head: usize,
}

impl Default for SpanRing {
    fn default() -> Self {
        SpanRing::with_capacity(SPAN_RING_CAPACITY)
    }
}

impl SpanRing {
    pub fn with_capacity(capacity: usize) -> Self {
        SpanRing::with_epoch(Instant::now(), capacity)
    }

    /// A ring whose timestamps count from an explicit epoch. Every ring in
    /// one registry shares the registry's epoch, so spans recorded on
    /// different machines of one simulated cluster are directly comparable
    /// and can be stitched into a single cross-machine timeline.
    pub fn with_epoch(epoch: Instant, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        SpanRing {
            epoch,
            inner: Mutex::new(RingState {
                slots: Vec::with_capacity(capacity),
                head: 0,
            }),
            dropped: AtomicU64::new(0),
            capacity,
        }
    }

    /// Microseconds elapsed since this ring's epoch — the timestamp base
    /// for spans recorded here.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a span. No allocation once the ring has filled; the oldest
    /// span is overwritten and counted as dropped.
    pub fn record(&self, ev: SpanEvent) {
        let mut st = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if st.slots.len() < self.capacity {
            st.slots.push(ev);
        } else {
            let head = st.head;
            st.slots[head] = ev;
            st.head = (head + 1) % self.capacity;
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Spans dropped to overwriting so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy out the buffered spans, oldest first.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let st = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let mut out = Vec::with_capacity(st.slots.len());
        out.extend_from_slice(&st.slots[st.head..]);
        out.extend_from_slice(&st.slots[..st.head]);
        out
    }

    /// Discard all buffered spans (the drop counter is preserved).
    pub fn clear(&self) {
        let mut st = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        st.slots.clear();
        st.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(trace: u64, label: &'static str) -> SpanEvent {
        SpanEvent {
            trace,
            machine: 0,
            label,
            proto: 0,
            bytes: 0,
            frames: 0,
            start_us: 0,
            end_us: 0,
        }
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, NO_TRACE);
        assert_ne!(a, b);
    }

    #[test]
    fn guard_nests_and_restores() {
        assert_eq!(current_trace(), NO_TRACE);
        {
            let _g = TraceGuard::enter(7);
            assert_eq!(current_trace(), 7);
            {
                let _h = TraceGuard::enter(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), NO_TRACE);
    }

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let ring = SpanRing::with_capacity(4);
        for i in 1..=6u64 {
            ring.record(ev(i, "x"));
        }
        let spans = ring.snapshot();
        assert_eq!(spans.len(), 4);
        assert_eq!(
            spans.iter().map(|s| s.trace).collect::<Vec<_>>(),
            vec![3, 4, 5, 6]
        );
        assert_eq!(ring.dropped(), 2);
    }
}
