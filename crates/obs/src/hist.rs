//! Log₂-bucketed histograms for latency and size distributions.
//!
//! A recorded value `v` lands in bucket `0` when `v == 0` and otherwise in
//! bucket `floor(log2(v)) + 1`, i.e. bucket `b ≥ 1` covers the value range
//! `[2^(b-1), 2^b - 1]`. With 65 buckets the full `u64` domain is covered,
//! recording is branch-light (one `leading_zeros` plus one relaxed
//! `fetch_add`), and quantile estimates are exact to within one power of
//! two — plenty for the order-of-magnitude questions the figures ask
//! (microseconds per superstep, bytes per envelope).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one for zero plus one per bit of `u64`.
pub const BUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper edge of a bucket.
#[inline]
fn bucket_edge(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// A concurrent log₂ histogram. Recording is lock-free; all counters are
/// relaxed atomics.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`], or a difference of two copies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    /// Sum of recorded values (wrapping on overflow).
    pub sum: u64,
    /// Largest value ever recorded (monotonic: not meaningful in a delta
    /// beyond "largest seen up to the later snapshot").
    pub max: u64,
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistSnapshot {
    /// Observations recorded between two snapshots (`later - self`).
    pub fn delta_to(&self, later: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| later.buckets[i] - self.buckets[i]),
            count: later.count - self.count,
            sum: later.sum.wrapping_sub(self.sum),
            max: later.max,
        }
    }

    /// Element-wise sum (aggregating machines into cluster totals).
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Mean of the recorded values.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper-edge estimate of the `q`-quantile (`0.0 ..= 1.0`): the
    /// inclusive upper edge of the bucket containing the `ceil(q·count)`-th
    /// smallest observation, clamped to the observed maximum. Returns 0 for
    /// an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_edge(b).min(self.max);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Inclusive value range covered by bucket `b` — exposed so exporters
    /// and tests can label buckets without duplicating the edge math.
    pub fn bucket_range(b: usize) -> (u64, u64) {
        if b == 0 {
            (0, 0)
        } else {
            (1u64 << (b - 1), bucket_edge(b))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_partition_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        for b in 1..BUCKETS {
            let (lo, hi) = HistSnapshot::bucket_range(b);
            assert_eq!(bucket_of(lo), b);
            assert_eq!(bucket_of(hi), b);
            if b > 1 {
                assert_eq!(bucket_edge(b - 1) + 1, lo, "buckets must tile");
            }
        }
    }

    #[test]
    fn quantiles_bound_the_samples() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.max, 1000);
        // p50 of 1..=1000 is 500; the bucket upper edge for 500 is 511.
        assert_eq!(s.p50(), 511);
        assert!(s.p99() >= 990 && s.p99() <= 1000);
        assert_eq!(s.quantile(1.0), 1000, "q=1.0 clamps to observed max");
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn quantiles_at_bucket_boundaries() {
        // Exact powers of two sit at the *bottom* of their bucket: the
        // estimate is the bucket's upper edge clamped to the observed max.
        for pow in [1u64, 2, 4, 1024, 1 << 32] {
            let h = Histogram::new();
            h.record(pow);
            let s = h.snapshot();
            assert_eq!(s.quantile(0.0), pow, "single sample: every q is it");
            assert_eq!(s.quantile(0.5), pow);
            assert_eq!(s.quantile(1.0), pow);
        }
        // Two samples in adjacent buckets: q below/above the midpoint must
        // land in the respective bucket, and the upper estimate clamps to
        // the observed max rather than the bucket edge (511).
        let h = Histogram::new();
        h.record(255); // bucket [128, 255] — upper edge exactly the sample
        h.record(256); // bucket [256, 511] — lower edge exactly the sample
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), 255, "rank 1 → first bucket's edge");
        assert_eq!(s.quantile(0.51), 256, "rank 2 → clamped to max");
        assert_eq!(s.quantile(1.0), 256);
        // Zero occupies its own bucket with edge 0.
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.quantile(0.99), 0);
        assert_eq!(s.max, 0);
        // u64::MAX lands in the final bucket and clamps correctly.
        let h = Histogram::new();
        h.record(u64::MAX);
        assert_eq!(h.snapshot().quantile(0.5), u64::MAX);
    }

    #[test]
    fn hist_merge_of_deltas_equals_delta_of_merges() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(70);
        let (a0, b0) = (a.snapshot(), b.snapshot());
        a.record(5);
        b.record(900);
        let (a1, b1) = (a.snapshot(), b.snapshot());
        let mut merge_of_deltas = a0.delta_to(&a1);
        merge_of_deltas.merge(&b0.delta_to(&b1));
        let (mut m0, mut m1) = (a0, a1);
        m0.merge(&b0);
        m1.merge(&b1);
        let delta_of_merges = m0.delta_to(&m1);
        assert_eq!(merge_of_deltas.buckets, delta_of_merges.buckets);
        assert_eq!(merge_of_deltas.count, delta_of_merges.count);
        assert_eq!(merge_of_deltas.sum, delta_of_merges.sum);
    }

    #[test]
    fn delta_isolates_a_window() {
        let h = Histogram::new();
        h.record(10);
        let before = h.snapshot();
        h.record(100);
        h.record(1000);
        let d = before.delta_to(&h.snapshot());
        assert_eq!(d.count, 2);
        assert_eq!(d.sum, 1100);
    }

    #[test]
    fn merge_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(500);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 2);
        assert_eq!(m.sum, 505);
        assert_eq!(m.max, 500);
    }
}
