//! Scalar metrics: monotonic counters and settable gauges.
//!
//! Both are single relaxed atomics — the cost of recording is one
//! uncontended RMW, which is what lets the fabric hot path (every frame of
//! every envelope) stay instrumented unconditionally.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn new() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: an instantaneous level that can move both ways (bytes in use,
/// live machines, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Move the level up.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Move the level down.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current level.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
    }
}
