//! Exporters: aligned human-readable tables and JSON.
//!
//! The build environment has no crates.io access, so JSON is emitted by a
//! tiny hand-rolled value type rather than serde. [`Json`] covers exactly
//! what metric export needs (objects with ordered keys, arrays, strings,
//! integers, floats) and escapes per RFC 8259.

use std::fmt;
use std::io::{self, Write};

use crate::hist::HistSnapshot;
use crate::load::TrunkLoad;
use crate::registry::{MachineSnapshot, RegistrySnapshot};
use crate::trace::SpanEvent;

/// A JSON value with insertion-ordered object keys.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Push a key onto an object; panics on non-objects (programmer error).
    pub fn set(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Obj(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::set on a non-object"),
        }
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

fn escape_into(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::U64(n) => write!(f, "{n}"),
            Json::I64(n) => write!(f, "{n}"),
            Json::F64(x) => {
                if x.is_finite() {
                    // Always include a decimal point or exponent so the
                    // value round-trips as a float.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        write!(f, "{x:.1}")
                    } else {
                        write!(f, "{x}")
                    }
                } else {
                    f.write_str("null")
                }
            }
            Json::Str(s) => escape_into(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{it}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    escape_into(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn hist_json(h: &HistSnapshot) -> Json {
    // Buckets ship sparse: [bucket_upper_edge, count] pairs.
    let buckets: Vec<Json> = h
        .buckets
        .iter()
        .enumerate()
        .filter(|(_, &n)| n > 0)
        .map(|(b, &n)| {
            Json::Arr(vec![
                Json::U64(HistSnapshot::bucket_range(b).1),
                Json::U64(n),
            ])
        })
        .collect();
    Json::obj([
        ("count", Json::U64(h.count)),
        ("sum", Json::U64(h.sum)),
        ("max", Json::U64(h.max)),
        ("mean", Json::F64(h.mean())),
        ("p50", Json::U64(h.p50())),
        ("p95", Json::U64(h.p95())),
        ("p99", Json::U64(h.p99())),
        ("buckets", Json::Arr(buckets)),
    ])
}

/// One trunk's load as JSON (lifetime totals plus EWMA rates).
pub fn trunk_load_json(t: &TrunkLoad) -> Json {
    Json::obj([
        ("reads", Json::U64(t.reads)),
        ("writes", Json::U64(t.writes)),
        ("bytes_read", Json::U64(t.bytes_read)),
        ("bytes_written", Json::U64(t.bytes_written)),
        ("msgs", Json::U64(t.msgs)),
        ("hops", Json::U64(t.hops)),
        ("cache_hits", Json::U64(t.cache_hits)),
        ("cache_misses", Json::U64(t.cache_misses)),
        ("reads_per_s", Json::F64(t.reads_per_s)),
        ("writes_per_s", Json::F64(t.writes_per_s)),
        ("bytes_per_s", Json::F64(t.bytes_per_s)),
        ("msgs_per_s", Json::F64(t.msgs_per_s)),
        ("hops_per_s", Json::F64(t.hops_per_s)),
        ("remote_miss_share", Json::F64(t.remote_miss_share)),
        ("score", Json::F64(t.score())),
    ])
}

fn machine_json(m: &MachineSnapshot) -> Json {
    Json::obj([
        (
            "counters",
            Json::Obj(
                m.counters
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::U64(*v)))
                    .collect(),
            ),
        ),
        (
            "gauges",
            Json::Obj(
                m.gauges
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::I64(*v)))
                    .collect(),
            ),
        ),
        (
            "histograms",
            Json::Obj(
                m.hists
                    .iter()
                    .map(|(k, v)| (k.clone(), hist_json(v)))
                    .collect(),
            ),
        ),
        ("spans_dropped", Json::U64(m.spans_dropped)),
        (
            "load",
            Json::Obj(
                m.load
                    .iter()
                    .map(|(trunk, t)| (trunk.to_string(), trunk_load_json(t)))
                    .collect(),
            ),
        ),
    ])
}

/// One span as JSON (used by the JSON-lines exporter).
pub fn span_json(s: &SpanEvent) -> Json {
    Json::obj([
        ("trace", Json::U64(s.trace)),
        ("machine", Json::U64(s.machine as u64)),
        ("label", Json::from(s.label)),
        ("proto", Json::U64(s.proto as u64)),
        ("bytes", Json::U64(s.bytes)),
        ("frames", Json::U64(s.frames as u64)),
        ("start_us", Json::U64(s.start_us)),
        ("end_us", Json::U64(s.end_us)),
    ])
}

/// The whole registry snapshot as one JSON document:
/// `{"machines": {"0": {...}}, "totals": {...}}`.
pub fn snapshot_json(snap: &RegistrySnapshot) -> Json {
    Json::obj([
        (
            "machines",
            Json::Obj(
                snap.machines
                    .iter()
                    .map(|(m, s)| (m.to_string(), machine_json(s)))
                    .collect(),
            ),
        ),
        ("totals", machine_json(&snap.totals())),
    ])
}

/// Write the snapshot as a single JSON document.
pub fn write_json<W: Write>(w: &mut W, snap: &RegistrySnapshot) -> io::Result<()> {
    writeln!(w, "{}", snapshot_json(snap))
}

/// Write the snapshot as JSON-lines: one object per machine per metric,
/// grep- and `jq`-friendly.
pub fn write_jsonl<W: Write>(w: &mut W, snap: &RegistrySnapshot) -> io::Result<()> {
    for (machine, m) in &snap.machines {
        let mach = Json::U64(*machine as u64);
        for (name, v) in &m.counters {
            let line = Json::obj([
                ("machine", mach.clone()),
                ("kind", Json::from("counter")),
                ("name", Json::Str(name.clone())),
                ("value", Json::U64(*v)),
            ]);
            writeln!(w, "{line}")?;
        }
        for (name, v) in &m.gauges {
            let line = Json::obj([
                ("machine", mach.clone()),
                ("kind", Json::from("gauge")),
                ("name", Json::Str(name.clone())),
                ("value", Json::I64(*v)),
            ]);
            writeln!(w, "{line}")?;
        }
        for (name, h) in &m.hists {
            let mut line = Json::obj([
                ("machine", mach.clone()),
                ("kind", Json::from("histogram")),
                ("name", Json::Str(name.clone())),
            ]);
            line.set("value", hist_json(h));
            writeln!(w, "{line}")?;
        }
    }
    Ok(())
}

/// Render the snapshot as an aligned table, one row per machine+metric.
pub fn render_table(snap: &RegistrySnapshot) -> String {
    let mut rows: Vec<[String; 3]> = Vec::new();
    for (machine, m) in &snap.machines {
        for (name, v) in &m.counters {
            rows.push([format!("m{machine}"), name.clone(), v.to_string()]);
        }
        for (name, v) in &m.gauges {
            rows.push([format!("m{machine}"), name.clone(), v.to_string()]);
        }
        for (name, h) in &m.hists {
            rows.push([
                format!("m{machine}"),
                name.clone(),
                format!(
                    "n={} mean={:.1} p50={} p95={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max
                ),
            ]);
        }
    }
    let mut widths = [7usize, 6, 5];
    for row in &rows {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!(
        "{:<w0$}  {:<w1$}  {}\n",
        "machine",
        "metric",
        "value",
        w0 = widths[0],
        w1 = widths[1]
    ));
    for row in &rows {
        out.push_str(&format!(
            "{:<w0$}  {:<w1$}  {}\n",
            row[0],
            row[1],
            row[2],
            w0 = widths[0],
            w1 = widths[1]
        ));
    }
    out
}

/// Minimal JSON well-formedness check used by tests (and available to
/// callers who want a sanity gate before shipping a metrics file). Returns
/// the number of top-level values parsed.
pub fn validate_json(text: &str) -> Result<usize, String> {
    let b = text.as_bytes();
    let mut i = 0usize;
    let mut values = 0usize;
    while i < b.len() {
        skip_ws(b, &mut i);
        if i >= b.len() {
            break;
        }
        parse_value(b, &mut i)?;
        values += 1;
    }
    if values == 0 {
        return Err("empty document".into());
    }
    Ok(values)
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while *i < b.len() && matches!(b[*i], b' ' | b'\t' | b'\n' | b'\r') {
        *i += 1;
    }
}

fn parse_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    let at = *i;
    match b.get(at) {
        None => Err("unexpected end".into()),
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                parse_string(b, i)?;
                skip_ws(b, i);
                if b.get(*i) != Some(&b':') {
                    return Err(format!("expected ':' at {i:?}"));
                }
                *i += 1;
                parse_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => {
                        *i += 1;
                        skip_ws(b, i);
                    }
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *i)),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                parse_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => {
                        *i += 1;
                    }
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *i)),
                }
            }
        }
        Some(b'"') => parse_string(b, i),
        Some(b't') => parse_lit(b, i, b"true"),
        Some(b'f') => parse_lit(b, i, b"false"),
        Some(b'n') => parse_lit(b, i, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            *i += 1;
            while *i < b.len()
                && (b[*i].is_ascii_digit() || matches!(b[*i], b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                *i += 1;
            }
            Ok(())
        }
        Some(c) => Err(format!("unexpected byte {c:#x} at {at}")),
    }
}

fn parse_lit(b: &[u8], i: &mut usize, lit: &[u8]) -> Result<(), String> {
    if b.len() >= *i + lit.len() && &b[*i..*i + lit.len()] == lit {
        *i += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *i))
    }
}

fn parse_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    if b.get(*i) != Some(&b'"') {
        return Err(format!("expected string at byte {}", *i));
    }
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => {
                *i += 1;
                return Ok(());
            }
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> RegistrySnapshot {
        let reg = Registry::new();
        let s0 = reg.scope(0);
        s0.counter("net.env.sent").add(12);
        s0.gauge("store.used_bytes").set(4096);
        let h = s0.histogram("net.env.bytes");
        for v in [10, 100, 1000, 10_000] {
            h.record(v);
        }
        reg.scope(1).counter("net.env.sent").add(3);
        reg.snapshot()
    }

    #[test]
    fn json_escapes_and_parses() {
        let j = Json::obj([("weird \"key\"\n", Json::from("tab\there"))]);
        let text = j.to_string();
        assert_eq!(text, "{\"weird \\\"key\\\"\\n\":\"tab\\there\"}");
        validate_json(&text).unwrap();
    }

    #[test]
    fn snapshot_document_is_valid_json() {
        let mut buf = Vec::new();
        write_json(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(validate_json(&text).unwrap(), 1);
        assert!(text.contains("\"net.env.sent\":12"));
        assert!(text.contains("\"totals\""));
        assert!(text.contains("\"p99\""));
    }

    #[test]
    fn jsonl_emits_one_valid_object_per_metric() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &sample()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines.len(),
            6,
            "2 counters + 2 synthesized obs.spans_dropped + 1 gauge + 1 histogram"
        );
        for line in lines {
            assert_eq!(
                validate_json(line).unwrap(),
                1,
                "line not valid JSON: {line}"
            );
        }
    }

    #[test]
    fn table_is_aligned() {
        let table = render_table(&sample());
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines.len() >= 4);
        assert!(lines[0].starts_with("machine"));
        let col = lines[1].find("net.env.sent").unwrap();
        assert_eq!(
            lines[4].find("net.env.bytes"),
            Some(col),
            "metric column must align"
        );
    }
}
