//! Unified observability for the Trinity reproduction.
//!
//! The paper's evaluation is built entirely on measurement: message
//! volumes for the packing and hub optimizations (§4.2, §5.4), memory
//! utilization of the circular trunk manager (§6.1), per-superstep compute
//! time for the BSP figures (Fig. 13/14). Before this crate each subsystem
//! measured itself with an ad-hoc counter struct; `trinity-obs` is the
//! shared substrate they all publish into.
//!
//! Three pieces:
//!
//! * **Metrics** — named [`Counter`]s, [`Gauge`]s, and log₂-bucketed
//!   [`Histogram`]s, scoped per simulated machine in a [`Registry`]. The
//!   registry has the same snapshot/delta semantics as
//!   `trinity_net::NetStats`: counters are monotonic, a
//!   [`RegistrySnapshot`] is a point-in-time copy, and
//!   [`RegistrySnapshot::delta_to`] yields the traffic between two
//!   snapshots.
//! * **Tracing** — a 64-bit trace id allocated at query/job entry
//!   ([`next_trace_id`]), carried across machine hops in every
//!   `trinity_net` envelope header, and recorded as [`SpanEvent`]s into a
//!   per-machine bounded [ring buffer](SpanRing) so one multi-hop query or
//!   BSP superstep can be reconstructed across the whole simulated
//!   cluster.
//! * **Exporters** — an aligned human-readable table and JSON emitters
//!   (single document and JSON-lines), all hand-rolled on `std` because
//!   the build environment is offline.
//!
//! Three analysis layers sit on top of that substrate:
//!
//! * **Per-trunk load accounting** ([`LoadMap`]) — every cell read/write,
//!   MULTI_GET batch, BSP delivery, and traversal hop is attributed to the
//!   owning trunk as EWMA-decayed windowed rates; `hottest(n)` and
//!   `imbalance()` are the inputs trunk migration and tiering consume.
//! * **Flight recorder** ([`FlightRecorder`]) — a bounded ring of
//!   windowed [`RegistrySnapshot`] deltas plus an event log, dumped as one
//!   postmortem JSON artifact when a chaos invariant fails or the serving
//!   tier sheds a storm.
//! * **Trace timelines** ([`Timeline`]) — spans for one trace id stitched
//!   across machines (all rings share their registry's epoch) with
//!   per-label breakdown, critical-path extraction, and Chrome
//!   trace-event export.
//!
//! Everything is cheap when idle: relaxed atomics on the hot paths, metric
//! handles are `Arc`s cached by the instrumented layer (no name lookup per
//! event), span recording is skipped entirely when no trace is active, and
//! rings are fixed-size and overwrite-oldest.

mod export;
mod hist;
mod load;
mod metric;
mod recorder;
mod registry;
mod timeline;
mod trace;

pub use export::{
    render_table, snapshot_json, span_json, trunk_load_json, validate_json, write_json,
    write_jsonl, Json,
};
pub use hist::{HistSnapshot, Histogram};
pub use load::{LoadMap, TrunkLoad, LOAD_DECAY_TAU_S, MAX_TRUNKS, MIN_ROLL_WINDOW_US};
pub use metric::{Counter, Gauge};
pub use recorder::{FlightRecorder, FlightWindow, FLIGHT_EVENTS, FLIGHT_SPANS, FLIGHT_WINDOWS};
pub use registry::{MachineScope, MachineSnapshot, Registry, RegistrySnapshot};
pub use timeline::{LabelStat, Timeline};
pub use trace::{
    current_trace, next_trace_id, SpanEvent, SpanRing, TraceGuard, NO_TRACE, SPAN_RING_CAPACITY,
};
