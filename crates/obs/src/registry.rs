//! The process-wide metrics registry, scoped per simulated machine.
//!
//! A [`Registry`] belongs to one simulated cluster (one
//! `trinity_net::Fabric`); tests running several clusters in one process
//! therefore get disjoint registries. Each machine gets a [`MachineScope`]
//! holding that machine's named metrics and its span ring.
//!
//! Instrumented layers call [`MachineScope::counter`] (etc.) **once** at
//! setup and keep the returned `Arc` handle — the per-event cost is then
//! just the atomic in `Counter`/`Histogram`, never a name lookup.
//!
//! Metric names are `&'static str` dotted paths (`"net.env.sent"`,
//! `"store.alloc.bytes"`), which keeps registration allocation-free and
//! gives exporters a stable sort order.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export::Json;
use crate::hist::{HistSnapshot, Histogram};
use crate::load::{LoadMap, TrunkLoad};
use crate::metric::{Counter, Gauge};
use crate::recorder::FlightRecorder;
use crate::trace::{current_trace, SpanEvent, SpanRing, NO_TRACE, SPAN_RING_CAPACITY};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[derive(Debug, Default)]
struct ScopeMetrics {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    hists: BTreeMap<&'static str, Arc<Histogram>>,
}

#[derive(Debug)]
struct ScopeInner {
    machine: u16,
    metrics: Mutex<ScopeMetrics>,
    spans: SpanRing,
    load: LoadMap,
}

/// One machine's view into the registry. Cheap to clone (an `Arc`).
#[derive(Debug, Clone)]
pub struct MachineScope {
    inner: Arc<ScopeInner>,
}

impl MachineScope {
    fn new(machine: u16, epoch: Instant) -> Self {
        MachineScope {
            inner: Arc::new(ScopeInner {
                machine,
                metrics: Mutex::new(ScopeMetrics::default()),
                spans: SpanRing::with_epoch(epoch, SPAN_RING_CAPACITY),
                load: LoadMap::new(),
            }),
        }
    }

    /// A scope not attached to any registry — for components constructed
    /// without observability (e.g. a bare `Trunk::new` in a unit test).
    /// Recording into it works and costs the same; nothing reads it.
    pub fn detached() -> Self {
        MachineScope::new(u16::MAX, Instant::now())
    }

    /// The machine this scope belongs to.
    pub fn machine(&self) -> u16 {
        self.inner.machine
    }

    /// Get or create the named counter. Call once, cache the handle.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(lock(&self.inner.metrics).counters.entry(name).or_default())
    }

    /// Get or create the named gauge. Call once, cache the handle.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(lock(&self.inner.metrics).gauges.entry(name).or_default())
    }

    /// Get or create the named histogram. Call once, cache the handle.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(lock(&self.inner.metrics).hists.entry(name).or_default())
    }

    /// This machine's span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.inner.spans
    }

    /// This machine's per-trunk load accounting.
    pub fn load(&self) -> &LoadMap {
        &self.inner.load
    }

    /// Timestamp base for spans recorded through this scope.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.spans.now_us()
    }

    /// Record a span under the thread's current trace; a no-op when no
    /// trace is active, so untraced work pays one thread-local read.
    #[inline]
    pub fn span(&self, label: &'static str, proto: u16, bytes: u64, frames: u32, start_us: u64) {
        let trace = current_trace();
        if trace != NO_TRACE {
            self.span_for(trace, label, proto, bytes, frames, start_us);
        }
    }

    /// Record a span under an explicit trace id (used where the trace
    /// travels in data rather than on the thread, e.g. envelope delivery).
    pub fn span_for(
        &self,
        trace: u64,
        label: &'static str,
        proto: u16,
        bytes: u64,
        frames: u32,
        start_us: u64,
    ) {
        if trace == NO_TRACE {
            return;
        }
        let end_us = self.inner.spans.now_us();
        self.inner.spans.record(SpanEvent {
            trace,
            machine: self.inner.machine,
            label,
            proto,
            bytes,
            frames,
            start_us,
            end_us,
        });
    }

    /// Snapshot this machine's metrics. Span-ring loss is surfaced both in
    /// the dedicated `spans_dropped` field and as a synthesized
    /// `obs.spans_dropped` counter, so it flows through every exporter and
    /// through counter delta/merge arithmetic like any other metric.
    pub fn snapshot(&self) -> MachineSnapshot {
        let m = lock(&self.inner.metrics);
        let spans_dropped = self.inner.spans.dropped();
        let mut counters: BTreeMap<String, u64> = m
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), v.get()))
            .collect();
        counters.insert("obs.spans_dropped".to_string(), spans_dropped);
        MachineSnapshot {
            counters,
            gauges: m
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            hists: m
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            spans_dropped,
            load: self
                .inner
                .load
                .snapshot()
                .into_iter()
                .map(|t| (t.trunk, t))
                .collect(),
        }
    }
}

/// The registry: one per simulated cluster.
#[derive(Debug)]
pub struct Registry {
    /// Shared time base: every scope's span ring counts microseconds from
    /// this instant, so cross-machine spans stitch into one timeline.
    epoch: Instant,
    scopes: Mutex<BTreeMap<u16, MachineScope>>,
    flight: FlightRecorder,
}

impl Default for Registry {
    fn default() -> Self {
        let reg = Registry {
            epoch: Instant::now(),
            scopes: Mutex::new(BTreeMap::new()),
            flight: FlightRecorder::new(),
        };
        // Seed the flight recorder's baseline at birth so the very first
        // explicit `flight_tick` already closes a window — a crash in the
        // cluster's first window still leaves a delta to dump.
        reg.flight.tick(0, RegistrySnapshot::default());
        reg
    }
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Microseconds since this registry's epoch — the cluster time base.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Get or create the scope for `machine`.
    pub fn scope(&self, machine: u16) -> MachineScope {
        lock(&self.scopes)
            .entry(machine)
            .or_insert_with(|| MachineScope::new(machine, self.epoch))
            .clone()
    }

    /// Scopes currently registered, in machine order.
    pub fn scopes(&self) -> Vec<MachineScope> {
        lock(&self.scopes).values().cloned().collect()
    }

    /// Snapshot every machine's metrics.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            machines: lock(&self.scopes)
                .iter()
                .map(|(m, s)| (*m, s.snapshot()))
                .collect(),
        }
    }

    /// All buffered spans across machines, ordered by start time.
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = self
            .scopes()
            .iter()
            .flat_map(|s| s.spans().snapshot())
            .collect();
        out.sort_by_key(|s| (s.start_us, s.machine));
        out
    }

    /// Spans belonging to one trace, ordered by start time.
    pub fn spans_for_trace(&self, trace: u64) -> Vec<SpanEvent> {
        let mut out = self.spans();
        out.retain(|s| s.trace == trace);
        out
    }

    /// This cluster's flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Close a flight-recorder window with the registry's current state.
    pub fn flight_tick(&self) {
        self.flight.tick(self.now_us(), self.snapshot());
    }

    /// Append a freeform line (fault firing, shed, invariant breadcrumb)
    /// to the flight recorder's event log.
    pub fn flight_event(&self, line: impl Into<String>) {
        self.flight.event(self.now_us(), line);
    }

    /// The postmortem document: buffered windows + events + recent spans.
    pub fn flight_dump(&self, reason: &str) -> Json {
        self.flight.dump_json(reason, self.now_us(), &self.spans())
    }

    /// Write the postmortem document to `path`, creating parent dirs.
    pub fn flight_dump_to(&self, path: &Path, reason: &str) -> io::Result<()> {
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        let mut f = std::fs::File::create(path)?;
        writeln!(f, "{}", self.flight_dump(reason))
    }
}

/// Point-in-time copy of one machine's metrics (or a delta of two copies).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub hists: BTreeMap<String, HistSnapshot>,
    pub spans_dropped: u64,
    /// Per-trunk load as of the snapshot (see [`LoadMap`]). Like gauges
    /// these are *levels*: a delta keeps the later level, a merge sums.
    pub load: BTreeMap<u64, TrunkLoad>,
}

impl MachineSnapshot {
    /// Element-wise sum (aggregating machines into cluster totals). Gauges
    /// are summed too — meaningful for level totals like bytes in use.
    pub fn merge(&mut self, other: &MachineSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(v);
        }
        self.spans_dropped += other.spans_dropped;
        for (trunk, tl) in &other.load {
            self.load
                .entry(*trunk)
                .or_insert_with(|| TrunkLoad {
                    trunk: *trunk,
                    ..TrunkLoad::default()
                })
                .merge(tl);
        }
    }

    /// Activity between two snapshots (`later - self`). Counters and
    /// histograms subtract; gauges and per-trunk load are levels, so the
    /// later level wins.
    pub fn delta_to(&self, later: &MachineSnapshot) -> MachineSnapshot {
        let mut out = later.clone();
        for (k, v) in &self.counters {
            if let Some(c) = out.counters.get_mut(k) {
                *c = c.saturating_sub(*v);
            }
        }
        for (k, v) in &self.hists {
            if let Some(h) = out.hists.get_mut(k) {
                *h = v.delta_to(h);
            }
        }
        out.spans_dropped = later.spans_dropped.saturating_sub(self.spans_dropped);
        out
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub machines: BTreeMap<u16, MachineSnapshot>,
}

impl RegistrySnapshot {
    /// Activity between two snapshots (`later - self`), machine by machine.
    pub fn delta_to(&self, later: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            machines: later
                .machines
                .iter()
                .map(|(m, snap)| {
                    let d = match self.machines.get(m) {
                        Some(prev) => prev.delta_to(snap),
                        None => snap.clone(),
                    };
                    (*m, d)
                })
                .collect(),
        }
    }

    /// Cluster-wide totals across machines.
    pub fn totals(&self) -> MachineSnapshot {
        let mut total = MachineSnapshot::default();
        for snap in self.machines.values() {
            total.merge(snap);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGuard;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        let s = reg.scope(0);
        s.counter("a").add(3);
        s.counter("a").add(4);
        assert_eq!(s.counter("a").get(), 7);
        assert_eq!(reg.scope(0).counter("a").get(), 7, "same scope per machine");
        assert_eq!(reg.scope(1).counter("a").get(), 0, "scopes are per machine");
    }

    #[test]
    fn snapshot_delta_matches_netstats_semantics() {
        let reg = Registry::new();
        reg.scope(0).counter("x").add(10);
        reg.scope(0).histogram("h").record(4);
        let before = reg.snapshot();
        reg.scope(0).counter("x").add(5);
        reg.scope(0).histogram("h").record(8);
        reg.scope(1).counter("x").add(2);
        let d = before.delta_to(&reg.snapshot());
        assert_eq!(d.machines[&0].counters["x"], 5);
        assert_eq!(d.machines[&0].hists["h"].count, 1);
        assert_eq!(d.machines[&1].counters["x"], 2, "new machines appear whole");
        assert_eq!(d.totals().counters["x"], 7);
    }

    #[test]
    fn merge_of_deltas_equals_delta_of_merges() {
        // Two machines active across one window: summing the per-machine
        // deltas must equal the delta of the per-machine sums.
        let reg = Registry::new();
        reg.scope(0).counter("x").add(10);
        reg.scope(0).histogram("h").record(16);
        reg.scope(1).counter("x").add(1);
        reg.scope(1).gauge("g").set(5);
        let before = reg.snapshot();
        reg.scope(0).counter("x").add(7);
        reg.scope(1).counter("x").add(2);
        reg.scope(1).histogram("h").record(64);
        reg.scope(1).gauge("g").set(9);
        let after = reg.snapshot();

        let merge_of_deltas = before.delta_to(&after).totals();
        let delta_of_merges = before.totals().delta_to(&after.totals());
        assert_eq!(merge_of_deltas, delta_of_merges);
        assert_eq!(merge_of_deltas.counters["x"], 9);
        assert_eq!(merge_of_deltas.hists["h"].count, 1);
        assert_eq!(merge_of_deltas.gauges["g"], 9, "levels: later wins");
    }

    #[test]
    fn spans_dropped_surfaces_as_a_counter() {
        let reg = Registry::new();
        let s = reg.scope(0);
        assert_eq!(s.snapshot().counters["obs.spans_dropped"], 0);
        let ring = crate::trace::SpanRing::with_capacity(2);
        for i in 0..5 {
            ring.record(SpanEvent {
                trace: 1,
                machine: 0,
                label: "x",
                proto: 0,
                bytes: 0,
                frames: 0,
                start_us: i,
                end_us: i,
            });
        }
        assert_eq!(ring.dropped(), 3, "standalone ring counts overwrites");
        // Scope-owned ring: drive it past capacity via the scope API.
        let _g = TraceGuard::enter(1);
        for _ in 0..(crate::trace::SPAN_RING_CAPACITY + 4) {
            s.span("spin", 0, 0, 0, 0);
        }
        let snap = s.snapshot();
        assert_eq!(snap.spans_dropped, 4);
        assert_eq!(snap.counters["obs.spans_dropped"], 4);
    }

    #[test]
    fn scope_load_flows_into_snapshot() {
        let reg = Registry::new();
        let s = reg.scope(0);
        s.load().record_read(2, 100);
        s.load().record_write(2, 50);
        s.load()
            .roll_at(s.load().now_us().max(crate::load::MIN_ROLL_WINDOW_US));
        let snap = s.snapshot();
        let t = &snap.load[&2];
        assert_eq!(
            (t.reads, t.writes, t.bytes_read, t.bytes_written),
            (1, 1, 100, 50)
        );
        // Levels: delta keeps the later level, merge sums.
        let d = snap.delta_to(&s.snapshot());
        assert_eq!(d.load[&2].reads, 1);
        let mut m = snap.clone();
        m.merge(&snap);
        assert_eq!(m.load[&2].reads, 2);
    }

    #[test]
    fn spans_record_only_under_a_trace() {
        let reg = Registry::new();
        let s = reg.scope(3);
        s.span("quiet", 0, 0, 0, s.now_us());
        assert!(reg.spans().is_empty(), "no trace active: no span recorded");
        {
            let _g = TraceGuard::enter(42);
            s.span("loud", 7, 100, 2, s.now_us());
        }
        let spans = reg.spans_for_trace(42);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].machine, 3);
        assert_eq!(spans[0].label, "loud");
    }
}
