//! The process-wide metrics registry, scoped per simulated machine.
//!
//! A [`Registry`] belongs to one simulated cluster (one
//! `trinity_net::Fabric`); tests running several clusters in one process
//! therefore get disjoint registries. Each machine gets a [`MachineScope`]
//! holding that machine's named metrics and its span ring.
//!
//! Instrumented layers call [`MachineScope::counter`] (etc.) **once** at
//! setup and keep the returned `Arc` handle — the per-event cost is then
//! just the atomic in `Counter`/`Histogram`, never a name lookup.
//!
//! Metric names are `&'static str` dotted paths (`"net.env.sent"`,
//! `"store.alloc.bytes"`), which keeps registration allocation-free and
//! gives exporters a stable sort order.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::hist::{HistSnapshot, Histogram};
use crate::metric::{Counter, Gauge};
use crate::trace::{current_trace, SpanEvent, SpanRing, NO_TRACE};

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[derive(Debug, Default)]
struct ScopeMetrics {
    counters: BTreeMap<&'static str, Arc<Counter>>,
    gauges: BTreeMap<&'static str, Arc<Gauge>>,
    hists: BTreeMap<&'static str, Arc<Histogram>>,
}

#[derive(Debug)]
struct ScopeInner {
    machine: u16,
    metrics: Mutex<ScopeMetrics>,
    spans: SpanRing,
}

/// One machine's view into the registry. Cheap to clone (an `Arc`).
#[derive(Debug, Clone)]
pub struct MachineScope {
    inner: Arc<ScopeInner>,
}

impl MachineScope {
    fn new(machine: u16) -> Self {
        MachineScope {
            inner: Arc::new(ScopeInner {
                machine,
                metrics: Mutex::new(ScopeMetrics::default()),
                spans: SpanRing::default(),
            }),
        }
    }

    /// A scope not attached to any registry — for components constructed
    /// without observability (e.g. a bare `Trunk::new` in a unit test).
    /// Recording into it works and costs the same; nothing reads it.
    pub fn detached() -> Self {
        MachineScope::new(u16::MAX)
    }

    /// The machine this scope belongs to.
    pub fn machine(&self) -> u16 {
        self.inner.machine
    }

    /// Get or create the named counter. Call once, cache the handle.
    pub fn counter(&self, name: &'static str) -> Arc<Counter> {
        Arc::clone(lock(&self.inner.metrics).counters.entry(name).or_default())
    }

    /// Get or create the named gauge. Call once, cache the handle.
    pub fn gauge(&self, name: &'static str) -> Arc<Gauge> {
        Arc::clone(lock(&self.inner.metrics).gauges.entry(name).or_default())
    }

    /// Get or create the named histogram. Call once, cache the handle.
    pub fn histogram(&self, name: &'static str) -> Arc<Histogram> {
        Arc::clone(lock(&self.inner.metrics).hists.entry(name).or_default())
    }

    /// This machine's span ring.
    pub fn spans(&self) -> &SpanRing {
        &self.inner.spans
    }

    /// Timestamp base for spans recorded through this scope.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.inner.spans.now_us()
    }

    /// Record a span under the thread's current trace; a no-op when no
    /// trace is active, so untraced work pays one thread-local read.
    #[inline]
    pub fn span(&self, label: &'static str, proto: u16, bytes: u64, frames: u32, start_us: u64) {
        let trace = current_trace();
        if trace != NO_TRACE {
            self.span_for(trace, label, proto, bytes, frames, start_us);
        }
    }

    /// Record a span under an explicit trace id (used where the trace
    /// travels in data rather than on the thread, e.g. envelope delivery).
    pub fn span_for(
        &self,
        trace: u64,
        label: &'static str,
        proto: u16,
        bytes: u64,
        frames: u32,
        start_us: u64,
    ) {
        if trace == NO_TRACE {
            return;
        }
        let end_us = self.inner.spans.now_us();
        self.inner.spans.record(SpanEvent {
            trace,
            machine: self.inner.machine,
            label,
            proto,
            bytes,
            frames,
            start_us,
            end_us,
        });
    }

    /// Snapshot this machine's metrics.
    pub fn snapshot(&self) -> MachineSnapshot {
        let m = lock(&self.inner.metrics);
        MachineSnapshot {
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: m
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), v.get()))
                .collect(),
            hists: m
                .hists
                .iter()
                .map(|(k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            spans_dropped: self.inner.spans.dropped(),
        }
    }
}

/// The registry: one per simulated cluster.
#[derive(Debug, Default)]
pub struct Registry {
    scopes: Mutex<BTreeMap<u16, MachineScope>>,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    /// Get or create the scope for `machine`.
    pub fn scope(&self, machine: u16) -> MachineScope {
        lock(&self.scopes)
            .entry(machine)
            .or_insert_with(|| MachineScope::new(machine))
            .clone()
    }

    /// Scopes currently registered, in machine order.
    pub fn scopes(&self) -> Vec<MachineScope> {
        lock(&self.scopes).values().cloned().collect()
    }

    /// Snapshot every machine's metrics.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            machines: lock(&self.scopes)
                .iter()
                .map(|(m, s)| (*m, s.snapshot()))
                .collect(),
        }
    }

    /// All buffered spans across machines, ordered by start time.
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut out: Vec<SpanEvent> = self
            .scopes()
            .iter()
            .flat_map(|s| s.spans().snapshot())
            .collect();
        out.sort_by_key(|s| (s.start_us, s.machine));
        out
    }

    /// Spans belonging to one trace, ordered by start time.
    pub fn spans_for_trace(&self, trace: u64) -> Vec<SpanEvent> {
        let mut out = self.spans();
        out.retain(|s| s.trace == trace);
        out
    }
}

/// Point-in-time copy of one machine's metrics (or a delta of two copies).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub hists: BTreeMap<String, HistSnapshot>,
    pub spans_dropped: u64,
}

impl MachineSnapshot {
    /// Element-wise sum (aggregating machines into cluster totals). Gauges
    /// are summed too — meaningful for level totals like bytes in use.
    pub fn merge(&mut self, other: &MachineSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(v);
        }
        self.spans_dropped += other.spans_dropped;
    }

    /// Activity between two snapshots (`later - self`). Counters and
    /// histograms subtract; gauges are levels, so the later level wins.
    pub fn delta_to(&self, later: &MachineSnapshot) -> MachineSnapshot {
        let mut out = later.clone();
        for (k, v) in &self.counters {
            if let Some(c) = out.counters.get_mut(k) {
                *c = c.saturating_sub(*v);
            }
        }
        for (k, v) in &self.hists {
            if let Some(h) = out.hists.get_mut(k) {
                *h = v.delta_to(h);
            }
        }
        out.spans_dropped = later.spans_dropped.saturating_sub(self.spans_dropped);
        out
    }
}

/// Point-in-time copy of the whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub machines: BTreeMap<u16, MachineSnapshot>,
}

impl RegistrySnapshot {
    /// Activity between two snapshots (`later - self`), machine by machine.
    pub fn delta_to(&self, later: &RegistrySnapshot) -> RegistrySnapshot {
        RegistrySnapshot {
            machines: later
                .machines
                .iter()
                .map(|(m, snap)| {
                    let d = match self.machines.get(m) {
                        Some(prev) => prev.delta_to(snap),
                        None => snap.clone(),
                    };
                    (*m, d)
                })
                .collect(),
        }
    }

    /// Cluster-wide totals across machines.
    pub fn totals(&self) -> MachineSnapshot {
        let mut total = MachineSnapshot::default();
        for snap in self.machines.values() {
            total.merge(snap);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGuard;

    #[test]
    fn handles_are_shared_by_name() {
        let reg = Registry::new();
        let s = reg.scope(0);
        s.counter("a").add(3);
        s.counter("a").add(4);
        assert_eq!(s.counter("a").get(), 7);
        assert_eq!(reg.scope(0).counter("a").get(), 7, "same scope per machine");
        assert_eq!(reg.scope(1).counter("a").get(), 0, "scopes are per machine");
    }

    #[test]
    fn snapshot_delta_matches_netstats_semantics() {
        let reg = Registry::new();
        reg.scope(0).counter("x").add(10);
        reg.scope(0).histogram("h").record(4);
        let before = reg.snapshot();
        reg.scope(0).counter("x").add(5);
        reg.scope(0).histogram("h").record(8);
        reg.scope(1).counter("x").add(2);
        let d = before.delta_to(&reg.snapshot());
        assert_eq!(d.machines[&0].counters["x"], 5);
        assert_eq!(d.machines[&0].hists["h"].count, 1);
        assert_eq!(d.machines[&1].counters["x"], 2, "new machines appear whole");
        assert_eq!(d.totals().counters["x"], 7);
    }

    #[test]
    fn spans_record_only_under_a_trace() {
        let reg = Registry::new();
        let s = reg.scope(3);
        s.span("quiet", 0, 0, 0, s.now_us());
        assert!(reg.spans().is_empty(), "no trace active: no span recorded");
        {
            let _g = TraceGuard::enter(42);
            s.span("loud", 7, 100, 2, s.now_us());
        }
        let spans = reg.spans_for_trace(42);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].machine, 3);
        assert_eq!(spans[0].label, "loud");
    }
}
