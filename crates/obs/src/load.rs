//! Per-trunk load accounting.
//!
//! Trinity's unit of data placement — and therefore of migration and
//! tiering — is the *trunk* (§3 of the paper: 2^p trunks dealt over the
//! machines by the addressing table). Rebalancing decisions need to know
//! which trunks are hot *now*, not which were hot since process start, so
//! a [`LoadMap`] keeps two views per trunk:
//!
//! * **Lifetime totals** — relaxed atomic counters bumped on the hot path
//!   (cell reads/writes, MULTI_GET batches, BSP message deliveries,
//!   traversal hops, client-cache hits/misses). Recording costs one
//!   `RwLock` read acquisition plus one or two relaxed `fetch_add`s.
//! * **EWMA-decayed windowed rates** — folded from the totals at *roll*
//!   time (no background thread): `rate ← rate + α·(Δ/Δt − rate)` with
//!   `α = 1 − exp(−Δt/τ)` and `τ =` [`LOAD_DECAY_TAU_S`]. A trunk idle
//!   for a few τ decays toward zero instead of being propped up forever
//!   by its history.
//!
//! [`LoadMap::hottest`] and [`LoadMap::imbalance`] are the snapshot API
//! trunk migration (ROADMAP item 1) and tiering (item 3) consume.
//!
//! **Overflow behavior:** trunk ids at or above [`MAX_TRUNKS`] are
//! silently dropped — the map is a dense vector indexed by trunk id, and
//! the addressing table never mints ids that large (2^p with small p). A
//! roll observing a window shorter than [`MIN_ROLL_WINDOW_US`] is skipped
//! so snapshot storms cannot divide by (near) zero.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// EWMA time constant for the windowed rates, in seconds.
pub const LOAD_DECAY_TAU_S: f64 = 10.0;

/// Rolls closer together than this are ignored (window too small to
/// produce a meaningful rate).
pub const MIN_ROLL_WINDOW_US: u64 = 1_000;

/// Trunk ids `>= MAX_TRUNKS` are dropped rather than grown toward.
pub const MAX_TRUNKS: u64 = 1 << 20;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// Hot-path totals for one trunk. All relaxed; read at roll time.
#[derive(Debug, Default)]
struct TrunkCell {
    reads: AtomicU64,
    writes: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    msgs: AtomicU64,
    hops: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct Totals {
    reads: u64,
    writes: u64,
    bytes_read: u64,
    bytes_written: u64,
    msgs: u64,
    hops: u64,
    cache_hits: u64,
    cache_misses: u64,
}

impl TrunkCell {
    fn totals(&self) -> Totals {
        Totals {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            msgs: self.msgs.load(Ordering::Relaxed),
            hops: self.hops.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
        }
    }
}

/// One trunk's load as of the last roll: lifetime totals plus EWMA rates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrunkLoad {
    pub trunk: u64,
    /// Lifetime cell reads attributed to this trunk.
    pub reads: u64,
    /// Lifetime cell writes (PUT/APPEND/REMOVE).
    pub writes: u64,
    pub bytes_read: u64,
    pub bytes_written: u64,
    /// BSP messages delivered to vertices owned by this trunk.
    pub msgs: u64,
    /// Traversal hops that expanded a vertex in this trunk.
    pub hops: u64,
    /// Client-side remote-cache hits for cells in this trunk.
    pub cache_hits: u64,
    /// Client-side remote-cache misses for cells in this trunk.
    pub cache_misses: u64,
    /// EWMA-decayed windowed rates.
    pub reads_per_s: f64,
    pub writes_per_s: f64,
    pub bytes_per_s: f64,
    pub msgs_per_s: f64,
    pub hops_per_s: f64,
    /// EWMA share of remote reads that missed the client cache (0..=1);
    /// holds its last value across windows with no cache traffic.
    pub remote_miss_share: f64,
}

impl TrunkLoad {
    /// Scalar hotness used by [`LoadMap::hottest`] / [`LoadMap::imbalance`]:
    /// operation rate regardless of kind.
    pub fn score(&self) -> f64 {
        self.reads_per_s + self.writes_per_s + self.msgs_per_s + self.hops_per_s
    }

    /// Element-wise sum for cluster totals. Rates add (trunks are hosted by
    /// one machine, so cross-machine merge unions disjoint owner load with
    /// client-side cache traffic); the miss share is recomputed from the
    /// combined lifetime cache counters.
    pub fn merge(&mut self, other: &TrunkLoad) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
        self.msgs += other.msgs;
        self.hops += other.hops;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        self.reads_per_s += other.reads_per_s;
        self.writes_per_s += other.writes_per_s;
        self.bytes_per_s += other.bytes_per_s;
        self.msgs_per_s += other.msgs_per_s;
        self.hops_per_s += other.hops_per_s;
        let lookups = self.cache_hits + self.cache_misses;
        self.remote_miss_share = if lookups > 0 {
            self.cache_misses as f64 / lookups as f64
        } else {
            0.0
        };
    }
}

#[derive(Debug, Default)]
struct TrunkRoll {
    last: Totals,
    load: TrunkLoad,
}

#[derive(Debug, Default)]
struct RollState {
    last_us: u64,
    trunks: BTreeMap<u64, TrunkRoll>,
}

/// Per-machine trunk load accounting. One per [`crate::MachineScope`].
#[derive(Debug)]
pub struct LoadMap {
    epoch: Instant,
    cells: RwLock<Vec<Option<Arc<TrunkCell>>>>,
    roll: Mutex<RollState>,
}

impl Default for LoadMap {
    fn default() -> Self {
        LoadMap {
            epoch: Instant::now(),
            cells: RwLock::new(Vec::new()),
            roll: Mutex::new(RollState::default()),
        }
    }
}

impl LoadMap {
    pub fn new() -> Self {
        LoadMap::default()
    }

    /// Microseconds since this map's epoch — the time base for rolls.
    #[inline]
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    fn cell(&self, trunk: u64) -> Option<Arc<TrunkCell>> {
        if trunk >= MAX_TRUNKS {
            return None;
        }
        let idx = trunk as usize;
        if let Ok(cells) = self.cells.read() {
            if let Some(Some(c)) = cells.get(idx) {
                return Some(Arc::clone(c));
            }
        }
        let mut cells = match self.cells.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        if cells.len() <= idx {
            cells.resize(idx + 1, None);
        }
        Some(Arc::clone(
            cells[idx].get_or_insert_with(|| Arc::new(TrunkCell::default())),
        ))
    }

    /// Attribute a cell read of `bytes` to `trunk`.
    #[inline]
    pub fn record_read(&self, trunk: u64, bytes: u64) {
        if let Some(c) = self.cell(trunk) {
            c.reads.fetch_add(1, Ordering::Relaxed);
            c.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Attribute `n` batched cell reads (MULTI_GET) of `bytes` total.
    #[inline]
    pub fn record_reads(&self, trunk: u64, n: u64, bytes: u64) {
        if let Some(c) = self.cell(trunk) {
            c.reads.fetch_add(n, Ordering::Relaxed);
            c.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Attribute a cell write (PUT/APPEND/REMOVE) of `bytes` to `trunk`.
    #[inline]
    pub fn record_write(&self, trunk: u64, bytes: u64) {
        if let Some(c) = self.cell(trunk) {
            c.writes.fetch_add(1, Ordering::Relaxed);
            c.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// Attribute `n` BSP message deliveries to `trunk`.
    #[inline]
    pub fn record_msgs(&self, trunk: u64, n: u64) {
        if let Some(c) = self.cell(trunk) {
            c.msgs.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Attribute `n` traversal hop expansions to `trunk`.
    #[inline]
    pub fn record_hops(&self, trunk: u64, n: u64) {
        if let Some(c) = self.cell(trunk) {
            c.hops.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Attribute a client-side remote-cache hit for a cell in `trunk`.
    #[inline]
    pub fn record_cache_hit(&self, trunk: u64) {
        if let Some(c) = self.cell(trunk) {
            c.cache_hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Attribute a client-side remote-cache miss for a cell in `trunk`.
    #[inline]
    pub fn record_cache_miss(&self, trunk: u64) {
        if let Some(c) = self.cell(trunk) {
            c.cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fold totals accumulated since the previous roll into the EWMA rates,
    /// at an explicit timestamp (µs since this map's epoch). Exposed so
    /// tests can drive deterministic windows; production callers use
    /// [`LoadMap::roll`] / [`LoadMap::snapshot`].
    pub fn roll_at(&self, now_us: u64) {
        let mut st = lock(&self.roll);
        let dt_us = now_us.saturating_sub(st.last_us);
        if dt_us < MIN_ROLL_WINDOW_US {
            return;
        }
        let dt_s = dt_us as f64 / 1e6;
        let alpha = 1.0 - (-dt_s / LOAD_DECAY_TAU_S).exp();
        let cells: Vec<(u64, Arc<TrunkCell>)> = {
            let cells = match self.cells.read() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            cells
                .iter()
                .enumerate()
                .filter_map(|(t, c)| c.as_ref().map(|c| (t as u64, Arc::clone(c))))
                .collect()
        };
        for (trunk, cell) in cells {
            let now = cell.totals();
            let tr = st.trunks.entry(trunk).or_default();
            let fold = |rate: &mut f64, delta: u64| {
                *rate += alpha * (delta as f64 / dt_s - *rate);
            };
            fold(&mut tr.load.reads_per_s, now.reads - tr.last.reads);
            fold(&mut tr.load.writes_per_s, now.writes - tr.last.writes);
            fold(
                &mut tr.load.bytes_per_s,
                (now.bytes_read - tr.last.bytes_read) + (now.bytes_written - tr.last.bytes_written),
            );
            fold(&mut tr.load.msgs_per_s, now.msgs - tr.last.msgs);
            fold(&mut tr.load.hops_per_s, now.hops - tr.last.hops);
            let d_hit = now.cache_hits - tr.last.cache_hits;
            let d_miss = now.cache_misses - tr.last.cache_misses;
            if d_hit + d_miss > 0 {
                let share = d_miss as f64 / (d_hit + d_miss) as f64;
                tr.load.remote_miss_share += alpha * (share - tr.load.remote_miss_share);
            }
            tr.load.trunk = trunk;
            tr.load.reads = now.reads;
            tr.load.writes = now.writes;
            tr.load.bytes_read = now.bytes_read;
            tr.load.bytes_written = now.bytes_written;
            tr.load.msgs = now.msgs;
            tr.load.hops = now.hops;
            tr.load.cache_hits = now.cache_hits;
            tr.load.cache_misses = now.cache_misses;
            tr.last = now;
        }
        st.last_us = now_us;
    }

    /// Roll using the wall clock.
    pub fn roll(&self) {
        self.roll_at(self.now_us());
    }

    /// Roll, then copy out every trunk with any recorded activity, ordered
    /// by trunk id.
    pub fn snapshot(&self) -> Vec<TrunkLoad> {
        self.roll();
        self.snapshot_rolled()
    }

    /// Copy out the last-rolled state without re-rolling (deterministic
    /// companion to [`LoadMap::roll_at`]).
    pub fn snapshot_rolled(&self) -> Vec<TrunkLoad> {
        let st = lock(&self.roll);
        st.trunks
            .values()
            .filter(|tr| tr.last != Totals::default())
            .map(|tr| tr.load.clone())
            .collect()
    }

    /// The `n` hottest trunks by [`TrunkLoad::score`], hottest first; ties
    /// break toward the lower trunk id so the ranking is deterministic.
    pub fn hottest(&self, n: usize) -> Vec<TrunkLoad> {
        let mut all = self.snapshot();
        all.sort_by(|a, b| {
            b.score()
                .partial_cmp(&a.score())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.trunk.cmp(&b.trunk))
        });
        all.truncate(n);
        all
    }

    /// Hotness skew: max score over mean score across active trunks.
    /// `1.0` means perfectly balanced; `0.0` means no recorded load at all.
    pub fn imbalance(&self) -> f64 {
        let all = self.snapshot();
        let scores: Vec<f64> = all.iter().map(|t| t.score()).collect();
        let sum: f64 = scores.iter().sum();
        if scores.is_empty() || sum <= 0.0 {
            return 0.0;
        }
        let mean = sum / scores.len() as f64;
        scores.iter().cloned().fold(0.0, f64::max) / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_rates_attribute_per_trunk() {
        let lm = LoadMap::new();
        for _ in 0..100 {
            lm.record_read(3, 64);
        }
        lm.record_write(5, 128);
        lm.record_msgs(3, 7);
        lm.record_hops(5, 2);
        lm.roll_at(1_000_000); // one second
        let snap = lm.snapshot_rolled();
        assert_eq!(snap.len(), 2);
        let t3 = &snap[0];
        assert_eq!((t3.trunk, t3.reads, t3.msgs), (3, 100, 7));
        // α = 1 − e^(−0.1) over a 1 s window folding 100 reads/s.
        let alpha = 1.0 - (-0.1f64).exp();
        assert!((t3.reads_per_s - alpha * 100.0).abs() < 1e-6);
        let t5 = &snap[1];
        assert_eq!((t5.trunk, t5.writes, t5.hops), (5, 1, 2));
        assert_eq!(t5.bytes_written, 128);
    }

    #[test]
    fn rates_decay_when_idle() {
        let lm = LoadMap::new();
        lm.record_read(0, 1);
        lm.roll_at(1_000_000);
        let hot = lm.snapshot_rolled()[0].reads_per_s;
        assert!(hot > 0.0);
        // 50 s of silence: e^(−5) ≈ 0.7% of the rate remains.
        lm.roll_at(51_000_000);
        let cold = lm.snapshot_rolled()[0].reads_per_s;
        assert!(cold < hot * 0.01, "rate must decay: {hot} -> {cold}");
    }

    #[test]
    fn hottest_and_imbalance_rank_by_score() {
        let lm = LoadMap::new();
        for _ in 0..90 {
            lm.record_read(1, 8);
        }
        for _ in 0..10 {
            lm.record_read(2, 8);
        }
        lm.roll_at(1_000_000);
        let top = lm.hottest(1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].trunk, 1);
        // Two active trunks at 90/10: max/mean = 90/50 = 1.8.
        let imb = lm.imbalance();
        assert!((imb - 1.8).abs() < 1e-6, "imbalance {imb}");
    }

    #[test]
    fn miss_share_folds_only_with_traffic() {
        let lm = LoadMap::new();
        for _ in 0..3 {
            lm.record_cache_miss(7);
        }
        lm.record_cache_hit(7);
        lm.roll_at(1_000_000);
        let share = lm.snapshot_rolled()[0].remote_miss_share;
        let alpha = 1.0 - (-0.1f64).exp();
        assert!((share - alpha * 0.75).abs() < 1e-6);
        // A quiet window leaves the share untouched.
        lm.roll_at(2_000_000);
        assert_eq!(lm.snapshot_rolled()[0].remote_miss_share, share);
    }

    #[test]
    fn out_of_range_trunks_are_dropped() {
        let lm = LoadMap::new();
        lm.record_read(MAX_TRUNKS, 64);
        lm.record_read(MAX_TRUNKS + 5, 64);
        lm.roll_at(1_000_000);
        assert!(lm.snapshot_rolled().is_empty());
    }

    #[test]
    fn tiny_windows_are_skipped() {
        let lm = LoadMap::new();
        lm.record_read(0, 1);
        lm.roll_at(500); // below MIN_ROLL_WINDOW_US
        assert!(lm.snapshot_rolled().is_empty(), "roll must be skipped");
        lm.roll_at(1_000_000);
        assert_eq!(lm.snapshot_rolled().len(), 1);
    }
}
