//! Cross-machine trace timelines.
//!
//! A trace id follows one logical query across every machine it touches
//! (see [`crate::trace`]); each machine buffers its own [`SpanEvent`]s.
//! This module stitches those spans back into one causal [`Timeline`]:
//!
//! * spans are ordered by start time on a **shared clock** — every span
//!   ring created by one [`crate::Registry`] shares the registry's epoch,
//!   so cross-machine timestamps are directly comparable;
//! * [`Timeline::breakdown`] aggregates per label (`net.send` = wire,
//!   `net.deliver` = receive/queue, `net.dispatch` = handler compute,
//!   `explore.hop` / `query.hop` = per-hop totals), giving the
//!   queue/network/compute split for each hop of a query;
//! * [`Timeline::critical_path`] extracts a greedy longest chain of
//!   overlapping spans — the sequence of work that actually bounded the
//!   query's latency — and [`Timeline::critical_us`] is the wall time that
//!   chain covers (gaps between disjoint spans are not counted);
//! * [`Timeline::chrome_trace_json`] exports the Chrome trace-event
//!   format (`chrome://tracing`, Perfetto) with one track per machine.

use crate::export::Json;
use crate::registry::Registry;
use crate::trace::SpanEvent;

/// Per-label aggregate over one timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelStat {
    pub label: &'static str,
    pub count: u64,
    /// Summed span durations, µs (overlapping spans double-count here —
    /// this is total work, not wall time).
    pub total_us: u64,
    pub bytes: u64,
    pub frames: u64,
}

/// The spans of one trace, stitched across machines and sorted by start.
#[derive(Debug, Clone)]
pub struct Timeline {
    pub trace: u64,
    pub spans: Vec<SpanEvent>,
}

impl Timeline {
    /// Build from an arbitrary span soup: keeps `trace`'s spans, sorted by
    /// `(start_us, end_us, machine)`.
    pub fn build(trace: u64, spans: impl IntoIterator<Item = SpanEvent>) -> Timeline {
        let mut spans: Vec<SpanEvent> = spans.into_iter().filter(|s| s.trace == trace).collect();
        spans.sort_by_key(|s| (s.start_us, s.end_us, s.machine));
        Timeline { trace, spans }
    }

    /// Build from everything currently buffered in `reg`'s span rings.
    pub fn from_registry(reg: &Registry, trace: u64) -> Timeline {
        Timeline::build(trace, reg.spans_for_trace(trace))
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Earliest span start, µs since the registry epoch.
    pub fn start_us(&self) -> u64 {
        self.spans.iter().map(|s| s.start_us).min().unwrap_or(0)
    }

    /// Latest span end.
    pub fn end_us(&self) -> u64 {
        self.spans.iter().map(|s| s.end_us).max().unwrap_or(0)
    }

    /// End-to-end makespan (last end minus first start).
    pub fn makespan_us(&self) -> u64 {
        self.end_us().saturating_sub(self.start_us())
    }

    /// Per-label totals, ordered by descending total time.
    pub fn breakdown(&self) -> Vec<LabelStat> {
        let mut stats: Vec<LabelStat> = Vec::new();
        for s in &self.spans {
            let dur = s.end_us.saturating_sub(s.start_us);
            match stats.iter_mut().find(|st| st.label == s.label) {
                Some(st) => {
                    st.count += 1;
                    st.total_us += dur;
                    st.bytes += s.bytes;
                    st.frames += s.frames as u64;
                }
                None => stats.push(LabelStat {
                    label: s.label,
                    count: 1,
                    total_us: dur,
                    bytes: s.bytes,
                    frames: s.frames as u64,
                }),
            }
        }
        stats.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.label.cmp(b.label)));
        stats
    }

    /// Greedy critical path: starting from the earliest span, repeatedly
    /// take — among spans overlapping the chain's current end — the one
    /// reaching furthest; when none overlaps, jump across the gap to the
    /// next span to start. The result is a minimal chain of spans whose
    /// union spans the whole timeline.
    pub fn critical_path(&self) -> Vec<SpanEvent> {
        let mut chain = Vec::new();
        let Some(first) = self.spans.first() else {
            return chain;
        };
        // Spans are sorted by start; scan once, keeping the candidate that
        // extends coverage the furthest at each step.
        let mut cur = *first;
        let mut cur_end = first.end_us;
        for s in self.spans.iter().skip(1) {
            if s.start_us <= cur_end {
                // Overlaps (or abuts) the current chain end.
                if s.end_us > cur_end {
                    // Prefer to extend the current span's reach by chaining
                    // through this one; commit the previous link first.
                    chain.push(cur);
                    cur = *s;
                    cur_end = s.end_us;
                }
            } else {
                // Gap: nothing bridged it, start a new segment.
                chain.push(cur);
                cur = *s;
                cur_end = cur_end.max(s.end_us);
            }
        }
        chain.push(cur);
        chain
    }

    /// Wall time covered by the critical path, µs. Gaps where no span ran
    /// are excluded, so for a fully-instrumented query this approximates
    /// the measured wall time.
    pub fn critical_us(&self) -> u64 {
        let mut covered = 0u64;
        let mut cur_end = 0u64;
        let mut started = false;
        for s in self.critical_path() {
            if !started || s.start_us >= cur_end {
                covered += s.end_us.saturating_sub(s.start_us);
                cur_end = s.end_us;
                started = true;
            } else if s.end_us > cur_end {
                covered += s.end_us - cur_end;
                cur_end = s.end_us;
            }
        }
        covered
    }

    /// Chrome trace-event JSON (`{"traceEvents": [...]}`, "X" complete
    /// events). `pid`/`tid` carry the machine id so viewers draw one track
    /// per machine; span metadata rides in `args`.
    pub fn chrome_trace_json(&self) -> Json {
        let events: Vec<Json> = self
            .spans
            .iter()
            .map(|s| {
                Json::obj([
                    ("name", Json::from(s.label)),
                    ("cat", Json::from("trinity")),
                    ("ph", Json::from("X")),
                    ("ts", Json::U64(s.start_us)),
                    ("dur", Json::U64(s.end_us.saturating_sub(s.start_us))),
                    ("pid", Json::U64(s.machine as u64)),
                    ("tid", Json::U64(s.machine as u64)),
                    (
                        "args",
                        Json::obj([
                            ("trace", Json::U64(s.trace)),
                            ("proto", Json::U64(s.proto as u64)),
                            ("bytes", Json::U64(s.bytes)),
                            ("frames", Json::U64(s.frames as u64)),
                        ]),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;

    fn span(machine: u16, label: &'static str, start_us: u64, end_us: u64) -> SpanEvent {
        SpanEvent {
            trace: 9,
            machine,
            label,
            proto: 0,
            bytes: 10,
            frames: 1,
            start_us,
            end_us,
        }
    }

    #[test]
    fn build_filters_and_sorts() {
        let mut other = span(0, "noise", 0, 1);
        other.trace = 8;
        let tl = Timeline::build(9, vec![span(1, "b", 50, 80), other, span(0, "a", 10, 60)]);
        assert_eq!(tl.spans.len(), 2);
        assert_eq!(tl.spans[0].label, "a");
        assert_eq!((tl.start_us(), tl.end_us(), tl.makespan_us()), (10, 80, 70));
    }

    #[test]
    fn critical_path_chains_overlaps_and_skips_gaps() {
        // a[0,100) overlaps b[60,200); gap; c[300,350).
        let tl = Timeline::build(
            9,
            vec![
                span(0, "a", 0, 100),
                span(1, "b", 60, 200),
                span(0, "inner", 70, 90), // dominated: never on the path
                span(2, "c", 300, 350),
            ],
        );
        let path: Vec<&str> = tl.critical_path().iter().map(|s| s.label).collect();
        assert_eq!(path, vec!["a", "b", "c"]);
        // Covered: [0,200) ∪ [300,350) = 250; gap of 100 excluded.
        assert_eq!(tl.critical_us(), 250);
        assert_eq!(tl.makespan_us(), 350);
    }

    #[test]
    fn breakdown_aggregates_per_label() {
        let tl = Timeline::build(
            9,
            vec![
                span(0, "hop", 0, 10),
                span(1, "hop", 10, 30),
                span(0, "net", 2, 5),
            ],
        );
        let b = tl.breakdown();
        assert_eq!(b[0].label, "hop");
        assert_eq!(b[0].count, 2);
        assert_eq!(b[0].total_us, 30);
        assert_eq!(b[0].bytes, 20);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let tl = Timeline::build(9, vec![span(0, "a", 0, 100), span(1, "b", 60, 200)]);
        let doc = tl.chrome_trace_json().to_string();
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"traceEvents\""));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"dur\":140"));
    }
}
