//! Windowed flight recorder: a bounded postmortem buffer per registry.
//!
//! Lifetime counters answer "how much, ever"; a postmortem needs "what
//! changed in the last few seconds before it went wrong". The
//! [`FlightRecorder`] keeps a ring of the last [`FLIGHT_WINDOWS`]
//! *windows* — each a [`RegistrySnapshot`] delta between two consecutive
//! [`FlightRecorder::tick`]s — plus a bounded log of freeform events
//! (chaos fault firings, shed storms, invariant breadcrumbs).
//!
//! Ticks are pull-based: there is no background thread. Natural tick
//! points are chaos-run captures, bench section boundaries, and serve-side
//! storm detection; anything that ticks at least once per interesting
//! period gets windowed deltas for free.
//!
//! [`FlightRecorder::dump_json`] folds the windows, the event log, and the
//! caller-supplied recent spans into one JSON artifact. The chaos runner
//! writes it when an invariant fails; the serve runtime writes it when a
//! shed storm trips. Either way the artifact carries the *faulting window*
//! rather than only lifetime totals.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::export::{snapshot_json, span_json, Json};
use crate::registry::RegistrySnapshot;
use crate::trace::SpanEvent;

/// Windows retained; older windows fall off the ring.
pub const FLIGHT_WINDOWS: usize = 16;

/// Freeform events retained.
pub const FLIGHT_EVENTS: usize = 256;

/// Recent spans included in a dump, newest last.
pub const FLIGHT_SPANS: usize = 512;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

/// One recorded window: activity between two consecutive ticks.
#[derive(Debug, Clone)]
pub struct FlightWindow {
    /// Monotonic window number (first window is 1).
    pub seq: u64,
    /// Window bounds, µs since the owning registry's epoch.
    pub start_us: u64,
    pub end_us: u64,
    /// Metric deltas over the window.
    pub delta: RegistrySnapshot,
}

#[derive(Debug, Default)]
struct FlightState {
    seq: u64,
    last_us: u64,
    last: Option<RegistrySnapshot>,
    windows: VecDeque<FlightWindow>,
    events: VecDeque<(u64, String)>,
}

/// Bounded ring of windowed metric deltas plus an event log.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    inner: Mutex<FlightState>,
}

impl FlightRecorder {
    pub fn new() -> Self {
        FlightRecorder::default()
    }

    /// Close the current window at `now_us` with registry state `snap`.
    /// The first tick only establishes the baseline; each later tick
    /// appends one [`FlightWindow`] holding the delta since the previous.
    pub fn tick(&self, now_us: u64, snap: RegistrySnapshot) {
        let mut st = lock(&self.inner);
        if let Some(prev) = st.last.take() {
            st.seq += 1;
            let w = FlightWindow {
                seq: st.seq,
                start_us: st.last_us,
                end_us: now_us,
                delta: prev.delta_to(&snap),
            };
            st.windows.push_back(w);
            while st.windows.len() > FLIGHT_WINDOWS {
                st.windows.pop_front();
            }
        }
        st.last = Some(snap);
        st.last_us = now_us;
    }

    /// Append a freeform event line (fault firing, shed, breadcrumb).
    pub fn event(&self, now_us: u64, line: impl Into<String>) {
        let mut st = lock(&self.inner);
        st.events.push_back((now_us, line.into()));
        while st.events.len() > FLIGHT_EVENTS {
            st.events.pop_front();
        }
    }

    /// Windows currently buffered, oldest first.
    pub fn windows(&self) -> Vec<FlightWindow> {
        lock(&self.inner).windows.iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn event_count(&self) -> usize {
        lock(&self.inner).events.len()
    }

    /// Serialize the buffered windows, events, and `spans` (the caller
    /// passes the registry's recent spans; only the newest
    /// [`FLIGHT_SPANS`] are kept) into one postmortem document.
    pub fn dump_json(&self, reason: &str, now_us: u64, spans: &[SpanEvent]) -> Json {
        let st = lock(&self.inner);
        let windows: Vec<Json> = st
            .windows
            .iter()
            .map(|w| {
                Json::obj([
                    ("seq", Json::U64(w.seq)),
                    ("start_us", Json::U64(w.start_us)),
                    ("end_us", Json::U64(w.end_us)),
                    ("delta", snapshot_json(&w.delta)),
                ])
            })
            .collect();
        let events: Vec<Json> = st
            .events
            .iter()
            .map(|(us, line)| {
                Json::obj([("us", Json::U64(*us)), ("event", Json::Str(line.clone()))])
            })
            .collect();
        let recent = &spans[spans.len().saturating_sub(FLIGHT_SPANS)..];
        Json::obj([
            ("kind", Json::from("trinity.flight")),
            ("reason", Json::from(reason)),
            ("dumped_at_us", Json::U64(now_us)),
            ("windows", Json::Arr(windows)),
            ("events", Json::Arr(events)),
            ("spans", Json::Arr(recent.iter().map(span_json).collect())),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::validate_json;
    use crate::registry::Registry;

    #[test]
    fn windows_hold_deltas_not_totals() {
        let reg = Registry::new();
        let rec = FlightRecorder::new();
        reg.scope(0).counter("x").add(10);
        rec.tick(1_000, reg.snapshot()); // baseline only
        reg.scope(0).counter("x").add(5);
        rec.tick(2_000, reg.snapshot());
        let ws = rec.windows();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].seq, 1);
        assert_eq!((ws[0].start_us, ws[0].end_us), (1_000, 2_000));
        assert_eq!(ws[0].delta.machines[&0].counters["x"], 5);
    }

    #[test]
    fn ring_caps_windows_and_events() {
        let reg = Registry::new();
        let rec = FlightRecorder::new();
        for i in 0..(FLIGHT_WINDOWS as u64 + 5) {
            rec.tick(i * 1_000, reg.snapshot());
        }
        let ws = rec.windows();
        assert_eq!(ws.len(), FLIGHT_WINDOWS);
        assert_eq!(ws[0].seq, 5, "oldest windows fall off");
        for i in 0..(FLIGHT_EVENTS + 9) {
            rec.event(i as u64, format!("e{i}"));
        }
        assert_eq!(rec.event_count(), FLIGHT_EVENTS);
    }

    #[test]
    fn dump_is_valid_json_with_faulting_window() {
        let reg = Registry::new();
        let rec = FlightRecorder::new();
        rec.tick(0, reg.snapshot());
        reg.scope(2).counter("net.env.dropped").add(3);
        rec.tick(1_000, reg.snapshot());
        rec.event(900, "drop 0 1 17");
        let doc = rec
            .dump_json("invariant: frames leaked", 1_100, &[])
            .to_string();
        validate_json(&doc).unwrap();
        assert!(doc.contains("\"reason\":\"invariant: frames leaked\""));
        assert!(doc.contains("\"net.env.dropped\":3"));
        assert!(doc.contains("drop 0 1 17"));
    }
}
