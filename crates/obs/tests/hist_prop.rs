//! Property tests for the log₂ histogram.
//!
//! Written against a hand-rolled deterministic PRNG (rather than proptest)
//! so they stay `std`-only like the crate itself. Each case runs many
//! random distributions; failures print the seed for replay.

use trinity_obs::{HistSnapshot, Histogram};

/// splitmix64 — deterministic per seed.
struct Prng(u64);

impl Prng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value spread across many orders of magnitude (so all bucket
    /// shapes get exercised), including zero.
    fn value(&mut self) -> u64 {
        let shift = (self.next() % 64) as u32;
        self.next() >> shift
    }
}

fn random_hist(rng: &mut Prng, n: usize) -> (Histogram, Vec<u64>) {
    let h = Histogram::new();
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        let v = rng.value();
        h.record(v);
        values.push(v);
    }
    (h, values)
}

#[test]
fn merge_preserves_total_count_and_sum() {
    for seed in 0..50u64 {
        let mut rng = Prng(seed);
        let n1 = (rng.next() % 500) as usize;
        let n2 = (rng.next() % 500) as usize;
        let (a, va) = random_hist(&mut rng, n1);
        let (b, vb) = random_hist(&mut rng, n2);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, (n1 + n2) as u64, "seed {seed}");
        let expect_sum: u64 = va
            .iter()
            .chain(vb.iter())
            .fold(0, |s, &v| s.wrapping_add(v));
        assert_eq!(merged.sum, expect_sum, "seed {seed}");
        let expect_max = va.iter().chain(vb.iter()).copied().max().unwrap_or(0);
        assert_eq!(merged.max, expect_max, "seed {seed}");
        // Bucket counts must sum to the total count.
        assert_eq!(
            merged.buckets.iter().sum::<u64>(),
            merged.count,
            "seed {seed}"
        );
    }
}

#[test]
fn cumulative_bucket_counts_are_monotone_and_match_sorted_values() {
    for seed in 100..140u64 {
        let mut rng = Prng(seed);
        let n = 1 + (rng.next() % 800) as usize;
        let (h, mut values) = random_hist(&mut rng, n);
        values.sort_unstable();
        let s = h.snapshot();
        // Cumulative counts are non-decreasing and each bucket's count
        // equals the number of values within its range.
        let mut cum = 0u64;
        for (b, &count) in s.buckets.iter().enumerate() {
            let (lo, hi) = HistSnapshot::bucket_range(b);
            let in_range = values.iter().filter(|&&v| v >= lo && v <= hi).count() as u64;
            assert_eq!(count, in_range, "seed {seed} bucket {b}");
            let next = cum + count;
            assert!(next >= cum, "cumulative counts must be monotone");
            cum = next;
        }
        assert_eq!(cum, n as u64, "seed {seed}");
    }
}

#[test]
fn quantile_estimates_are_bounded_by_bucket_edges() {
    for seed in 200..240u64 {
        let mut rng = Prng(seed);
        let n = 1 + (rng.next() % 800) as usize;
        let (h, mut values) = random_hist(&mut rng, n);
        values.sort_unstable();
        let s = h.snapshot();
        for &q in &[0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let est = s.quantile(q);
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let exact = values[rank - 1];
            // The estimate is the upper edge of the true value's bucket
            // (clamped to the max): never below the exact quantile, and
            // within one power of two above it.
            assert!(est >= exact, "seed {seed} q {q}: est {est} < exact {exact}");
            let (_, hi) = {
                let b = if exact == 0 {
                    0
                } else {
                    64 - exact.leading_zeros() as usize
                };
                HistSnapshot::bucket_range(b)
            };
            assert!(
                est <= hi.min(s.max),
                "seed {seed} q {q}: est {est} above bucket edge {hi}"
            );
        }
    }
}

#[test]
fn merged_quantiles_stay_within_merged_range() {
    for seed in 300..330u64 {
        let mut rng = Prng(seed);
        let (a, va) = random_hist(&mut rng, 200);
        let (b, vb) = random_hist(&mut rng, 200);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        let lo = va.iter().chain(vb.iter()).copied().min().unwrap();
        let hi = va.iter().chain(vb.iter()).copied().max().unwrap();
        for &q in &[0.5, 0.95, 0.99] {
            let est = m.quantile(q);
            assert!(
                est >= lo && est <= hi,
                "seed {seed}: {est} outside [{lo}, {hi}]"
            );
        }
    }
}
