//! End-to-end behaviour of deadline budgets on the fabric.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trinity_net::{
    deadline_now_us, DeadlineGuard, Fabric, FabricConfig, MachineId, NetError, NO_DEADLINE,
};

const ECHO: u16 = 70;
const SLOW: u16 = 71;

#[test]
fn call_without_deadline_is_unchanged() {
    let fabric = Fabric::new(FabricConfig::with_machines(2));
    let a = fabric.endpoint(MachineId(0));
    let b = fabric.endpoint(MachineId(1));
    b.register(ECHO, |_src, p| Some(p.to_vec()));
    assert_eq!(a.call(MachineId(1), ECHO, b"x").unwrap(), b"x");
    fabric.shutdown();
}

#[test]
fn expired_budget_fails_before_transmitting() {
    let fabric = Fabric::new(FabricConfig::with_machines(2));
    let a = fabric.endpoint(MachineId(0));
    let b = fabric.endpoint(MachineId(1));
    let served = Arc::new(AtomicU64::new(0));
    let served2 = Arc::clone(&served);
    b.register(ECHO, move |_src, p| {
        served2.fetch_add(1, Ordering::Relaxed);
        Some(p.to_vec())
    });
    let _g = DeadlineGuard::enter(1); // expired long ago
    let err = a.call(MachineId(1), ECHO, b"x").unwrap_err();
    assert!(matches!(err, NetError::DeadlineExceeded(_, _)), "{err}");
    assert_eq!(served.load(Ordering::Relaxed), 0, "no wasted handler run");
    fabric.shutdown();
}

#[test]
fn callee_refuses_request_that_expires_in_flight() {
    let fabric = Fabric::new(FabricConfig::with_machines(3));
    let a = fabric.endpoint(MachineId(0));
    let b = fabric.endpoint(MachineId(1));
    let served = Arc::new(AtomicU64::new(0));
    // SLOW occupies the single lane to the worker pool long enough for a
    // second request's budget to lapse while it sits in the queue.
    b.register(SLOW, |_src, _p| {
        std::thread::sleep(Duration::from_millis(80));
        Some(Vec::new())
    });
    let served2 = Arc::clone(&served);
    b.register(ECHO, move |_src, p| {
        served2.fetch_add(1, Ordering::Relaxed);
        Some(p.to_vec())
    });
    // Saturate every worker on machine 1 with slow one-ways.
    for _ in 0..8 {
        a.send(MachineId(1), SLOW, &[]);
    }
    a.flush_to(MachineId(1));
    // Now race a tightly-budgeted call against the queue backlog.
    let _g = DeadlineGuard::enter(deadline_now_us() + 20_000);
    let err = a
        .call_with_deadline(MachineId(1), ECHO, b"x", Duration::from_secs(5))
        .unwrap_err();
    assert!(matches!(err, NetError::DeadlineExceeded(_, _)), "{err}");
    // The callee either refused it outright or never got to it before the
    // caller's budget lapsed — both ways no handler ran after expiry.
    fabric.shutdown();
}

#[test]
fn deadline_propagates_to_nested_calls() {
    let fabric = Fabric::new(FabricConfig::with_machines(3));
    let a = fabric.endpoint(MachineId(0));
    let b = fabric.endpoint(MachineId(1));
    let c = fabric.endpoint(MachineId(2));
    // Machine 2 reports the deadline its worker thread sees.
    c.register(ECHO, |_src, _p| {
        Some(trinity_net::current_deadline().to_le_bytes().to_vec())
    });
    // Machine 1 relays to machine 2; the budget must follow.
    let c_id = MachineId(2);
    let b2 = Arc::clone(&b);
    b.register(SLOW, move |_src, _p| {
        b2.call(c_id, ECHO, &[]).ok().map(|r| r.into_vec())
    });
    let budget = deadline_now_us() + 2_000_000;
    let _g = DeadlineGuard::enter(budget);
    let seen = a.call(MachineId(1), SLOW, &[]).unwrap();
    let seen = u64::from_le_bytes(seen.as_slice().try_into().unwrap());
    assert_ne!(seen, NO_DEADLINE, "machine 2 must inherit a deadline");
    assert!(
        seen <= budget,
        "propagated deadline may only tighten: {seen} vs {budget}"
    );
    fabric.shutdown();
}
