//! Property tests on the fault injector's contracts.
//!
//! Invariants: a neutral `FaultPlan` (drop=0, delay=0, no partitions, no
//! schedule) is indistinguishable from the fault-free fabric — same
//! delivery order, same stats, empty fault log — for any seed and any
//! send/flush interleaving; a delay-only plan preserves per-link FIFO and
//! exactly-once delivery; and a lossy plan keeps the frame ledger
//! balanced (entered == consumed + swallowed) after quiescence.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use trinity_net::{Fabric, FabricConfig, FaultPlan, MachineId};

#[derive(Debug, Clone)]
enum SendOp {
    Send { dst: u16 },
    Flush { dst: u16 },
    FlushAll,
}

fn op_strategy() -> impl Strategy<Value = SendOp> {
    prop_oneof![
        6 => (1u16..=2).prop_map(|dst| SendOp::Send { dst }),
        2 => (1u16..=2).prop_map(|dst| SendOp::Flush { dst }),
        1 => Just(SendOp::FlushAll),
    ]
}

/// Run `ops` from machine 0 against a fabric with the given plan; return
/// the per-destination delivery orders and the cluster-wide stats.
fn run_ops(
    ops: &[SendOp],
    faults: Option<FaultPlan>,
) -> (Vec<Vec<u32>>, trinity_net::StatsDelta, usize) {
    let fabric = Fabric::new(FabricConfig {
        workers_per_machine: 1, // handler-order FIFO requires one worker
        call_timeout: Duration::from_secs(5),
        faults,
        ..FabricConfig::with_machines(3)
    });
    let seen: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(vec![Vec::new(); 3]));
    for m in 1..=2u16 {
        let seen = Arc::clone(&seen);
        fabric.endpoint(MachineId(m)).register(30, move |_src, p| {
            seen.lock()[m as usize].push(u32::from_le_bytes(p.try_into().unwrap()));
            None
        });
    }
    let sender = fabric.endpoint(MachineId(0));
    let mut total = 0usize;
    let mut seq = 0u32;
    for op in ops {
        match op {
            SendOp::Send { dst } => {
                sender.send(MachineId(*dst), 30, &seq.to_le_bytes());
                seq += 1;
                total += 1;
            }
            SendOp::Flush { dst } => sender.flush_to(MachineId(*dst)),
            SendOp::FlushAll => sender.flush(),
        }
    }
    sender.flush();
    fabric.chaos_quiesce(Duration::from_secs(10));
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while seen.lock().iter().map(Vec::len).sum::<usize>() < total
        && std::time::Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(1));
    }
    let orders = seen.lock().clone();
    let stats = fabric.total_stats();
    let log_len = fabric.fault_log().len();
    fabric.shutdown();
    (orders, stats, log_len)
}

/// Regression: a kill → revive → resend cycle must not double-count
/// frames in the delivery ledger. Frames refused while the target is dead
/// never enter the ledger; frames dropped by the kill are counted exactly
/// once; resent frames are fresh entries, not replays of the dropped
/// ones. After quiescence `entered == consumed` and the handler ran
/// exactly `delivered` times.
#[test]
fn kill_revive_resend_does_not_double_count_frames() {
    use std::sync::atomic::{AtomicU64, Ordering};

    let fabric = Fabric::new(FabricConfig {
        workers_per_machine: 1, // one worker: the inbox drains serially
        call_timeout: Duration::from_secs(5),
        ..FabricConfig::with_machines(2)
    });
    let handled = Arc::new(AtomicU64::new(0));
    {
        let handled = Arc::clone(&handled);
        fabric.endpoint(MachineId(1)).register(30, move |_src, _p| {
            // Slow handler: the inbox stays backed up long enough for the
            // kill to catch queued frames deterministically.
            std::thread::sleep(Duration::from_millis(5));
            handled.fetch_add(1, Ordering::SeqCst);
            None
        });
    }
    let sender = fabric.endpoint(MachineId(0));
    const BURST: u32 = 20;
    for i in 0..BURST {
        sender.send(MachineId(1), 30, &i.to_le_bytes());
    }
    sender.flush();
    // Wait for the first deliveries, then kill with the queue non-empty:
    // at 5ms per frame the remaining ~18 frames cannot have drained.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handled.load(Ordering::SeqCst) < 2 {
        assert!(std::time::Instant::now() < deadline, "no deliveries");
        std::thread::sleep(Duration::from_millis(1));
    }
    fabric.kill(MachineId(1));
    // Let the dead machine's worker drain its backed-up queue (each
    // queued frame is counted dropped at dequeue) before reviving —
    // reviving earlier would let the leftovers deliver normally.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let total = fabric.total_stats();
        if total.entered_frames() == total.consumed_frames() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "kill never drained the queue: {total:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Sends into a dead machine are refused at the send site: they must
    // never enter the ledger (neither as delivered nor as dropped).
    const WHILE_DEAD: u32 = 10;
    for i in 0..WHILE_DEAD {
        sender.send(MachineId(1), 30, &i.to_le_bytes());
    }
    sender.flush();

    fabric.revive(MachineId(1));
    for i in 0..BURST {
        sender.send(MachineId(1), 30, &i.to_le_bytes());
    }
    sender.flush();

    // Quiesce: every entered frame terminally accounted.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let total = fabric.total_stats();
        if total.entered_frames() == total.consumed_frames() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "ledger never balanced: {total:?}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    let total = fabric.total_stats();
    let handled = handled.load(Ordering::SeqCst);
    // Exactly the two bursts entered; the dead-window sends did not.
    assert_eq!(total.entered_frames(), 2 * BURST as u64);
    assert_eq!(total.refused_frames, WHILE_DEAD as u64);
    // The kill discarded the backed-up queue, and each discarded frame is
    // counted exactly once: delivered + dropped covers both bursts.
    assert!(total.dropped_frames > 0, "kill must drop the queued frames");
    assert_eq!(
        total.delivered_frames + total.dropped_frames,
        2 * BURST as u64
    );
    // The handler ran once per delivered frame — a resend delivered twice
    // or a dropped frame also delivered would break this equality.
    assert_eq!(handled, total.delivered_frames);
    fabric.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Satellite invariant: a seeded plan with every policy off is
    /// byte-identical to the fault-free fabric.
    #[test]
    fn neutral_plan_is_invisible(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        seed in any::<u64>(),
    ) {
        let neutral = FaultPlan::new(seed);
        prop_assert!(neutral.is_neutral());
        let (plain_order, plain_stats, _) = run_ops(&ops, None);
        let (chaos_order, chaos_stats, log_len) = run_ops(&ops, Some(neutral));
        prop_assert_eq!(plain_order, chaos_order, "delivery order diverged");
        prop_assert_eq!(plain_stats, chaos_stats, "stats diverged");
        prop_assert_eq!(log_len, 0, "a neutral plan must inject nothing");
    }

    /// Delays postpone but never reorder, lose, or duplicate: per-link
    /// FIFO and exactly-once survive any delay plan.
    #[test]
    fn delay_only_plan_preserves_fifo_and_exactly_once(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        seed in any::<u64>(),
        prob_pct in 10u32..100,
        base_us in 1u64..3_000,
    ) {
        let plan = FaultPlan::new(seed).with_delay(prob_pct as f64 / 100.0, base_us, base_us);
        let (plain_order, _, _) = run_ops(&ops, None);
        let (chaos_order, stats, _) = run_ops(&ops, Some(plan));
        prop_assert_eq!(plain_order, chaos_order, "delay plan changed delivery");
        prop_assert_eq!(stats.entered_frames(), stats.consumed_frames());
    }

    /// Lossy plans keep the ledger balanced: after quiescence every frame
    /// that entered was either consumed by a receiver or swallowed by the
    /// injector — none are stuck in buffers.
    #[test]
    fn lossy_plan_balances_the_ledger(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        seed in any::<u64>(),
        drop_pct in 5u32..50,
    ) {
        let plan = FaultPlan::new(seed).with_drop(drop_pct as f64 / 100.0);
        let fabric = Fabric::new(FabricConfig {
            faults: Some(plan),
            call_timeout: Duration::from_secs(5),
            ..FabricConfig::with_machines(3)
        });
        for m in 1..=2u16 {
            fabric.endpoint(MachineId(m)).register(30, |_src, _p| None);
        }
        let sender = fabric.endpoint(MachineId(0));
        let mut seq = 0u32;
        for op in &ops {
            match op {
                SendOp::Send { dst } => {
                    sender.send(MachineId(*dst), 30, &seq.to_le_bytes());
                    seq += 1;
                }
                SendOp::Flush { dst } => sender.flush_to(MachineId(*dst)),
                SendOp::FlushAll => sender.flush(),
            }
        }
        sender.flush();
        prop_assert!(fabric.chaos_quiesce(Duration::from_secs(10)));
        let chaos = Arc::clone(fabric.chaos().unwrap());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        loop {
            let total = fabric.total_stats();
            if total.entered_frames() == total.consumed_frames() + chaos.swallowed_frames() {
                break;
            }
            prop_assert!(
                std::time::Instant::now() < deadline,
                "ledger never balanced: {:?} swallowed={}",
                total,
                chaos.swallowed_frames()
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        // The recorded drops are exactly the swallowed envelopes.
        let log = fabric.fault_log();
        prop_assert!(log
            .records
            .iter()
            .all(|r| matches!(r.kind, trinity_net::FaultKind::Drop)));
        fabric.shutdown();
    }

    /// Same seed, same traffic: the injected fault log is bit-identical
    /// across runs (the replay substrate's core guarantee).
    #[test]
    fn same_seed_yields_identical_logs(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        seed in any::<u64>(),
    ) {
        let plan = FaultPlan::new(seed)
            .with_drop(0.2)
            .with_delay(0.2, 200, 400)
            .with_duplicate(0.1);
        let (_, _, _) = run_ops(&ops, Some(plan.clone()));
        let log_of = |p: FaultPlan| {
            let fabric = Fabric::new(FabricConfig {
                workers_per_machine: 1,
                faults: Some(p),
                call_timeout: Duration::from_secs(5),
                ..FabricConfig::with_machines(3)
            });
            for m in 1..=2u16 {
                fabric.endpoint(MachineId(m)).register(30, |_src, _p| None);
            }
            let sender = fabric.endpoint(MachineId(0));
            let mut seq = 0u32;
            for op in &ops {
                match op {
                    SendOp::Send { dst } => {
                        sender.send(MachineId(*dst), 30, &seq.to_le_bytes());
                        seq += 1;
                    }
                    SendOp::Flush { dst } => sender.flush_to(MachineId(*dst)),
                    SendOp::FlushAll => sender.flush(),
                }
            }
            sender.flush();
            fabric.chaos_quiesce(Duration::from_secs(10));
            let log = fabric.fault_log();
            fabric.shutdown();
            log
        };
        let first = log_of(plan.clone());
        let second = log_of(plan.clone());
        prop_assert_eq!(&first, &second, "same seed diverged");
        // And a replay plan built from the log re-injects exactly it.
        let replayed = log_of(FaultPlan::replay(&first));
        prop_assert_eq!(&replayed, &first, "replay diverged from its log");
    }
}
