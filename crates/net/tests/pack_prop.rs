//! Property tests for the zero-copy pack/unpack path, plus aliasing and
//! error-classification regressions.
//!
//! The pack path turns N payloads into slices of one pooled arena chunk;
//! these tests drive arbitrary frame counts and payload sizes (empty,
//! tiny, and bigger than the packing threshold) through a real fabric and
//! assert every byte survives, in order — then pin down the two
//! lifetime/classification bugs the zero-copy rewrite is easiest to get
//! wrong on: a kept subslice outliving its recycled neighbors, and an
//! expired call during peer death misreporting `Unreachable`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use proptest::prelude::*;

use trinity_net::{
    deadline_now_us, DeadlineGuard, Fabric, FabricConfig, FrameBuf, FrameKind, FramePool,
    MachineId, NetError, PackArena,
};

const SINK: u16 = 90;
const ECHO: u16 = 91;
const SLOW: u16 = 92;

/// Payload shapes that exercise every packing regime: empty frames,
/// sub-threshold runts that pack many-to-an-envelope, and payloads larger
/// than the (shrunken) packing threshold that flush mid-batch.
fn payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        prop_oneof![
            1 => proptest::strategy::Just(Vec::new()),
            2 => proptest::collection::vec(any::<u8>(), 1..32),
            2 => proptest::collection::vec(any::<u8>(), 200..600),
        ],
        0..40,
    )
}

fn small_pack_fabric() -> Arc<Fabric> {
    let mut cfg = FabricConfig::with_machines(2);
    // Shrink the packing threshold so multi-envelope flushes happen at
    // test-sized payloads instead of 64 KiB.
    cfg.pack_threshold_bytes = 512;
    Fabric::new(cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One-way sends: every payload arrives exactly once, byte-identical
    /// and in per-destination FIFO order, regardless of how the packer
    /// splits the batch into envelopes.
    #[test]
    fn packed_sends_roundtrip(batch in payloads()) {
        let fabric = small_pack_fabric();
        let a = fabric.endpoint(MachineId(0));
        let b = fabric.endpoint(MachineId(1));
        let seen: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        b.register(SINK, move |_src, p| {
            sink.lock().unwrap().push(p.to_vec());
            None
        });
        for p in &batch {
            a.send(MachineId(1), SINK, p);
        }
        a.flush_to(MachineId(1));
        // An empty-payload echo call after the flush fences the one-ways:
        // same destination, so FIFO guarantees the sink ran for all.
        b.register(ECHO, |_src, p| Some(p.to_vec()));
        a.call(MachineId(1), ECHO, b"fence").unwrap();
        prop_assert_eq!(&*seen.lock().unwrap(), &batch);
        fabric.shutdown();
    }

    /// The flat-buffer batch path (`send_slices`) is byte-equivalent to
    /// issuing each span as its own `send`.
    #[test]
    fn send_slices_matches_individual_sends(batch in payloads()) {
        let fabric = small_pack_fabric();
        let a = fabric.endpoint(MachineId(0));
        let b = fabric.endpoint(MachineId(1));
        let seen: Arc<Mutex<Vec<Vec<u8>>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        b.register(SINK, move |_src, p| {
            sink.lock().unwrap().push(p.to_vec());
            None
        });
        let mut flat = Vec::new();
        let mut ends = Vec::new();
        for p in &batch {
            flat.extend_from_slice(p);
            ends.push(flat.len());
        }
        a.send_slices(MachineId(1), SINK, &flat, &ends);
        a.flush_to(MachineId(1));
        b.register(ECHO, |_src, p| Some(p.to_vec()));
        a.call(MachineId(1), ECHO, b"fence").unwrap();
        prop_assert_eq!(&*seen.lock().unwrap(), &batch);
        fabric.shutdown();
    }

    /// Synchronous calls echo arbitrary payloads unchanged through the
    /// shared-slice reply path.
    #[test]
    fn call_replies_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let fabric = small_pack_fabric();
        let a = fabric.endpoint(MachineId(0));
        let b = fabric.endpoint(MachineId(1));
        b.register(ECHO, |_src, p| Some(p.to_vec()));
        let reply = a.call(MachineId(1), ECHO, &payload).unwrap();
        prop_assert_eq!(reply.as_slice(), payload.as_slice());
        fabric.shutdown();
    }
}

/// A subslice of one packed frame stays valid after every neighboring
/// frame from the same arena chunk is dropped, the pool recycles other
/// chunks, and new traffic overwrites the recycled memory. The kept
/// slice pins its chunk; everything else churns.
#[test]
fn kept_subslice_survives_neighbor_recycling() {
    let pool = FramePool::new();
    let mut arena = PackArena::new();
    for i in 0u8..8 {
        arena.push(1, FrameKind::OneWay, &[i; 64]);
    }
    let frames = arena.seal(&pool);
    let kept: FrameBuf = frames[3].payload.slice(10..20);
    drop(frames); // all neighbors gone; `kept` still pins the chunk
    assert_eq!(pool.spares(), 0, "a live subslice must block recycling");

    // Churn the pool: many more seals, each recycled in full, so spare
    // buffers are reused and overwritten with different bytes.
    for round in 0u8..16 {
        let mut next = PackArena::new();
        for i in 0u8..8 {
            next.push(1, FrameKind::OneWay, &[round.wrapping_mul(17) ^ i; 64]);
        }
        drop(next.seal(&pool));
    }
    assert!(pool.spares() >= 1, "fully-dropped chunks recycle");
    assert_eq!(kept, &[3u8; 10][..], "kept subslice is untouched by churn");

    drop(kept);
    let spares_after = pool.spares();
    assert!(
        spares_after >= 1,
        "the pinned chunk returns to the pool on last drop"
    );
}

/// Regression (error-classification race): a call whose inherited budget
/// expires while its peer is dying must report `DeadlineExceeded` — not
/// `Unreachable` — and bump the `net.deadline.expired` counter, so
/// callers don't retry a budget-exhausted query.
#[test]
fn expired_call_during_peer_death_reports_deadline() {
    let fabric = Fabric::new(FabricConfig::with_machines(2));
    let a = fabric.endpoint(MachineId(0));
    let b = fabric.endpoint(MachineId(1));
    let served = Arc::new(AtomicU64::new(0));
    let served2 = Arc::clone(&served);
    b.register(SLOW, move |_src, _p| {
        served2.fetch_add(1, Ordering::SeqCst);
        // Never answers within the caller's budget.
        std::thread::sleep(Duration::from_millis(600));
        Some(Vec::new())
    });
    let expired_before = a.obs().counter("net.deadline.expired").get();
    let caller = {
        let a = Arc::clone(&a);
        std::thread::spawn(move || {
            // Inherited budget (200 ms) is far tighter than the call's own
            // timeout, so the budget is what lapses while m1 is dead.
            let _g = DeadlineGuard::enter(deadline_now_us() + 200_000);
            a.call_with_deadline(MachineId(1), SLOW, b"x", Duration::from_secs(5))
        })
    };
    // Let the request reach m1's worker, then kill m1 while the call is
    // waiting — the old classification order saw `is_dead` first and
    // answered `Unreachable`.
    while served.load(Ordering::SeqCst) == 0 {
        std::thread::sleep(Duration::from_millis(1));
    }
    fabric.kill(MachineId(1));
    let err = caller.join().unwrap().unwrap_err();
    assert!(
        matches!(err, NetError::DeadlineExceeded(MachineId(1), SLOW)),
        "expired budget must win over peer death: {err}"
    );
    assert_eq!(
        a.obs().counter("net.deadline.expired").get(),
        expired_before + 1,
        "the expiry is counted"
    );
    fabric.shutdown();
}
