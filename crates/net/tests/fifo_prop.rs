//! Property tests on the fabric's delivery guarantees.
//!
//! Invariants: per-(src, dst) FIFO order of packed one-way messages under
//! arbitrary send/flush interleavings (with a single handler worker), and
//! exactly-once delivery regardless of packing boundaries.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use trinity_net::{Fabric, FabricConfig, MachineId};

#[derive(Debug, Clone)]
enum SendOp {
    /// Send one message to the destination machine (1 or 2).
    Send { dst: u16 },
    /// Flush the named destination's pack buffer.
    Flush { dst: u16 },
    /// Flush everything.
    FlushAll,
}

fn op_strategy() -> impl Strategy<Value = SendOp> {
    prop_oneof![
        6 => (1u16..=2).prop_map(|dst| SendOp::Send { dst }),
        2 => (1u16..=2).prop_map(|dst| SendOp::Flush { dst }),
        1 => Just(SendOp::FlushAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn packed_delivery_is_fifo_and_exactly_once(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let fabric = Fabric::new(FabricConfig {
            workers_per_machine: 1, // handler-order FIFO requires one worker
            call_timeout: Duration::from_secs(5),
            ..FabricConfig::with_machines(3)
        });
        let seen: Arc<Mutex<Vec<Vec<u32>>>> = Arc::new(Mutex::new(vec![Vec::new(); 3]));
        for m in 1..=2u16 {
            let seen = Arc::clone(&seen);
            fabric.endpoint(MachineId(m)).register(30, move |_src, p| {
                seen.lock()[m as usize].push(u32::from_le_bytes(p.try_into().unwrap()));
                None
            });
        }
        let sender = fabric.endpoint(MachineId(0));
        let mut sent: Vec<Vec<u32>> = vec![Vec::new(); 3];
        let mut seq = 0u32;
        for op in &ops {
            match op {
                SendOp::Send { dst } => {
                    sender.send(MachineId(*dst), 30, &seq.to_le_bytes());
                    sent[*dst as usize].push(seq);
                    seq += 1;
                }
                SendOp::Flush { dst } => sender.flush_to(MachineId(*dst)),
                SendOp::FlushAll => sender.flush(),
            }
        }
        sender.flush();
        let total: usize = sent.iter().map(Vec::len).sum();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while seen.lock().iter().map(Vec::len).sum::<usize>() < total
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        let seen = seen.lock();
        for dst in 1..=2usize {
            prop_assert_eq!(
                &seen[dst],
                &sent[dst],
                "per-pair FIFO broken to machine {}", dst
            );
        }
        fabric.shutdown();
    }

    #[test]
    fn stats_count_every_frame_exactly_once(msgs in 1usize..200, chunk in 1usize..50) {
        let fabric = Fabric::new(FabricConfig::with_machines(2));
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let counter = Arc::clone(&counter);
            fabric.endpoint(MachineId(1)).register(31, move |_src, _p| {
                counter.fetch_add(1, Ordering::SeqCst);
                None
            });
        }
        let a = fabric.endpoint(MachineId(0));
        for i in 0..msgs {
            a.send(MachineId(1), 31, &(i as u64).to_le_bytes());
            if i % chunk == 0 {
                a.flush_to(MachineId(1));
            }
        }
        a.flush();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while counter.load(Ordering::SeqCst) < msgs && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        prop_assert_eq!(counter.load(Ordering::SeqCst), msgs, "lost or duplicated frames");
        let stats = a.stats().snapshot();
        prop_assert_eq!(stats.remote_frames as usize, msgs);
        prop_assert!(stats.remote_envelopes as usize <= msgs);
        prop_assert!(stats.remote_envelopes >= 1);
        fabric.shutdown();
    }
}
