//! The Trinity message passing framework.
//!
//! Trinity's network layer (paper §2, §4.2) provides "an efficient,
//! one-sided, machine-to-machine message passing infrastructure":
//!
//! * **one-sided communication** in the request-response paradigm — a
//!   machine sends a message to any other machine without any prior
//!   appointment (unlike MPI's two-sided bulk-synchronous model, which the
//!   paper calls out as ill-suited for fine-grained graph parallelism);
//! * **synchronous protocols**: [`Endpoint::call`] sends a request and
//!   blocks for the response — the paradigm TSL `protocol { Type: Syn; }`
//!   blocks compile to;
//! * **asynchronous protocols** with **transparent message packing**:
//!   [`Endpoint::send`] buffers small messages per destination and ships
//!   them in a single transfer, because "the total number of messages in
//!   the system is huge although each message may be small";
//! * **failure detection**: heartbeats plus detection-by-access (a call to
//!   a dead machine fails), feeding the recovery protocol in
//!   `trinity-core`.
//!
//! # The simulated interconnect
//!
//! The paper runs on a physical cluster; this reproduction runs every
//! machine in one process and connects them through a [`Fabric`] of
//! channels. Machines share *no* data structures — every byte crossing a
//! machine boundary goes through an [`Envelope`], is counted by
//! [`NetStats`], and is priced by the [`CostModel`], which converts
//! measured message/byte counts into *modeled network seconds* the way a
//! real NIC and switch would. Experiment harnesses report modeled cluster
//! time derived from these counters (see DESIGN.md, substitution table).
//!
//! # Example
//!
//! ```
//! use trinity_net::{Fabric, FabricConfig, MachineId};
//!
//! let fabric = Fabric::new(FabricConfig::with_machines(2));
//! let a = fabric.endpoint(MachineId(0));
//! let b = fabric.endpoint(MachineId(1));
//! // An "Echo" protocol, as in the paper's TSL example (Figure 5).
//! b.register(7, |_src, payload| Some(payload.to_vec()));
//! let reply = a.call(MachineId(1), 7, b"hello trinity").unwrap();
//! assert_eq!(reply, b"hello trinity");
//! fabric.shutdown();
//! ```

mod cost;
mod deadline;
mod endpoint;
mod envelope;
mod error;
mod fabric;
mod fault;
mod framebuf;
mod heartbeat;
mod stats;

pub use cost::CostModel;
pub use deadline::{
    current_deadline, deadline_expired, deadline_now_us, remaining_us, CancelToken, DeadlineGuard,
    NO_DEADLINE,
};
pub use endpoint::{Endpoint, Handler};
pub use envelope::{layout, Envelope, Frame, FrameKind};
pub use error::NetError;
pub use fabric::{Fabric, FabricConfig};
pub use fault::{
    ChaosState, DelayPolicy, FaultKind, FaultLog, FaultPlan, FaultRecord, NodeEvent, Partition,
    ReorderPolicy, Trigger,
};
pub use framebuf::{FrameBuf, FramePool, PackArena, MAX_RECYCLED_CAPACITY};
pub use heartbeat::{HeartbeatConfig, HeartbeatMonitor, HeartbeatStats, PeerEvent};
pub use stats::{NetStats, StatsDelta};

/// Identifier of a machine in the cluster (a Trinity slave, proxy, or
/// client endpoint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MachineId(pub u16);

impl std::fmt::Display for MachineId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// Protocol identifier. Protocols declared in TSL are assigned ids by the
/// TSL compiler; ids below [`proto::FIRST_USER`] are reserved by the
/// framework.
pub type ProtoId = u16;

/// Reserved protocol ids.
///
/// The id space is carved into ranges so system layers and user protocols
/// never collide: `0..8` fabric, `8..16` memory cloud, `16..64`
/// computation runtime, `64..` TSL-declared user protocols.
pub mod proto {
    use super::ProtoId;
    /// Liveness probe used by the heartbeat monitor.
    pub const PING: ProtoId = 0;
    /// First protocol id available to the memory cloud layer.
    pub const FIRST_MEMCLOUD: ProtoId = 8;
    /// First protocol id available to the computation runtime.
    pub const FIRST_RUNTIME: ProtoId = 16;
    /// First protocol id of the elastic-membership range: the online
    /// trunk-migration frames (begin/chunk/delta/seal/apply/commit) that
    /// `trinity-elastic` drives through the memory cloud.
    pub const FIRST_ELASTIC: ProtoId = 32;
    /// First protocol id available to TSL-declared user protocols.
    pub const FIRST_USER: ProtoId = 64;
}

/// Result alias for fabric operations.
pub type Result<T> = std::result::Result<T, NetError>;
