//! The network cost model.
//!
//! The paper's cluster has dual adapters — a 40 Gbps Mellanox IPoIB link
//! and a 1 Gbps HP Ethernet link (§7). This reproduction runs machines in
//! one process, so the fabric *measures* exactly what would cross the wire
//! (envelopes and bytes, via [`crate::NetStats`]) and this model *prices*
//! it: a fixed per-envelope latency (NIC + switch + protocol stack) plus a
//! bandwidth term. Experiment harnesses use
//! [`CostModel::transfer_seconds`] to convert measured deltas into modeled
//! network seconds, which is what "execution time" figures report for the
//! communication component.
//!
//! The evaluation's scaling shapes fall out of this model the same way
//! they fall out of real hardware: packing many small frames into one
//! envelope amortizes the latency term; adding machines splits the byte
//! volume but multiplies envelope counts; an engine that sends each
//! message k times (no hub buffering) pays k times the bandwidth term.

use crate::stats::StatsDelta;

/// Latency/bandwidth price list for one interconnect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Seconds of fixed cost per envelope (per physical transfer).
    pub envelope_latency_s: f64,
    /// Sustained bandwidth in bytes per second per machine link.
    pub bandwidth_bytes_per_s: f64,
}

impl CostModel {
    /// 1 Gbps Ethernet with ~100 µs per-transfer overhead — the commodity
    /// adapter in the paper's cluster.
    pub fn gigabit_ethernet() -> Self {
        CostModel {
            envelope_latency_s: 100e-6,
            bandwidth_bytes_per_s: 125e6,
        }
    }

    /// 40 Gbps IPoIB with ~20 µs per-transfer overhead — the paper's fast
    /// adapter.
    pub fn ipoib_40g() -> Self {
        CostModel {
            envelope_latency_s: 20e-6,
            bandwidth_bytes_per_s: 5e9,
        }
    }

    /// A free network (pure algorithm benchmarking).
    pub fn free() -> Self {
        CostModel {
            envelope_latency_s: 0.0,
            bandwidth_bytes_per_s: f64::INFINITY,
        }
    }

    /// Modeled seconds to push `envelopes` transfers totalling `bytes`
    /// through one machine's link.
    pub fn seconds(&self, envelopes: u64, bytes: u64) -> f64 {
        envelopes as f64 * self.envelope_latency_s + bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Modeled seconds for a measured stats delta (remote traffic only;
    /// machine-local frames are free).
    pub fn transfer_seconds(&self, delta: &StatsDelta) -> f64 {
        self.seconds(delta.remote_envelopes, delta.remote_bytes)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::gigabit_ethernet()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packing_amortizes_latency() {
        let m = CostModel::gigabit_ethernet();
        // 10_000 messages of 100 bytes: unpacked pays 10_000 latencies,
        // packed into 10 envelopes pays 10.
        let unpacked = m.seconds(10_000, 1_160_000);
        let packed = m.seconds(10, 1_160_240);
        assert!(
            unpacked > 10.0 * packed,
            "packing should dominate: {unpacked} vs {packed}"
        );
    }

    #[test]
    fn free_network_costs_nothing() {
        let m = CostModel::free();
        assert_eq!(m.seconds(1_000_000, u64::MAX), 0.0);
    }

    #[test]
    fn ipoib_beats_ethernet() {
        let d = StatsDelta {
            remote_envelopes: 100,
            remote_bytes: 1 << 30,
            ..Default::default()
        };
        assert!(
            CostModel::ipoib_40g().transfer_seconds(&d)
                < CostModel::gigabit_ethernet().transfer_seconds(&d)
        );
    }
}
