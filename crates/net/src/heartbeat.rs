//! Proactive failure detection.
//!
//! "Trinity uses heartbeat messages to proactively detect machine
//! failures" (paper §6.2). A [`HeartbeatMonitor`] runs on one machine
//! (typically the leader) and periodically pings a set of peers over the
//! reserved [`crate::proto::PING`] protocol. A peer that misses
//! `miss_threshold` consecutive probes is reported dead exactly once via
//! the failure callback; a peer that answers again after being reported is
//! reported recovered.
//!
//! Detection-by-access is the complementary path: any [`crate::Endpoint::call`]
//! to a dead machine fails immediately, and the caller informs the leader
//! (implemented in `trinity-core`'s recovery module).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trinity_obs::{Counter, Gauge};

use crate::endpoint::Endpoint;
use crate::{proto, MachineId};

/// Heartbeat cadence parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Pause between probe rounds.
    pub interval: Duration,
    /// Consecutive missed probes before a peer is declared dead.
    pub miss_threshold: u32,
    /// Fractional jitter on the probe interval: each round sleeps a
    /// uniform duration in `[interval·(1−jitter), interval·(1+jitter)]`.
    /// Without it every monitor in the cluster probes in lockstep and the
    /// fabric sees a thundering herd of PINGs at each interval boundary.
    pub jitter: f64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig {
            interval: Duration::from_millis(50),
            miss_threshold: 2,
            jitter: 0.2,
        }
    }
}

impl HeartbeatConfig {
    /// The sleep before the next probe round: `interval` desynchronized
    /// by the configured jitter, driven by the caller's PRNG state.
    fn jittered_interval(&self, rng: &mut u64) -> Duration {
        let j = self.jitter.clamp(0.0, 1.0);
        if j == 0.0 {
            return self.interval;
        }
        // xorshift64*: cheap, seedable, no external dependency.
        *rng ^= *rng << 13;
        *rng ^= *rng >> 7;
        *rng ^= *rng << 17;
        let unit = (rng.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        let factor = 1.0 - j + 2.0 * j * unit;
        self.interval.mul_f64(factor)
    }
}

/// Events reported by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// The peer stopped answering probes.
    Failed(MachineId),
    /// A previously failed peer answers again.
    Recovered(MachineId),
}

/// Health counters published by a [`HeartbeatMonitor`] — readable directly
/// off the monitor and surfaced through the monitoring machine's metrics
/// scope (`hb.*` names) so exporters pick them up with everything else.
#[derive(Debug, Clone)]
pub struct HeartbeatStats {
    probes: Arc<Counter>,
    misses: Arc<Counter>,
    failed: Arc<Counter>,
    recovered: Arc<Counter>,
    consecutive: Arc<Gauge>,
}

impl HeartbeatStats {
    fn new(endpoint: &Endpoint) -> Self {
        let obs = endpoint.obs();
        HeartbeatStats {
            probes: obs.counter("hb.probes"),
            misses: obs.counter("hb.misses"),
            failed: obs.counter("hb.failed"),
            recovered: obs.counter("hb.recovered"),
            consecutive: obs.gauge("hb.consecutive_misses"),
        }
    }

    /// Total liveness probes sent.
    pub fn probes_sent(&self) -> u64 {
        self.probes.get()
    }

    /// Total probes that went unanswered.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Times a peer crossed the miss threshold and was declared dead.
    pub fn failed_transitions(&self) -> u64 {
        self.failed.get()
    }

    /// Times a previously dead peer answered again.
    pub fn recovered_transitions(&self) -> u64 {
        self.recovered.get()
    }

    /// Worst current miss streak across monitored peers (a level, not a
    /// total: it returns to zero when the peer answers).
    pub fn consecutive_misses(&self) -> i64 {
        self.consecutive.get()
    }
}

/// Background prober for a set of peers.
pub struct HeartbeatMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
    stats: HeartbeatStats,
}

impl std::fmt::Debug for HeartbeatMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatMonitor").finish()
    }
}

impl HeartbeatMonitor {
    /// Start probing `peers` from `endpoint`, invoking `on_event` for every
    /// failure/recovery transition.
    pub fn spawn<F>(
        endpoint: Arc<Endpoint>,
        peers: Vec<MachineId>,
        cfg: HeartbeatConfig,
        on_event: F,
    ) -> Self
    where
        F: Fn(PeerEvent) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let stats = HeartbeatStats::new(&endpoint);
        let stats2 = stats.clone();
        let handle = std::thread::Builder::new()
            .name("trinity-heartbeat".into())
            .spawn(move || {
                let mut misses: HashMap<MachineId, u32> = HashMap::new();
                let mut reported: HashMap<MachineId, bool> = HashMap::new();
                // Seed per monitor so distinct machines desynchronize.
                let mut rng: u64 = 0x9E37_79B9_7F4A_7C15 ^ ((endpoint.machine().0 as u64) << 32)
                    | (&stop2 as *const _ as u64);
                while !stop2.load(Ordering::Relaxed) {
                    for &peer in &peers {
                        if stop2.load(Ordering::Relaxed) {
                            return;
                        }
                        stats2.probes.inc();
                        let alive = endpoint.call(peer, proto::PING, &[]).is_ok();
                        let miss = misses.entry(peer).or_insert(0);
                        let down = reported.entry(peer).or_insert(false);
                        if alive {
                            *miss = 0;
                            if *down {
                                *down = false;
                                stats2.recovered.inc();
                                on_event(PeerEvent::Recovered(peer));
                            }
                        } else {
                            *miss += 1;
                            stats2.misses.inc();
                            if *miss >= cfg.miss_threshold && !*down {
                                *down = true;
                                stats2.failed.inc();
                                on_event(PeerEvent::Failed(peer));
                            }
                        }
                        stats2
                            .consecutive
                            .set(misses.values().copied().max().unwrap_or(0) as i64);
                    }
                    std::thread::park_timeout(cfg.jittered_interval(&mut rng));
                }
            })
            .expect("spawn heartbeat monitor");
        HeartbeatMonitor {
            stop,
            handle: Some(handle),
            stats,
        }
    }

    /// Health counters for this monitor (shared with the machine's metrics
    /// scope under `hb.*`).
    pub fn stats(&self) -> &HeartbeatStats {
        &self.stats
    }

    /// Stop the monitor and wait for its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, FabricConfig};
    use parking_lot::Mutex;

    #[test]
    fn jittered_interval_stays_in_band_and_varies() {
        let cfg = HeartbeatConfig {
            interval: Duration::from_millis(100),
            jitter: 0.25,
            ..HeartbeatConfig::default()
        };
        let mut rng = 42u64;
        let samples: Vec<Duration> = (0..200).map(|_| cfg.jittered_interval(&mut rng)).collect();
        for s in &samples {
            assert!(*s >= Duration::from_millis(75), "below band: {s:?}");
            assert!(*s <= Duration::from_millis(125), "above band: {s:?}");
        }
        let distinct: std::collections::HashSet<Duration> = samples.iter().copied().collect();
        assert!(distinct.len() > 100, "jitter must actually vary the sleep");
        // Zero jitter degrades to the fixed interval.
        let fixed = HeartbeatConfig { jitter: 0.0, ..cfg };
        assert_eq!(fixed.jittered_interval(&mut rng), cfg.interval);
    }

    #[test]
    fn detects_failure_and_recovery() {
        let fabric = Fabric::new(FabricConfig {
            call_timeout: Duration::from_millis(100),
            ..FabricConfig::with_machines(3)
        });
        let events = Arc::new(Mutex::new(Vec::new()));
        let monitor = {
            let events = Arc::clone(&events);
            HeartbeatMonitor::spawn(
                fabric.endpoint(MachineId(0)),
                vec![MachineId(1), MachineId(2)],
                HeartbeatConfig {
                    interval: Duration::from_millis(10),
                    miss_threshold: 2,
                    jitter: 0.2,
                },
                move |e| events.lock().push(e),
            )
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(
            events.lock().is_empty(),
            "healthy peers must not be reported"
        );
        fabric.kill(MachineId(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.lock().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            events.lock().first(),
            Some(&PeerEvent::Failed(MachineId(2)))
        );
        fabric.revive(MachineId(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.lock().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(
            events.lock().get(1),
            Some(&PeerEvent::Recovered(MachineId(2)))
        );
        let stats = monitor.stats().clone();
        monitor.stop();
        // Exactly one Failed and one Recovered: transitions, not levels.
        assert_eq!(events.lock().len(), 2);
        // The same story told by the counters, without a callback.
        assert!(stats.probes_sent() >= 4, "two peers, several rounds");
        assert!(
            stats.misses() >= 2,
            "the dead peer missed at least the threshold"
        );
        assert_eq!(stats.failed_transitions(), 1);
        assert_eq!(stats.recovered_transitions(), 1);
        assert_eq!(
            stats.consecutive_misses(),
            0,
            "all peers healthy at the end"
        );
        // And the counters are surfaced through the machine's registry
        // scope, so exporters see them as hb.* without touching the
        // monitor.
        let snap = fabric.obs().scope(0).snapshot();
        assert_eq!(snap.counters["hb.failed"], 1);
        assert_eq!(snap.counters["hb.probes"], stats.probes_sent());
        fabric.shutdown();
    }
}
