//! Proactive failure detection.
//!
//! "Trinity uses heartbeat messages to proactively detect machine
//! failures" (paper §6.2). A [`HeartbeatMonitor`] runs on one machine
//! (typically the leader) and periodically pings a set of peers over the
//! reserved [`crate::proto::PING`] protocol. A peer that misses
//! `miss_threshold` consecutive probes is reported dead exactly once via
//! the failure callback; a peer that answers again after being reported is
//! reported recovered.
//!
//! Detection-by-access is the complementary path: any [`crate::Endpoint::call`]
//! to a dead machine fails immediately, and the caller informs the leader
//! (implemented in `trinity-core`'s recovery module).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::endpoint::Endpoint;
use crate::{proto, MachineId};

/// Heartbeat cadence parameters.
#[derive(Debug, Clone, Copy)]
pub struct HeartbeatConfig {
    /// Pause between probe rounds.
    pub interval: Duration,
    /// Consecutive missed probes before a peer is declared dead.
    pub miss_threshold: u32,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig { interval: Duration::from_millis(50), miss_threshold: 2 }
    }
}

/// Events reported by the monitor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PeerEvent {
    /// The peer stopped answering probes.
    Failed(MachineId),
    /// A previously failed peer answers again.
    Recovered(MachineId),
}

/// Background prober for a set of peers.
pub struct HeartbeatMonitor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for HeartbeatMonitor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeartbeatMonitor").finish()
    }
}

impl HeartbeatMonitor {
    /// Start probing `peers` from `endpoint`, invoking `on_event` for every
    /// failure/recovery transition.
    pub fn spawn<F>(endpoint: Arc<Endpoint>, peers: Vec<MachineId>, cfg: HeartbeatConfig, on_event: F) -> Self
    where
        F: Fn(PeerEvent) + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("trinity-heartbeat".into())
            .spawn(move || {
                let mut misses: HashMap<MachineId, u32> = HashMap::new();
                let mut reported: HashMap<MachineId, bool> = HashMap::new();
                while !stop2.load(Ordering::Relaxed) {
                    for &peer in &peers {
                        if stop2.load(Ordering::Relaxed) {
                            return;
                        }
                        let alive = endpoint.call(peer, proto::PING, &[]).is_ok();
                        let miss = misses.entry(peer).or_insert(0);
                        let down = reported.entry(peer).or_insert(false);
                        if alive {
                            *miss = 0;
                            if *down {
                                *down = false;
                                on_event(PeerEvent::Recovered(peer));
                            }
                        } else {
                            *miss += 1;
                            if *miss >= cfg.miss_threshold && !*down {
                                *down = true;
                                on_event(PeerEvent::Failed(peer));
                            }
                        }
                    }
                    std::thread::park_timeout(cfg.interval);
                }
            })
            .expect("spawn heartbeat monitor");
        HeartbeatMonitor { stop, handle: Some(handle) }
    }

    /// Stop the monitor and wait for its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

impl Drop for HeartbeatMonitor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fabric, FabricConfig};
    use parking_lot::Mutex;

    #[test]
    fn detects_failure_and_recovery() {
        let fabric = Fabric::new(FabricConfig {
            call_timeout: Duration::from_millis(100),
            ..FabricConfig::with_machines(3)
        });
        let events = Arc::new(Mutex::new(Vec::new()));
        let monitor = {
            let events = Arc::clone(&events);
            HeartbeatMonitor::spawn(
                fabric.endpoint(MachineId(0)),
                vec![MachineId(1), MachineId(2)],
                HeartbeatConfig { interval: Duration::from_millis(10), miss_threshold: 2 },
                move |e| events.lock().push(e),
            )
        };
        std::thread::sleep(Duration::from_millis(100));
        assert!(events.lock().is_empty(), "healthy peers must not be reported");
        fabric.kill(MachineId(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.lock().is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(events.lock().first(), Some(&PeerEvent::Failed(MachineId(2))));
        fabric.revive(MachineId(2));
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while events.lock().len() < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(events.lock().get(1), Some(&PeerEvent::Recovered(MachineId(2))));
        monitor.stop();
        fabric.shutdown();
        // Exactly one Failed and one Recovered: transitions, not levels.
        assert_eq!(events.lock().len(), 2);
    }
}
