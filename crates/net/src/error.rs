use crate::{MachineId, ProtoId};
use std::fmt;

/// Errors surfaced by the message passing framework.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// The destination machine is known dead (or died before responding).
    /// This is the paper's detection-by-access signal: "a machine A that
    /// attempts to access a data item on machine B which is down can
    /// detect the failure of machine B" (§6.2).
    Unreachable(MachineId),
    /// No response arrived within the call timeout.
    Timeout(MachineId, ProtoId),
    /// The destination has no handler registered for the protocol.
    NoHandler(ProtoId),
    /// The query's deadline budget was exhausted before (or while) the
    /// call ran: the callee refuses work the client has given up on.
    /// Unlike [`NetError::Timeout`] this is not a liveness signal — the
    /// peer is healthy — so callers must not trigger failure recovery.
    DeadlineExceeded(MachineId, ProtoId),
    /// The fabric has been shut down.
    Closed,
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Unreachable(m) => write!(f, "machine {m} is unreachable"),
            NetError::Timeout(m, p) => write!(f, "call to {m} (protocol {p}) timed out"),
            NetError::NoHandler(p) => write!(f, "no handler registered for protocol {p}"),
            NetError::DeadlineExceeded(m, p) => {
                write!(f, "deadline exceeded calling {m} (protocol {p})")
            }
            NetError::Closed => write!(f, "fabric is shut down"),
        }
    }
}

impl std::error::Error for NetError {}
