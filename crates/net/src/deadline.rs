//! Deadline budgets and cooperative cancellation.
//!
//! An online engine must not burn CPU on a query the client has given up
//! on. Every query entering the serving tier is stamped with an *absolute
//! deadline* (microseconds on a process-wide monotonic clock); the
//! deadline rides in every [`crate::Envelope`] alongside the trace id, is
//! tightened by the modeled transfer time of the [`crate::CostModel`] as
//! it crosses machines, and is re-installed on whichever worker thread
//! runs the remote handler — the exact mechanism `TraceGuard` uses for
//! trace propagation. Handlers and long scan loops poll
//! [`deadline_expired`] and return partial results instead of completing
//! doomed work.
//!
//! Cancellation is the client-initiated twin: a [`CancelToken`] is a
//! shared flag the serving runtime hands to a query, checked at the same
//! hop and scan boundaries as the deadline.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Sentinel for "no deadline": a budget that never expires.
pub const NO_DEADLINE: u64 = u64::MAX;

/// Microseconds since the process-wide monotonic epoch. All deadlines are
/// absolute values on this clock, so they can cross (simulated) machine
/// boundaries without clock-skew adjustment.
pub fn deadline_now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

thread_local! {
    static CURRENT_DEADLINE: Cell<u64> = const { Cell::new(NO_DEADLINE) };
}

/// The deadline installed on this thread ([`NO_DEADLINE`] when none).
pub fn current_deadline() -> u64 {
    CURRENT_DEADLINE.with(|d| d.get())
}

/// Remaining budget of the thread's deadline, in microseconds.
/// `u64::MAX` when no deadline is set; `0` when already expired.
pub fn remaining_us() -> u64 {
    let d = current_deadline();
    if d == NO_DEADLINE {
        u64::MAX
    } else {
        d.saturating_sub(deadline_now_us())
    }
}

/// True when the thread's deadline has passed.
pub fn deadline_expired() -> bool {
    let d = current_deadline();
    d != NO_DEADLINE && deadline_now_us() >= d
}

/// RAII guard installing an absolute deadline on the current thread,
/// restoring the previous one on drop. Mirrors `trinity_obs::TraceGuard`:
/// the fabric enters it around handler dispatch so a budget follows a
/// query through nested `call`/`send` fan-out.
#[must_use = "the deadline is uninstalled when the guard drops"]
#[derive(Debug)]
pub struct DeadlineGuard {
    prev: u64,
}

impl DeadlineGuard {
    /// Install `abs_us` (absolute, on the [`deadline_now_us`] clock) as
    /// the thread's deadline.
    pub fn enter(abs_us: u64) -> Self {
        let prev = CURRENT_DEADLINE.with(|d| d.replace(abs_us));
        DeadlineGuard { prev }
    }

    /// Install a deadline `budget` from now (saturating).
    pub fn enter_for(budget: std::time::Duration) -> Self {
        Self::enter(deadline_now_us().saturating_add(budget.as_micros() as u64))
    }
}

impl Drop for DeadlineGuard {
    fn drop(&mut self) {
        CURRENT_DEADLINE.with(|d| d.set(self.prev));
    }
}

/// Cooperative cancellation flag shared between a query's submitter and
/// the machines executing it. Cloning is cheap (one `Arc`).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, uncancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn guard_installs_and_restores() {
        assert_eq!(current_deadline(), NO_DEADLINE);
        assert!(!deadline_expired());
        {
            let _g = DeadlineGuard::enter(deadline_now_us() + 1_000_000);
            assert_ne!(current_deadline(), NO_DEADLINE);
            assert!(!deadline_expired());
            assert!(remaining_us() <= 1_000_000);
            {
                let _inner = DeadlineGuard::enter(1); // long past
                assert!(deadline_expired());
                assert_eq!(remaining_us(), 0);
            }
            assert!(!deadline_expired(), "inner guard restored outer deadline");
        }
        assert_eq!(current_deadline(), NO_DEADLINE);
    }

    #[test]
    fn enter_for_expires_after_budget() {
        let _g = DeadlineGuard::enter_for(Duration::from_millis(5));
        assert!(!deadline_expired());
        std::thread::sleep(Duration::from_millis(10));
        assert!(deadline_expired());
    }

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let t2 = t.clone();
        assert!(!t2.is_cancelled());
        t.cancel();
        assert!(t2.is_cancelled());
    }
}
