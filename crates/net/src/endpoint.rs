//! A machine's attachment to the fabric.
//!
//! Each Trinity component (slave, proxy, or client) owns one [`Endpoint`].
//! The endpoint exposes the two communication paradigms the paper's TSL
//! protocols compile to:
//!
//! * [`Endpoint::call`] — synchronous one-sided request/response;
//! * [`Endpoint::send`] — asynchronous one-way messages, transparently
//!   packed per destination and shipped in bulk.
//!
//! Two thread roles service an endpoint. A *receiver* thread drains the
//! machine's inbox: response frames are completed directly (so a response
//! can never be starved by busy handlers), while request and one-way
//! frames are queued to a pool of *worker* threads that run the registered
//! protocol handlers. Handlers are allowed to issue further `call`s and
//! `send`s — the recursive asynchronous fan-out of the paper's online
//! traversal queries (§5.1) runs exactly this way.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};

use crate::envelope::{Envelope, Frame, FrameKind};
use crate::error::NetError;
use crate::fabric::{Item, Router};
use crate::stats::NetStats;
use crate::{proto, MachineId, ProtoId, Result};

/// A protocol handler: receives the source machine and the request
/// payload; returns the response payload (ignored for one-way frames).
pub type Handler = Arc<dyn Fn(MachineId, &[u8]) -> Option<Vec<u8>> + Send + Sync>;

pub(crate) enum Work {
    Frame(MachineId, Frame),
    Stop,
}

#[derive(Default)]
struct PackBuf {
    frames: Vec<Frame>,
    bytes: usize,
}

/// One machine's attachment to the [`crate::Fabric`].
pub struct Endpoint {
    machine: MachineId,
    router: Arc<Router>,
    handlers: RwLock<HashMap<ProtoId, Handler>>,
    pending: Mutex<HashMap<u64, Sender<Result<Vec<u8>>>>>,
    corr: AtomicU64,
    pack_bufs: Vec<Mutex<PackBuf>>,
    pack_threshold: usize,
    call_timeout: Duration,
    pub(crate) work_tx: Sender<Work>,
    stats: NetStats,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("machine", &self.machine).finish()
    }
}

impl Endpoint {
    pub(crate) fn new(
        machine: MachineId,
        router: Arc<Router>,
        machines: usize,
        pack_threshold: usize,
        call_timeout: Duration,
        work_tx: Sender<Work>,
    ) -> Arc<Self> {
        let ep = Arc::new(Endpoint {
            machine,
            router,
            handlers: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            corr: AtomicU64::new(1),
            pack_bufs: (0..machines).map(|_| Mutex::new(PackBuf::default())).collect(),
            pack_threshold,
            call_timeout,
            work_tx,
            stats: NetStats::default(),
        });
        // Liveness probe for the heartbeat monitor.
        ep.register(proto::PING, |_src, _p| Some(Vec::new()));
        ep
    }

    /// This endpoint's machine id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of machines on the fabric.
    pub fn machine_count(&self) -> usize {
        self.pack_bufs.len()
    }

    /// Register (or replace) the handler for a protocol. The TSL compiler
    /// generates one registration per `protocol` block; the handler body is
    /// the user's algorithm logic, written "as if implementing a local
    /// method" (paper §4.2).
    pub fn register<F>(&self, proto: ProtoId, handler: F)
    where
        F: Fn(MachineId, &[u8]) -> Option<Vec<u8>> + Send + Sync + 'static,
    {
        self.handlers.write().insert(proto, Arc::new(handler));
    }

    /// Synchronous one-sided call: send `payload` to `dst` and block for
    /// the response.
    pub fn call(&self, dst: MachineId, proto: ProtoId, payload: &[u8]) -> Result<Vec<u8>> {
        if self.router.is_closed() {
            return Err(NetError::Closed);
        }
        if self.router.is_dead(dst) {
            return Err(NetError::Unreachable(dst));
        }
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(corr, tx);
        // Preserve per-destination FIFO with previously buffered one-ways.
        self.flush_to(dst);
        let env = Envelope {
            src: self.machine,
            dst,
            frames: vec![Frame { proto, kind: FrameKind::Request(corr), payload: payload.to_vec() }],
        };
        if let Err(e) = self.transmit(env) {
            self.pending.lock().remove(&corr);
            return Err(e);
        }
        match rx.recv_timeout(self.call_timeout) {
            Ok(result) => result,
            Err(_) => {
                self.pending.lock().remove(&corr);
                if self.router.is_dead(dst) {
                    Err(NetError::Unreachable(dst))
                } else {
                    Err(NetError::Timeout(dst, proto))
                }
            }
        }
    }

    /// Asynchronous one-way message. Messages to remote machines are
    /// buffered per destination and shipped when the buffer exceeds the
    /// packing threshold (or on [`Endpoint::flush`]); machine-local
    /// messages are delivered immediately.
    pub fn send(&self, dst: MachineId, proto: ProtoId, payload: &[u8]) {
        let frame = Frame { proto, kind: FrameKind::OneWay, payload: payload.to_vec() };
        if dst == self.machine {
            let _ = self.transmit(Envelope { src: self.machine, dst, frames: vec![frame] });
            return;
        }
        let flush = {
            let mut buf = self.pack_bufs[dst.0 as usize].lock();
            buf.bytes += frame.wire_bytes() as usize;
            buf.frames.push(frame);
            buf.bytes >= self.pack_threshold
        };
        if flush {
            self.flush_to(dst);
        }
    }

    /// One-way message to every other machine (flushed immediately).
    pub fn broadcast(&self, proto: ProtoId, payload: &[u8]) {
        for m in 0..self.machine_count() as u16 {
            let dst = MachineId(m);
            if dst != self.machine {
                self.send(dst, proto, payload);
                self.flush_to(dst);
            }
        }
    }

    /// Ship any buffered one-way frames bound for `dst`.
    pub fn flush_to(&self, dst: MachineId) {
        if dst == self.machine {
            return;
        }
        let mut buf = self.pack_bufs[dst.0 as usize].lock();
        if buf.frames.is_empty() {
            return;
        }
        let frames = std::mem::take(&mut buf.frames);
        buf.bytes = 0;
        // Transmit while holding the buffer lock so envelopes from this
        // endpoint to `dst` enter the inbox in flush order.
        let _ = self.transmit(Envelope { src: self.machine, dst, frames });
    }

    /// Ship all buffered one-way frames.
    pub fn flush(&self) {
        for m in 0..self.machine_count() as u16 {
            self.flush_to(MachineId(m));
        }
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn transmit(&self, env: Envelope) -> Result<()> {
        if self.router.is_closed() {
            return Err(NetError::Closed);
        }
        let frames = env.frames.len() as u64;
        if self.router.is_dead(env.dst) {
            self.stats.record_dropped(frames);
            return Err(NetError::Unreachable(env.dst));
        }
        if env.dst == env.src {
            self.stats.record_local(frames);
        } else {
            self.stats.record_remote(frames, env.wire_bytes());
        }
        self.router.deliver(env)
    }

    /// Receiver-thread entry: route one inbound envelope.
    pub(crate) fn route_envelope(&self, env: Envelope) {
        if self.router.is_dead(self.machine) {
            return; // a dead machine processes nothing
        }
        for frame in env.frames {
            match frame.kind {
                FrameKind::Response(corr) => {
                    if let Some(tx) = self.pending.lock().remove(&corr) {
                        let _ = tx.send(Ok(frame.payload));
                    }
                }
                FrameKind::NoHandler(corr) => {
                    if let Some(tx) = self.pending.lock().remove(&corr) {
                        let _ = tx.send(Err(NetError::NoHandler(frame.proto)));
                    }
                }
                FrameKind::Request(_) | FrameKind::OneWay => {
                    let _ = self.work_tx.send(Work::Frame(env.src, frame));
                }
            }
        }
    }

    /// Worker-thread entry: dispatch one request or one-way frame.
    pub(crate) fn dispatch(&self, src: MachineId, frame: Frame) {
        if self.router.is_dead(self.machine) {
            return;
        }
        let handler = self.handlers.read().get(&frame.proto).cloned();
        match frame.kind {
            FrameKind::OneWay => {
                if let Some(h) = handler {
                    h(src, &frame.payload);
                } else {
                    self.stats.record_dropped(1);
                }
            }
            FrameKind::Request(corr) => {
                let reply = match handler {
                    Some(h) => Frame {
                        proto: frame.proto,
                        kind: FrameKind::Response(corr),
                        payload: h(src, &frame.payload).unwrap_or_default(),
                    },
                    None => Frame { proto: frame.proto, kind: FrameKind::NoHandler(corr), payload: Vec::new() },
                };
                let _ = self.transmit(Envelope { src: self.machine, dst: src, frames: vec![reply] });
            }
            FrameKind::Response(_) | FrameKind::NoHandler(_) => unreachable!("responses are routed by the receiver"),
        }
    }

    /// Fail any calls still pending when the fabric shuts down.
    pub(crate) fn fail_pending(&self) {
        for (_, tx) in self.pending.lock().drain() {
            let _ = tx.send(Err(NetError::Closed));
        }
    }
}

pub(crate) fn receiver_loop(ep: Arc<Endpoint>, rx: crossbeam::channel::Receiver<Item>, workers: usize) {
    while let Ok(item) = rx.recv() {
        match item {
            Item::Env(env) => ep.route_envelope(env),
            Item::Stop => break,
        }
    }
    for _ in 0..workers {
        let _ = ep.work_tx.send(Work::Stop);
    }
    ep.fail_pending();
}

pub(crate) fn worker_loop(ep: Arc<Endpoint>, rx: crossbeam::channel::Receiver<Work>) {
    while let Ok(work) = rx.recv() {
        match work {
            Work::Frame(src, frame) => ep.dispatch(src, frame),
            Work::Stop => break,
        }
    }
}
