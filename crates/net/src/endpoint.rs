//! A machine's attachment to the fabric.
//!
//! Each Trinity component (slave, proxy, or client) owns one [`Endpoint`].
//! The endpoint exposes the two communication paradigms the paper's TSL
//! protocols compile to:
//!
//! * [`Endpoint::call`] — synchronous one-sided request/response;
//! * [`Endpoint::send`] — asynchronous one-way messages, transparently
//!   packed per destination and shipped in bulk.
//!
//! Two thread roles service an endpoint. A *receiver* thread drains the
//! machine's inbox: response frames are completed directly (so a response
//! can never be starved by busy handlers), while request and one-way
//! frames are queued to a pool of *worker* threads that run the registered
//! protocol handlers. Handlers are allowed to issue further `call`s and
//! `send`s — the recursive asynchronous fan-out of the paper's online
//! traversal queries (§5.1) runs exactly this way.
//!
//! # The one-copy contract
//!
//! Every payload byte an endpoint ships is copied exactly once: into the
//! per-destination [`PackArena`] (or a pooled request buffer). From there
//! it travels as a [`FrameBuf`] shared slice — through the fault injector,
//! the receiver, the pending-call table, and into caches — without ever
//! being copied again. `net.frame_copy_bytes` counts the arena copies and
//! `net.frame_payload_bytes` counts the bytes that entered frames, so
//! their ratio is the contract's live audit (≤ 1.0; response payloads ship
//! zero-copy and pull it below 1). See DESIGN.md §14.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Mutex, RwLock};
use trinity_obs::{current_trace, Counter, Histogram, MachineScope, TraceGuard, NO_TRACE};

use crate::cost::CostModel;
use crate::deadline::{current_deadline, deadline_now_us, DeadlineGuard, NO_DEADLINE};
use crate::envelope::{layout, Envelope, Frame, FrameKind};
use crate::error::NetError;
use crate::fabric::{Item, Router};
use crate::fault::ChaosState;
use crate::framebuf::{FrameBuf, FramePool, PackArena};
use crate::stats::NetStats;
use crate::{proto, MachineId, ProtoId, Result};

/// A protocol handler: receives the source machine and the request
/// payload; returns the response payload (ignored for one-way frames).
/// The payload slice borrows the received frame directly — no copy sits
/// between the wire and the handler.
pub type Handler = Arc<dyn Fn(MachineId, &[u8]) -> Option<Vec<u8>> + Send + Sync>;

pub(crate) enum Work {
    /// Source machine, trace id and deadline carried by the envelope,
    /// frame.
    Frame(MachineId, u64, u64, Frame),
    Stop,
}

struct PackBuf {
    arena: PackArena,
    /// Wire bytes buffered (payloads plus frame headers) — the packing
    /// threshold is a transfer-size bound, so it counts header overhead.
    wire_bytes: usize,
    /// Trace of the first frame buffered since the last flush: a packed
    /// envelope carries one trace id, and mixed-trace packs are attributed
    /// to the query that opened the pack.
    trace: u64,
    /// Tightest deadline among the buffered frames: a packed envelope
    /// carries one deadline, and under-reporting a budget is safe
    /// (handlers merely re-check a little early) while over-reporting
    /// would let expired work through.
    deadline: u64,
}

impl Default for PackBuf {
    fn default() -> Self {
        PackBuf {
            arena: PackArena::new(),
            wire_bytes: 0,
            trace: NO_TRACE,
            deadline: crate::NO_DEADLINE,
        }
    }
}

/// Cached metric handles for the fabric hot path — resolved once at
/// endpoint construction so recording never performs a name lookup.
struct NetMetrics {
    env_sent: Arc<Counter>,
    frames_sent: Arc<Counter>,
    bytes_sent: Arc<Counter>,
    env_recv: Arc<Counter>,
    frames_recv: Arc<Counter>,
    bytes_recv: Arc<Counter>,
    frames_local: Arc<Counter>,
    frames_delivered: Arc<Counter>,
    frames_dropped: Arc<Counter>,
    frames_refused: Arc<Counter>,
    /// Requests refused (or calls aborted) because the query's deadline
    /// budget was exhausted.
    deadline_expired: Arc<Counter>,
    /// Modeled network microseconds charged by the cost model for this
    /// machine's outbound transfers.
    modeled_tx_us: Arc<Counter>,
    /// Payload bytes memcpy'd on this machine's send paths — a *true* copy
    /// count: every path (`call`, `send`, `send_batch`, `send_slices`)
    /// records its arena copy here and nothing else counts. Dividing by
    /// [`Self::frame_payload_bytes`] gives copies-per-payload-byte, which
    /// the zero-copy wire path holds at ≤ 1.0.
    frame_copy_bytes: Arc<Counter>,
    /// Payload bytes that entered outbound frames (local and remote) —
    /// the denominator of the copy ratio.
    frame_payload_bytes: Arc<Counter>,
    /// Wire bytes per outbound remote envelope.
    env_bytes: Arc<Histogram>,
    /// Frames per outbound remote envelope (the packing factor, as a
    /// distribution rather than an average).
    env_frames: Arc<Histogram>,
    /// Synchronous call round-trip latency, microseconds.
    call_us: Arc<Histogram>,
    /// Handler execution time, microseconds.
    handler_us: Arc<Histogram>,
}

impl NetMetrics {
    fn new(obs: &MachineScope) -> Self {
        NetMetrics {
            env_sent: obs.counter("net.env.sent"),
            frames_sent: obs.counter("net.frames.sent"),
            bytes_sent: obs.counter("net.bytes.sent"),
            env_recv: obs.counter("net.env.recv"),
            frames_recv: obs.counter("net.frames.recv"),
            bytes_recv: obs.counter("net.bytes.recv"),
            frames_local: obs.counter("net.frames.local"),
            frames_delivered: obs.counter("net.frames.delivered"),
            frames_dropped: obs.counter("net.frames.dropped"),
            frames_refused: obs.counter("net.frames.refused"),
            deadline_expired: obs.counter("net.deadline.expired"),
            modeled_tx_us: obs.counter("net.modeled_tx_us"),
            frame_copy_bytes: obs.counter("net.frame_copy_bytes"),
            frame_payload_bytes: obs.counter("net.frame_payload_bytes"),
            env_bytes: obs.histogram("net.env.bytes"),
            env_frames: obs.histogram("net.env.frames"),
            call_us: obs.histogram("net.call.us"),
            handler_us: obs.histogram("net.handler.us"),
        }
    }
}

/// One machine's attachment to the [`crate::Fabric`].
pub struct Endpoint {
    machine: MachineId,
    router: Arc<Router>,
    handlers: RwLock<HashMap<ProtoId, Handler>>,
    pending: Mutex<HashMap<u64, Sender<Result<FrameBuf>>>>,
    corr: AtomicU64,
    pack_bufs: Vec<Mutex<PackBuf>>,
    pack_threshold: usize,
    call_timeout: Duration,
    pub(crate) work_tx: Sender<Work>,
    stats: NetStats,
    cost: CostModel,
    obs: MachineScope,
    metrics: NetMetrics,
    /// Arena recycler shared by every send path on this endpoint.
    pool: FramePool,
    /// Fault injector shared with the fabric; `None` outside chaos runs.
    chaos: Option<Arc<ChaosState>>,
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("machine", &self.machine)
            .finish()
    }
}

impl Endpoint {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        machine: MachineId,
        router: Arc<Router>,
        machines: usize,
        pack_threshold: usize,
        call_timeout: Duration,
        work_tx: Sender<Work>,
        cost: CostModel,
        obs: MachineScope,
        chaos: Option<Arc<ChaosState>>,
    ) -> Arc<Self> {
        let metrics = NetMetrics::new(&obs);
        let ep = Arc::new(Endpoint {
            machine,
            router,
            handlers: RwLock::new(HashMap::new()),
            pending: Mutex::new(HashMap::new()),
            corr: AtomicU64::new(1),
            pack_bufs: (0..machines)
                .map(|_| Mutex::new(PackBuf::default()))
                .collect(),
            pack_threshold,
            call_timeout,
            work_tx,
            stats: NetStats::default(),
            cost,
            obs,
            metrics,
            pool: FramePool::new(),
            chaos,
        });
        // Liveness probe for the heartbeat monitor.
        ep.register(proto::PING, |_src, _p| Some(Vec::new()));
        ep
    }

    /// This endpoint's machine id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// Number of machines on the fabric.
    pub fn machine_count(&self) -> usize {
        self.pack_bufs.len()
    }

    /// Register (or replace) the handler for a protocol. The TSL compiler
    /// generates one registration per `protocol` block; the handler body is
    /// the user's algorithm logic, written "as if implementing a local
    /// method" (paper §4.2).
    pub fn register<F>(&self, proto: ProtoId, handler: F)
    where
        F: Fn(MachineId, &[u8]) -> Option<Vec<u8>> + Send + Sync + 'static,
    {
        self.handlers.write().insert(proto, Arc::new(handler));
    }

    /// Copy `payload` once into a pooled buffer and wrap it as a frame
    /// payload — the single counted copy of every send path.
    fn pooled_payload(&self, payload: &[u8]) -> FrameBuf {
        self.metrics.frame_copy_bytes.add(payload.len() as u64);
        let mut buf = self.pool.take();
        buf.extend_from_slice(payload);
        self.pool.seal(buf)
    }

    /// Synchronous one-sided call: send `payload` to `dst` and block for
    /// the response, bounded by the fabric-wide call timeout. Delegates to
    /// [`Endpoint::call_with_deadline`].
    ///
    /// The reply is a [`FrameBuf`] view of the response frame — it derefs
    /// to `&[u8]` and converts to an owned vector (zero-copy when unique)
    /// via [`FrameBuf::into_vec`].
    pub fn call(&self, dst: MachineId, proto: ProtoId, payload: &[u8]) -> Result<FrameBuf> {
        self.call_with_deadline(dst, proto, payload, self.call_timeout)
    }

    /// Synchronous one-sided call with a per-call timeout. The effective
    /// budget is the *tighter* of `timeout` and the thread's inherited
    /// deadline (see [`crate::DeadlineGuard`]); it is stamped into the
    /// envelope so the callee can refuse work that is already doomed, and
    /// exhausting an inherited deadline surfaces as
    /// [`NetError::DeadlineExceeded`] rather than a liveness timeout.
    pub fn call_with_deadline(
        &self,
        dst: MachineId,
        proto: ProtoId,
        payload: &[u8],
        timeout: Duration,
    ) -> Result<FrameBuf> {
        if self.router.is_closed() {
            return Err(NetError::Closed);
        }
        if self.router.is_dead(dst) {
            return Err(NetError::Unreachable(dst));
        }
        let inherited = current_deadline();
        let now = deadline_now_us();
        if inherited != NO_DEADLINE && now >= inherited {
            // The query's budget is already spent: don't even transmit.
            self.metrics.deadline_expired.inc();
            return Err(NetError::DeadlineExceeded(dst, proto));
        }
        let timeout_abs = now.saturating_add(timeout.as_micros() as u64);
        let effective = inherited.min(timeout_abs);
        let wait = Duration::from_micros(effective - now);
        let corr = self.corr.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        self.pending.lock().insert(corr, tx);
        // Preserve per-destination FIFO with previously buffered one-ways.
        self.flush_to(dst);
        let start_us = self.obs.now_us();
        let env = Envelope {
            src: self.machine,
            dst,
            trace: current_trace(),
            deadline: effective,
            frames: vec![Frame {
                proto,
                kind: FrameKind::Request(corr),
                payload: self.pooled_payload(payload),
            }],
        };
        let sent_bytes = env.wire_bytes();
        if let Err(e) = self.transmit(env) {
            self.pending.lock().remove(&corr);
            return Err(e);
        }
        let result = match rx.recv_timeout(wait) {
            Ok(result) => result,
            Err(_) => {
                self.pending.lock().remove(&corr);
                // Classify the inherited deadline FIRST: a call that
                // expired while its peer was dying is a spent budget, not
                // a liveness failure — reporting `Unreachable` here would
                // skip the `deadline_expired` metric and invite callers to
                // retry a query whose budget is already gone.
                if inherited != NO_DEADLINE && deadline_now_us() >= inherited {
                    self.metrics.deadline_expired.inc();
                    Err(NetError::DeadlineExceeded(dst, proto))
                } else if self.router.is_dead(dst) {
                    Err(NetError::Unreachable(dst))
                } else {
                    Err(NetError::Timeout(dst, proto))
                }
            }
        };
        self.metrics
            .call_us
            .record(self.obs.now_us().saturating_sub(start_us));
        self.obs.span("net.call", proto, sent_bytes, 1, start_us);
        result
    }

    /// Asynchronous one-way message. Messages to remote machines are
    /// buffered per destination and shipped when the buffer exceeds the
    /// packing threshold (or on [`Endpoint::flush`]); machine-local
    /// messages are delivered immediately.
    pub fn send(&self, dst: MachineId, proto: ProtoId, payload: &[u8]) {
        let trace = current_trace();
        let deadline = current_deadline();
        if dst == self.machine {
            let frame = Frame {
                proto,
                kind: FrameKind::OneWay,
                payload: self.pooled_payload(payload),
            };
            let _ = self.transmit(Envelope {
                src: self.machine,
                dst,
                trace,
                deadline,
                frames: vec![frame],
            });
            return;
        }
        let mut buf = self.pack_bufs[dst.0 as usize].lock();
        self.buffer_frame(&mut buf, dst, proto, payload, trace, deadline);
    }

    /// Batched one-way messages: append `payloads` (drained) to `dst`'s
    /// pack buffer under a single lock acquisition, shipping full
    /// envelopes at the packing threshold along the way. Semantically
    /// identical to calling [`Endpoint::send`] once per payload, but a
    /// concurrent sender (a BSP compute worker flushing its outbox)
    /// contends on the per-destination lock once per batch instead of
    /// once per message, and per-destination FIFO order within the batch
    /// is preserved because threshold flushes happen while the lock is
    /// held.
    pub fn send_batch(&self, dst: MachineId, proto: ProtoId, payloads: &mut Vec<Vec<u8>>) {
        if dst == self.machine {
            for payload in payloads.drain(..) {
                self.send(dst, proto, &payload);
            }
            return;
        }
        let trace = current_trace();
        let deadline = current_deadline();
        let mut buf = self.pack_bufs[dst.0 as usize].lock();
        for payload in payloads.drain(..) {
            self.buffer_frame(&mut buf, dst, proto, &payload, trace, deadline);
        }
    }

    /// Batched one-way messages from one flat buffer: `bounds[i-1]..bounds[i]`
    /// (starting at 0) delimits the i-th payload within `data`. The
    /// allocation-free flush path for producers (BSP outboxes) that encode
    /// messages back-to-back into a reusable buffer — the bytes go
    /// straight from `data` into the pack arena, one copy, no per-message
    /// vectors anywhere.
    pub fn send_slices(&self, dst: MachineId, proto: ProtoId, data: &[u8], bounds: &[usize]) {
        if dst == self.machine {
            let mut start = 0;
            for &end in bounds {
                self.send(dst, proto, &data[start..end]);
                start = end;
            }
            return;
        }
        let trace = current_trace();
        let deadline = current_deadline();
        let mut buf = self.pack_bufs[dst.0 as usize].lock();
        let mut start = 0;
        for &end in bounds {
            self.buffer_frame(&mut buf, dst, proto, &data[start..end], trace, deadline);
            start = end;
        }
    }

    /// Append one one-way frame to a locked pack buffer (the single
    /// counted payload copy), transmitting at the packing threshold while
    /// the lock is held so envelopes to `dst` stay in FIFO order.
    fn buffer_frame(
        &self,
        buf: &mut PackBuf,
        dst: MachineId,
        proto: ProtoId,
        payload: &[u8],
        trace: u64,
        deadline: u64,
    ) {
        if buf.arena.is_empty() {
            buf.trace = trace;
        }
        buf.deadline = buf.deadline.min(deadline);
        let copied = buf.arena.push(proto, FrameKind::OneWay, payload);
        self.metrics.frame_copy_bytes.add(copied as u64);
        buf.wire_bytes += copied + layout::FRAME_HEADER_BYTES as usize;
        if buf.wire_bytes >= self.pack_threshold {
            let frames = buf.arena.seal(&self.pool);
            buf.wire_bytes = 0;
            let trace = std::mem::replace(&mut buf.trace, NO_TRACE);
            let deadline = std::mem::replace(&mut buf.deadline, NO_DEADLINE);
            let _ = self.transmit(Envelope {
                src: self.machine,
                dst,
                trace,
                deadline,
                frames,
            });
        }
    }

    /// One-way message to every other machine (flushed immediately).
    pub fn broadcast(&self, proto: ProtoId, payload: &[u8]) {
        for m in 0..self.machine_count() as u16 {
            let dst = MachineId(m);
            if dst != self.machine {
                self.send(dst, proto, payload);
                self.flush_to(dst);
            }
        }
    }

    /// Ship any buffered one-way frames bound for `dst`.
    pub fn flush_to(&self, dst: MachineId) {
        if dst == self.machine {
            return;
        }
        let mut buf = self.pack_bufs[dst.0 as usize].lock();
        if buf.arena.is_empty() {
            return;
        }
        let frames = buf.arena.seal(&self.pool);
        buf.wire_bytes = 0;
        let trace = std::mem::replace(&mut buf.trace, NO_TRACE);
        let deadline = std::mem::replace(&mut buf.deadline, NO_DEADLINE);
        // Transmit while holding the buffer lock so envelopes from this
        // endpoint to `dst` enter the inbox in flush order.
        let _ = self.transmit(Envelope {
            src: self.machine,
            dst,
            trace,
            deadline,
            frames,
        });
    }

    /// Ship all buffered one-way frames.
    pub fn flush(&self) {
        for m in 0..self.machine_count() as u16 {
            self.flush_to(MachineId(m));
        }
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// This machine's observability scope — the channel through which the
    /// memory cloud and runtime layers publish their metrics and spans.
    pub fn obs(&self) -> &MachineScope {
        &self.obs
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn transmit(&self, mut env: Envelope) -> Result<()> {
        if self.router.is_closed() {
            return Err(NetError::Closed);
        }
        let frames = env.frames.len() as u64;
        if self.router.is_dead(env.dst) {
            // Refused at the send site: the frames never enter the fabric,
            // so they are ledgered apart from in-flight drops.
            self.stats.record_refused(frames);
            self.metrics.frames_refused.add(frames);
            return Err(NetError::Unreachable(env.dst));
        }
        // Payload bytes entering frames — denominator of the copy ratio.
        self.metrics.frame_payload_bytes.add(env.payload_bytes());
        if env.dst == env.src {
            self.stats.record_local(frames);
            self.metrics.frames_local.add(frames);
        } else {
            let bytes = env.wire_bytes();
            self.stats.record_remote(frames, bytes);
            self.metrics.env_sent.inc();
            self.metrics.frames_sent.add(frames);
            self.metrics.bytes_sent.add(bytes);
            self.metrics.env_bytes.record(bytes);
            self.metrics.env_frames.record(frames);
            // Charge the cost model as the transfer happens, so modeled
            // network time is observable per machine, not just per window.
            let modeled_us = (self.cost.seconds(1, bytes) * 1e6) as u64;
            self.metrics.modeled_tx_us.add(modeled_us);
            // The transfer itself consumes budget: tighten the deadline by
            // the modeled wire time so a query's budget accounts for
            // network cost, not just compute.
            if env.deadline != NO_DEADLINE {
                env.deadline = env.deadline.saturating_sub(modeled_us);
            }
            self.obs.span_for(
                env.trace,
                "net.send",
                0,
                bytes,
                frames as u32,
                self.obs.now_us(),
            );
            // Remote envelopes route through the fault injector when one
            // is installed; machine-local loopback cannot fail.
            if let Some(chaos) = &self.chaos {
                return chaos.transmit(env);
            }
        }
        self.router.deliver(env)
    }

    /// Receiver-thread entry: route one inbound envelope.
    pub(crate) fn route_envelope(&self, env: Envelope) {
        if self.router.is_dead(self.machine) {
            // A dead machine processes nothing, but the frames must still
            // be consumed from the ledger: they entered the fabric and
            // die here, in its inbox.
            let frames = env.frames.len() as u64;
            self.stats.record_dropped(frames);
            self.metrics.frames_dropped.add(frames);
            return;
        }
        if env.src != self.machine {
            self.metrics.env_recv.inc();
            self.metrics.frames_recv.add(env.frames.len() as u64);
            self.metrics.bytes_recv.add(env.wire_bytes());
            self.obs.span_for(
                env.trace,
                "net.deliver",
                0,
                env.wire_bytes(),
                env.frames.len() as u32,
                self.obs.now_us(),
            );
        }
        for frame in env.frames {
            match frame.kind {
                FrameKind::Response(corr) => {
                    match self.pending.lock().remove(&corr) {
                        Some(tx) => {
                            self.count_delivered(1);
                            // The payload moves into the caller's hands as
                            // the same shared slice that crossed the wire.
                            let _ = tx.send(Ok(frame.payload));
                        }
                        // An orphan response: its call already completed
                        // (timed out, or this is a duplicate delivery).
                        None => self.count_dropped(1),
                    }
                }
                FrameKind::NoHandler(corr) => match self.pending.lock().remove(&corr) {
                    Some(tx) => {
                        self.count_delivered(1);
                        let _ = tx.send(Err(NetError::NoHandler(frame.proto)));
                    }
                    None => self.count_dropped(1),
                },
                FrameKind::Expired(corr) => match self.pending.lock().remove(&corr) {
                    Some(tx) => {
                        self.count_delivered(1);
                        let _ = tx.send(Err(NetError::DeadlineExceeded(env.src, frame.proto)));
                    }
                    None => self.count_dropped(1),
                },
                FrameKind::Request(_) | FrameKind::OneWay => {
                    let _ = self
                        .work_tx
                        .send(Work::Frame(env.src, env.trace, env.deadline, frame));
                }
            }
        }
    }

    /// Worker-thread entry: dispatch one request or one-way frame. The
    /// envelope's trace id and deadline are installed on the worker thread
    /// for the duration of the handler, so spans the handler records — and
    /// any nested `call`/`send` it issues — stay attributed to the
    /// originating query and bounded by its remaining budget. This is how
    /// a trace (and a budget) follows the recursive fan-out of the paper's
    /// traversal queries across machines.
    ///
    /// A *request* whose deadline has already passed is refused without
    /// running the handler — the caller has given up, so the answer would
    /// be wasted CPU. *One-way* frames always dispatch: asynchronous
    /// protocols (BSP fences, exploration ack-trees) rely on every message
    /// being counted, and their handlers check the deadline themselves.
    pub(crate) fn dispatch(&self, src: MachineId, trace: u64, deadline: u64, frame: Frame) {
        if self.router.is_dead(self.machine) {
            self.count_dropped(1);
            return;
        }
        let _guard = TraceGuard::enter(trace);
        let _deadline_guard = DeadlineGuard::enter(deadline);
        if deadline != NO_DEADLINE && deadline_now_us() >= deadline {
            if let FrameKind::Request(corr) = frame.kind {
                self.count_delivered(1);
                self.metrics.deadline_expired.inc();
                let _ = self.transmit(Envelope {
                    src: self.machine,
                    dst: src,
                    trace,
                    deadline,
                    frames: vec![Frame {
                        proto: frame.proto,
                        kind: FrameKind::Expired(corr),
                        payload: FrameBuf::new(),
                    }],
                });
                return;
            }
        }
        let start_us = self.obs.now_us();
        let proto = frame.proto;
        let payload_len = frame.payload.len() as u64;
        let handler = self.handlers.read().get(&frame.proto).cloned();
        match frame.kind {
            FrameKind::OneWay => {
                if let Some(h) = handler {
                    h(src, &frame.payload);
                    self.count_delivered(1);
                    self.metrics
                        .handler_us
                        .record(self.obs.now_us().saturating_sub(start_us));
                    self.obs
                        .span("net.dispatch", proto, payload_len, 1, start_us);
                } else {
                    self.count_dropped(1);
                }
            }
            FrameKind::Request(corr) => {
                self.count_delivered(1);
                let reply = match handler {
                    Some(h) => {
                        let payload = h(src, &frame.payload).unwrap_or_default();
                        self.metrics
                            .handler_us
                            .record(self.obs.now_us().saturating_sub(start_us));
                        self.obs
                            .span("net.dispatch", proto, payload_len, 1, start_us);
                        Frame {
                            proto: frame.proto,
                            kind: FrameKind::Response(corr),
                            // The handler's buffer *is* the wire payload:
                            // adopted, never copied.
                            payload: FrameBuf::from_vec(payload),
                        }
                    }
                    None => Frame {
                        proto: frame.proto,
                        kind: FrameKind::NoHandler(corr),
                        payload: FrameBuf::new(),
                    },
                };
                let _ = self.transmit(Envelope {
                    src: self.machine,
                    dst: src,
                    trace,
                    deadline,
                    frames: vec![reply],
                });
            }
            FrameKind::Response(_) | FrameKind::NoHandler(_) | FrameKind::Expired(_) => {
                unreachable!("responses are routed by the receiver")
            }
        }
    }

    fn count_delivered(&self, frames: u64) {
        self.stats.record_delivered(frames);
        self.metrics.frames_delivered.add(frames);
    }

    fn count_dropped(&self, frames: u64) {
        self.stats.record_dropped(frames);
        self.metrics.frames_dropped.add(frames);
    }

    /// Fail any calls still pending when the fabric shuts down.
    pub(crate) fn fail_pending(&self) {
        for (_, tx) in self.pending.lock().drain() {
            let _ = tx.send(Err(NetError::Closed));
        }
    }
}

pub(crate) fn receiver_loop(
    ep: Arc<Endpoint>,
    rx: crossbeam::channel::Receiver<Item>,
    workers: usize,
) {
    while let Ok(item) = rx.recv() {
        match item {
            Item::Env(env) => ep.route_envelope(env),
            Item::Stop => break,
        }
    }
    for _ in 0..workers {
        let _ = ep.work_tx.send(Work::Stop);
    }
    ep.fail_pending();
}

pub(crate) fn worker_loop(ep: Arc<Endpoint>, rx: crossbeam::channel::Receiver<Work>) {
    while let Ok(work) = rx.recv() {
        match work {
            Work::Frame(src, trace, deadline, frame) => ep.dispatch(src, trace, deadline, frame),
            Work::Stop => break,
        }
    }
}
