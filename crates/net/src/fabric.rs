//! The simulated interconnect.
//!
//! A [`Fabric`] wires `n` machine endpoints together. Machines exchange
//! data exclusively through envelopes delivered over per-machine inbox
//! channels — the in-process stand-in for the paper's cluster network (see
//! DESIGN.md). The fabric also owns failure injection: a killed machine
//! stops processing its inbox and every transfer addressed to it fails,
//! which is how the recovery experiments exercise the paper's §6.2
//! protocols.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{unbounded, Sender};
use parking_lot::Mutex;
use trinity_obs::Registry;

use crate::cost::CostModel;
use crate::endpoint::{receiver_loop, worker_loop, Endpoint, Work};
use crate::envelope::Envelope;
use crate::error::NetError;
use crate::fault::{ChaosState, FaultLog, FaultPlan};
use crate::stats::StatsDelta;
use crate::{MachineId, Result};

pub(crate) enum Item {
    Env(Envelope),
    Stop,
}

/// Shared routing state: inbox senders plus liveness flags.
pub(crate) struct Router {
    inboxes: Vec<Sender<Item>>,
    dead: Vec<AtomicBool>,
    closed: AtomicBool,
}

impl Router {
    pub(crate) fn is_dead(&self, m: MachineId) -> bool {
        self.dead
            .get(m.0 as usize)
            .is_none_or(|d| d.load(Ordering::Acquire))
    }

    pub(crate) fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    pub(crate) fn set_dead(&self, m: MachineId, dead: bool) {
        if let Some(d) = self.dead.get(m.0 as usize) {
            d.store(dead, Ordering::Release);
        }
    }

    pub(crate) fn deliver(&self, env: Envelope) -> Result<()> {
        let dst = env.dst.0 as usize;
        match self.inboxes.get(dst) {
            Some(tx) => tx.send(Item::Env(env)).map_err(|_| NetError::Closed),
            None => Err(NetError::Unreachable(env.dst)),
        }
    }
}

/// Fabric construction parameters.
#[derive(Debug, Clone)]
pub struct FabricConfig {
    /// Number of machines on the fabric.
    pub machines: usize,
    /// Handler worker threads per machine. Workers may block in nested
    /// calls (recursive traversal fan-out), so more workers allow deeper
    /// concurrent fan-out.
    pub workers_per_machine: usize,
    /// Byte threshold at which a destination's packed one-way buffer is
    /// shipped.
    pub pack_threshold_bytes: usize,
    /// Timeout for synchronous calls (also the failure-detection horizon
    /// for detection-by-access).
    pub call_timeout: Duration,
    /// Price list used when converting measured traffic into modeled
    /// network seconds.
    pub cost: CostModel,
    /// Seeded fault-injection plan; `None` (the default) runs the fabric
    /// fault-free.
    pub faults: Option<FaultPlan>,
}

impl FabricConfig {
    /// Defaults for an `n`-machine fabric.
    pub fn with_machines(n: usize) -> Self {
        FabricConfig {
            machines: n,
            workers_per_machine: 4,
            pack_threshold_bytes: 64 << 10,
            call_timeout: Duration::from_secs(10),
            cost: CostModel::default(),
            faults: None,
        }
    }
}

/// The simulated cluster interconnect.
pub struct Fabric {
    cfg: FabricConfig,
    router: Arc<Router>,
    endpoints: Vec<Arc<Endpoint>>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    obs: Arc<Registry>,
    chaos: Option<Arc<ChaosState>>,
}

impl std::fmt::Debug for Fabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fabric")
            .field("machines", &self.cfg.machines)
            .finish()
    }
}

impl Fabric {
    /// Bring up the fabric: all machines alive, receiver and worker
    /// threads running.
    pub fn new(cfg: FabricConfig) -> Arc<Self> {
        assert!(cfg.machines >= 1 && cfg.machines <= u16::MAX as usize);
        let mut inboxes = Vec::with_capacity(cfg.machines);
        let mut inbox_rxs = Vec::with_capacity(cfg.machines);
        for _ in 0..cfg.machines {
            let (tx, rx) = unbounded();
            inboxes.push(tx);
            inbox_rxs.push(rx);
        }
        let router = Arc::new(Router {
            inboxes,
            dead: (0..cfg.machines).map(|_| AtomicBool::new(false)).collect(),
            closed: AtomicBool::new(false),
        });
        let obs = Arc::new(Registry::new());
        let chaos = cfg
            .faults
            .clone()
            .map(|plan| ChaosState::start(plan, cfg.machines, Arc::clone(&router), cfg.cost, &obs));
        let mut endpoints = Vec::with_capacity(cfg.machines);
        let mut handles = Vec::new();
        for (m, inbox_rx) in inbox_rxs.into_iter().enumerate() {
            let (work_tx, work_rx) = unbounded::<Work>();
            let ep = Endpoint::new(
                MachineId(m as u16),
                Arc::clone(&router),
                cfg.machines,
                cfg.pack_threshold_bytes,
                cfg.call_timeout,
                work_tx,
                cfg.cost,
                obs.scope(m as u16),
                chaos.clone(),
            );
            let workers = cfg.workers_per_machine.max(1);
            {
                let ep = Arc::clone(&ep);
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("trinity-net-rx-{m}"))
                        .spawn(move || receiver_loop(ep, inbox_rx, workers))
                        .expect("spawn receiver"),
                );
            }
            for w in 0..workers {
                let ep = Arc::clone(&ep);
                let work_rx = work_rx.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("trinity-net-wk-{m}-{w}"))
                        .spawn(move || worker_loop(ep, work_rx))
                        .expect("spawn worker"),
                );
            }
            endpoints.push(ep);
        }
        Arc::new(Fabric {
            cfg,
            router,
            endpoints,
            handles: Mutex::new(handles),
            obs,
            chaos,
        })
    }

    /// The endpoint attached to machine `m`.
    pub fn endpoint(&self, m: MachineId) -> Arc<Endpoint> {
        Arc::clone(&self.endpoints[m.0 as usize])
    }

    /// All endpoints in machine order.
    pub fn endpoints(&self) -> &[Arc<Endpoint>] {
        &self.endpoints
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.cfg.machines
    }

    /// The configured cost model.
    pub fn cost_model(&self) -> CostModel {
        self.cfg.cost
    }

    /// This cluster's metrics registry. One registry per fabric, so tests
    /// running several simulated clusters in one process stay disjoint.
    pub fn obs(&self) -> &Arc<Registry> {
        &self.obs
    }

    /// Kill a machine: it stops processing messages and every transfer
    /// addressed to it fails with [`NetError::Unreachable`].
    pub fn kill(&self, m: MachineId) {
        self.router.set_dead(m, true);
    }

    /// Revive a killed machine (its state is whatever it held at death;
    /// Trinity's recovery instead reloads trunks from TFS onto survivors,
    /// but revival is useful for heartbeat tests).
    pub fn revive(&self, m: MachineId) {
        self.router.set_dead(m, false);
    }

    /// Whether machine `m` is currently dead.
    pub fn is_dead(&self, m: MachineId) -> bool {
        self.router.is_dead(m)
    }

    /// Cluster-wide traffic totals.
    pub fn total_stats(&self) -> StatsDelta {
        let mut total = StatsDelta::default();
        for ep in &self.endpoints {
            total.merge(&ep.stats().snapshot());
        }
        total
    }

    /// The fault injector, when this fabric was built with
    /// [`FabricConfig::faults`].
    pub fn chaos(&self) -> Option<&Arc<ChaosState>> {
        self.chaos.as_ref()
    }

    /// Every fault injected so far (empty for fault-free fabrics).
    pub fn fault_log(&self) -> FaultLog {
        self.chaos
            .as_ref()
            .map(|c| c.fault_log())
            .unwrap_or_default()
    }

    /// Fire `Trigger::Mark(value)` crash/revive events. Workloads call
    /// this at logical boundaries (checkpoints, phase changes); a no-op
    /// without an injector or matching events.
    pub fn chaos_mark(&self, value: u64) {
        if let Some(c) = &self.chaos {
            c.mark(value);
        }
    }

    /// Arm or disarm the fault injector (no-op on fault-free fabrics).
    /// See [`ChaosState::set_armed`].
    pub fn chaos_arm(&self, armed: bool) {
        if let Some(c) = &self.chaos {
            c.set_armed(armed);
        }
    }

    /// Wait until the injector holds no envelopes (delays elapsed, holds
    /// released). `true` immediately for fault-free fabrics.
    pub fn chaos_quiesce(&self, timeout: Duration) -> bool {
        self.chaos.as_ref().is_none_or(|c| c.quiesce(timeout))
    }

    /// Modeled network seconds for the traffic measured so far, priced by
    /// the configured cost model.
    pub fn modeled_network_seconds(&self) -> f64 {
        self.cfg.cost.transfer_seconds(&self.total_stats())
    }

    /// Stop all fabric threads. Pending calls fail with
    /// [`NetError::Closed`]. Idempotent.
    pub fn shutdown(&self) {
        if self.router.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Flush the injector first: parked envelopes are delivered ahead
        // of the Stop items so nothing leaks through shutdown.
        if let Some(c) = &self.chaos {
            c.stop();
        }
        for tx in &self.router.inboxes {
            let _ = tx.send(Item::Stop);
        }
        let handles = std::mem::take(&mut *self.handles.lock());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Fabric {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn quick_cfg(n: usize) -> FabricConfig {
        FabricConfig {
            call_timeout: Duration::from_millis(500),
            ..FabricConfig::with_machines(n)
        }
    }

    #[test]
    fn echo_call_roundtrip() {
        let fabric = Fabric::new(quick_cfg(3));
        fabric.endpoint(MachineId(1)).register(10, |src, p| {
            let mut out = format!("from {src}: ").into_bytes();
            out.extend_from_slice(p);
            Some(out)
        });
        let a = fabric.endpoint(MachineId(0));
        let reply = a.call(MachineId(1), 10, b"hi").unwrap();
        assert_eq!(reply, b"from m0: hi");
        fabric.shutdown();
    }

    #[test]
    fn call_to_self_works() {
        let fabric = Fabric::new(quick_cfg(1));
        let ep = fabric.endpoint(MachineId(0));
        ep.register(10, |_, p| Some(p.iter().rev().copied().collect()));
        assert_eq!(ep.call(MachineId(0), 10, b"abc").unwrap(), b"cba");
        // Local traffic is counted as local, not remote.
        let s = ep.stats().snapshot();
        assert_eq!(s.remote_envelopes, 0);
        assert!(s.local_frames >= 2);
        fabric.shutdown();
    }

    #[test]
    fn missing_handler_is_an_error() {
        let fabric = Fabric::new(quick_cfg(2));
        let a = fabric.endpoint(MachineId(0));
        assert_eq!(a.call(MachineId(1), 99, b""), Err(NetError::NoHandler(99)));
        fabric.shutdown();
    }

    #[test]
    fn one_way_messages_are_packed() {
        let fabric = Fabric::new(quick_cfg(2));
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let counter = Arc::clone(&counter);
            fabric.endpoint(MachineId(1)).register(10, move |_, _| {
                counter.fetch_add(1, Ordering::SeqCst);
                None
            });
        }
        let a = fabric.endpoint(MachineId(0));
        for i in 0..1000u32 {
            a.send(MachineId(1), 10, &i.to_le_bytes());
        }
        a.flush();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 1000 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
        let s = a.stats().snapshot();
        assert_eq!(s.remote_frames, 1000);
        assert!(
            s.remote_envelopes < 100,
            "1000 small frames should pack into few envelopes, got {}",
            s.remote_envelopes
        );
        assert!(s.packing_factor() > 10.0);
        fabric.shutdown();
    }

    #[test]
    fn concurrent_send_batch_delivers_everything_packed() {
        // Several sender threads (BSP compute workers flushing private
        // outboxes) push batches to the same destinations concurrently;
        // every frame must arrive exactly once and still pack well.
        let fabric = Fabric::new(quick_cfg(3));
        let sums: Vec<Arc<AtomicUsize>> = (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        let counts: Vec<Arc<AtomicUsize>> = (0..3).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for m in 0..3u16 {
            let sum = Arc::clone(&sums[m as usize]);
            let count = Arc::clone(&counts[m as usize]);
            fabric.endpoint(MachineId(m)).register(10, move |_, p| {
                let v = u64::from_le_bytes(p.try_into().unwrap());
                sum.fetch_add(v as usize, Ordering::SeqCst);
                count.fetch_add(1, Ordering::SeqCst);
                None
            });
        }
        let a = fabric.endpoint(MachineId(0));
        let per_worker = 500u64;
        let workers = 4u64;
        std::thread::scope(|s| {
            for w in 0..workers {
                let a = Arc::clone(&a);
                s.spawn(move || {
                    let mut outbox: Vec<Vec<Vec<u8>>> = vec![Vec::new(); 3];
                    for i in 0..per_worker {
                        let v = w * per_worker + i;
                        let dst = 1 + (v % 2) as usize;
                        outbox[dst].push(v.to_le_bytes().to_vec());
                        if outbox[dst].len() >= 32 {
                            a.send_batch(MachineId(dst as u16), 10, &mut outbox[dst]);
                        }
                    }
                    for (dst, buf) in outbox.iter_mut().enumerate() {
                        if !buf.is_empty() {
                            a.send_batch(MachineId(dst as u16), 10, buf);
                        }
                    }
                });
            }
        });
        a.flush();
        let total = (workers * per_worker) as usize;
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counts[1].load(Ordering::SeqCst) + counts[2].load(Ordering::SeqCst) < total
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(
            counts[1].load(Ordering::SeqCst) + counts[2].load(Ordering::SeqCst),
            total,
            "no frame lost or duplicated under concurrent batched sends"
        );
        let expect: usize = (0..workers * per_worker).sum::<u64>() as usize;
        assert_eq!(
            sums[1].load(Ordering::SeqCst) + sums[2].load(Ordering::SeqCst),
            expect
        );
        let s = a.stats().snapshot();
        assert_eq!(s.remote_frames, total as u64);
        assert!(
            s.packing_factor() > 4.0,
            "batched sends should still pack: {}",
            s.packing_factor()
        );
        fabric.shutdown();
    }

    #[test]
    fn killed_machine_is_unreachable() {
        let fabric = Fabric::new(quick_cfg(2));
        fabric
            .endpoint(MachineId(1))
            .register(10, |_, p| Some(p.to_vec()));
        let a = fabric.endpoint(MachineId(0));
        assert!(a.call(MachineId(1), 10, b"x").is_ok());
        fabric.kill(MachineId(1));
        assert_eq!(
            a.call(MachineId(1), 10, b"x"),
            Err(NetError::Unreachable(MachineId(1)))
        );
        fabric.revive(MachineId(1));
        assert!(a.call(MachineId(1), 10, b"x").is_ok());
        fabric.shutdown();
    }

    #[test]
    fn handlers_can_fan_out_recursively() {
        // m0 asks m1 for a value that m1 must fetch from m2: nested calls
        // from inside a handler must not deadlock the worker pool.
        let fabric = Fabric::new(quick_cfg(3));
        {
            let fabric2 = Arc::clone(&fabric);
            fabric.endpoint(MachineId(1)).register(10, move |_, p| {
                let inner = fabric2
                    .endpoint(MachineId(1))
                    .call(MachineId(2), 11, p)
                    .unwrap();
                Some(inner.into_vec())
            });
        }
        fabric.endpoint(MachineId(2)).register(11, |_, p| {
            let mut v = p.to_vec();
            v.push(b'!');
            Some(v)
        });
        let reply = fabric
            .endpoint(MachineId(0))
            .call(MachineId(1), 10, b"deep")
            .unwrap();
        assert_eq!(reply, b"deep!");
        fabric.shutdown();
    }

    #[test]
    fn broadcast_reaches_everyone_else() {
        let fabric = Fabric::new(quick_cfg(4));
        let counter = Arc::new(AtomicUsize::new(0));
        for m in 1..4u16 {
            let counter = Arc::clone(&counter);
            fabric.endpoint(MachineId(m)).register(10, move |_, _| {
                counter.fetch_add(1, Ordering::SeqCst);
                None
            });
        }
        fabric.endpoint(MachineId(0)).broadcast(10, b"hello all");
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 3);
        fabric.shutdown();
    }

    #[test]
    fn shutdown_fails_pending_calls() {
        let fabric = Fabric::new(FabricConfig {
            call_timeout: Duration::from_secs(30),
            ..FabricConfig::with_machines(2)
        });
        // Handler that never responds in time.
        fabric.endpoint(MachineId(1)).register(10, |_, _| {
            std::thread::sleep(Duration::from_secs(60));
            None
        });
        let a = fabric.endpoint(MachineId(0));
        let h = std::thread::spawn(move || a.call(MachineId(1), 10, b""));
        std::thread::sleep(Duration::from_millis(100));
        // Shutdown must complete the pending call with Closed without
        // waiting for the sleeping handler... but join() would wait for the
        // worker. So spawn the shutdown check around receiver exit instead:
        // mark closed and verify the pending call errors out quickly.
        std::thread::spawn({
            let fabric = Arc::clone(&fabric);
            move || fabric.shutdown()
        });
        let res = h.join().unwrap();
        assert!(
            matches!(res, Err(NetError::Closed) | Err(NetError::Timeout(..))),
            "got {res:?}"
        );
    }

    #[test]
    fn metrics_mirror_net_stats() {
        let fabric = Fabric::new(quick_cfg(2));
        fabric
            .endpoint(MachineId(1))
            .register(10, |_, p| Some(p.to_vec()));
        let a = fabric.endpoint(MachineId(0));
        for _ in 0..5 {
            a.call(MachineId(1), 10, b"payload").unwrap();
        }
        let s = a.stats().snapshot();
        let snap = fabric.obs().scope(0).snapshot();
        assert_eq!(snap.counters["net.env.sent"], s.remote_envelopes);
        assert_eq!(snap.counters["net.frames.sent"], s.remote_frames);
        assert_eq!(snap.counters["net.bytes.sent"], s.remote_bytes);
        assert_eq!(snap.hists["net.env.bytes"].count, s.remote_envelopes);
        assert_eq!(snap.hists["net.call.us"].count, 5);
        assert!(
            snap.counters["net.modeled_tx_us"] > 0,
            "cost model charged per transfer"
        );
        // The responder counted its inbound side.
        let snap1 = fabric.obs().scope(1).snapshot();
        assert_eq!(snap1.counters["net.env.recv"], 5);
        assert_eq!(snap1.hists["net.handler.us"].count, 5);
        fabric.shutdown();
    }

    #[test]
    fn trace_id_crosses_machines() {
        use trinity_obs::{current_trace, next_trace_id, TraceGuard};
        // m0 calls m1, whose handler fans out to m2: all three machines
        // must record spans under the single trace installed on m0.
        let fabric = Fabric::new(quick_cfg(3));
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let fabric2 = Arc::clone(&fabric);
            let seen = Arc::clone(&seen);
            fabric.endpoint(MachineId(1)).register(10, move |_, p| {
                seen.lock().push(current_trace());
                Some(
                    fabric2
                        .endpoint(MachineId(1))
                        .call(MachineId(2), 11, p)
                        .unwrap()
                        .into_vec(),
                )
            });
        }
        {
            let seen = Arc::clone(&seen);
            fabric.endpoint(MachineId(2)).register(11, move |_, p| {
                seen.lock().push(current_trace());
                Some(p.to_vec())
            });
        }
        let trace = next_trace_id();
        {
            let _g = TraceGuard::enter(trace);
            fabric
                .endpoint(MachineId(0))
                .call(MachineId(1), 10, b"x")
                .unwrap();
        }
        assert_eq!(
            &*seen.lock(),
            &[trace, trace],
            "handlers observe the caller's trace"
        );
        let spans = fabric.obs().spans_for_trace(trace);
        let machines: std::collections::BTreeSet<u16> = spans.iter().map(|s| s.machine).collect();
        assert_eq!(machines.into_iter().collect::<Vec<_>>(), vec![0, 1, 2]);
        // Untraced traffic records no spans at all.
        fabric
            .endpoint(MachineId(0))
            .call(MachineId(1), 10, b"y")
            .unwrap();
        let all = fabric.obs().spans();
        assert!(
            all.iter().all(|s| s.trace == trace),
            "spans only exist under a trace"
        );
        fabric.shutdown();
    }

    #[test]
    fn kill_drains_inbox_and_balances() {
        let fabric = Fabric::new(quick_cfg(2));
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let counter = Arc::clone(&counter);
            fabric.endpoint(MachineId(1)).register(10, move |_, _| {
                // Slow handler: the worker queue backs up so the kill
                // lands while frames are still queued.
                std::thread::sleep(Duration::from_millis(1));
                counter.fetch_add(1, Ordering::SeqCst);
                None
            });
        }
        let a = fabric.endpoint(MachineId(0));
        for i in 0..200u32 {
            a.send(MachineId(1), 10, &i.to_le_bytes());
            if i % 10 == 0 {
                a.flush_to(MachineId(1));
            }
        }
        a.flush();
        std::thread::sleep(Duration::from_millis(20));
        fabric.kill(MachineId(1));
        // Every frame that entered the fabric must be consumed — handled
        // before the kill, or counted dropped after it. Nothing may sit
        // uncounted in channel buffers.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let total = fabric.total_stats();
            if total.entered_frames() == total.consumed_frames() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ledger never balanced: {total:?}"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
        let total = fabric.total_stats();
        assert_eq!(total.entered_frames(), 200);
        assert!(
            total.dropped_frames > 0,
            "kill with a backed-up queue must discard some frames"
        );
        assert_eq!(
            counter.load(Ordering::SeqCst) as u64,
            total.delivered_frames,
            "handled exactly the frames the ledger says were delivered"
        );
        fabric.shutdown();
    }

    #[test]
    fn chaos_crash_schedule_fires_on_envelope_count() {
        let fabric = Fabric::new(FabricConfig {
            faults: Some(
                FaultPlan::new(3)
                    .with_event(crate::Trigger::Envelopes(6), crate::NodeEvent::Crash(1)),
            ),
            ..quick_cfg(2)
        });
        fabric
            .endpoint(MachineId(1))
            .register(10, |_, p| Some(p.to_vec()));
        let a = fabric.endpoint(MachineId(0));
        // Each call is two remote envelopes (request + response): the
        // schedule fires mid-call 3, whose response may or may not beat
        // the flag; by call 4 the destination is dead for sure.
        let mut failed = None;
        for i in 0..10 {
            if let Err(e) = a.call(MachineId(1), 10, b"x") {
                failed = Some((i, e));
                break;
            }
        }
        let (i, e) = failed.expect("crash schedule never fired");
        assert!(i >= 2, "died before the trigger: call {i}");
        assert!(
            matches!(e, NetError::Unreachable(_) | NetError::Timeout(..)),
            "got {e:?}"
        );
        assert!(fabric.is_dead(MachineId(1)));
        let log = fabric.fault_log();
        assert_eq!(log.len(), 1);
        assert!(matches!(
            log.records[0].kind,
            crate::FaultKind::Crash(crate::Trigger::Envelopes(6))
        ));
        fabric.shutdown();
    }

    #[test]
    fn chaos_duplicate_delivers_oneways_twice() {
        let fabric = Fabric::new(FabricConfig {
            faults: Some(FaultPlan::new(11).with_duplicate(1.0)),
            ..quick_cfg(2)
        });
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let counter = Arc::clone(&counter);
            fabric.endpoint(MachineId(1)).register(10, move |_, _| {
                counter.fetch_add(1, Ordering::SeqCst);
                None
            });
        }
        let a = fabric.endpoint(MachineId(0));
        for i in 0..50u32 {
            a.send(MachineId(1), 10, &i.to_le_bytes());
            a.flush_to(MachineId(1));
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counter.load(Ordering::SeqCst) < 100 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(counter.load(Ordering::SeqCst), 100, "every envelope twice");
        let chaos = fabric.chaos().unwrap();
        assert_eq!(chaos.duplicated_frames(), 50);
        assert_eq!(fabric.fault_log().len(), 50);
        // Ledger: entered + duplicated == consumed.
        let total = fabric.total_stats();
        assert_eq!(
            total.entered_frames() + chaos.duplicated_frames(),
            total.consumed_frames()
        );
        fabric.shutdown();
    }

    #[test]
    fn per_pair_fifo_for_packed_sends() {
        let fabric = Fabric::new(FabricConfig {
            workers_per_machine: 1, // single worker => handler-order FIFO
            ..quick_cfg(2)
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        {
            let seen = Arc::clone(&seen);
            fabric.endpoint(MachineId(1)).register(10, move |_, p| {
                seen.lock().push(u32::from_le_bytes(p.try_into().unwrap()));
                None
            });
        }
        let a = fabric.endpoint(MachineId(0));
        for i in 0..500u32 {
            a.send(MachineId(1), 10, &i.to_le_bytes());
            if i % 37 == 0 {
                a.flush_to(MachineId(1));
            }
        }
        a.flush();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while seen.lock().len() < 500 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let seen = seen.lock();
        assert_eq!(
            &*seen,
            &(0..500).collect::<Vec<u32>>(),
            "packed delivery broke FIFO order"
        );
        fabric.shutdown();
    }
}
