//! Wire representation: frames packed into envelopes.
//!
//! A [`Frame`] is one logical message (a TSL protocol invocation); an
//! [`Envelope`] is one physical transfer between two machines. The
//! transparent packing optimization (paper §4.2) batches many small
//! asynchronous frames bound for the same machine into one envelope, so the
//! per-transfer network overhead is paid once instead of per message.

use crate::{MachineId, ProtoId};

/// How a frame participates in the request/response paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Fire-and-forget message (asynchronous protocol).
    OneWay,
    /// Request expecting a response, tagged with a correlation id.
    Request(u64),
    /// Response to the request with the same correlation id.
    Response(u64),
    /// Response indicating the callee had no handler for the protocol.
    NoHandler(u64),
    /// Response indicating the callee refused the request because its
    /// deadline budget was already exhausted on arrival.
    Expired(u64),
}

/// One logical message.
#[derive(Debug, Clone)]
pub struct Frame {
    pub proto: ProtoId,
    pub kind: FrameKind,
    pub payload: Vec<u8>,
}

impl Frame {
    /// Bytes this frame contributes to a transfer: payload plus the frame
    /// header (proto id, kind tag, correlation id, length prefix).
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + 16
    }
}

/// One physical transfer between two machines.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub src: MachineId,
    pub dst: MachineId,
    /// Trace id of the query/job this transfer belongs to
    /// ([`trinity_obs::NO_TRACE`] when untraced). Carried in the envelope
    /// header so a distributed query can be reconstructed across machines.
    pub trace: u64,
    /// Absolute deadline of the query this transfer serves, in
    /// microseconds on the [`crate::deadline_now_us`] clock
    /// ([`crate::NO_DEADLINE`] when unbounded). Carried next to the trace
    /// id so the receiving machine can abort work the client has already
    /// given up on.
    pub deadline: u64,
    pub frames: Vec<Frame>,
}

impl Envelope {
    /// Total bytes on the wire: frames plus the envelope header (src, dst,
    /// length, checksum, trace id, deadline).
    pub fn wire_bytes(&self) -> u64 {
        self.frames.iter().map(Frame::wire_bytes).sum::<u64>() + 40
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_count_headers() {
        let f = Frame {
            proto: 1,
            kind: FrameKind::OneWay,
            payload: vec![0; 100],
        };
        assert_eq!(f.wire_bytes(), 116);
        let e = Envelope {
            src: MachineId(0),
            dst: MachineId(1),
            trace: 0,
            deadline: crate::NO_DEADLINE,
            frames: vec![f.clone(), f],
        };
        assert_eq!(e.wire_bytes(), 2 * 116 + 40);
    }
}
