//! Wire representation: frames packed into envelopes.
//!
//! A [`Frame`] is one logical message (a TSL protocol invocation); an
//! [`Envelope`] is one physical transfer between two machines. The
//! transparent packing optimization (paper §4.2) batches many small
//! asynchronous frames bound for the same machine into one envelope, so the
//! per-transfer network overhead is paid once instead of per message.
//!
//! Frame payloads are [`FrameBuf`] shared slices: every frame of a packed
//! envelope aliases one contiguous arena, and cloning an envelope (the
//! chaos duplicate fault) bumps refcounts instead of copying bytes.

use crate::framebuf::FrameBuf;
use crate::{MachineId, ProtoId};

/// The wire layout, defined once. `wire_bytes` accounting, the cost
/// model, and the frame-ledger conservation tests all derive from these
/// constants — they can't drift apart.
pub mod layout {
    /// Per-frame header fields.
    pub const FRAME_PROTO_BYTES: u64 = 2;
    pub const FRAME_KIND_BYTES: u64 = 1;
    pub const FRAME_CORR_BYTES: u64 = 8;
    pub const FRAME_LEN_BYTES: u64 = 4;
    pub const FRAME_PAD_BYTES: u64 = 1;
    /// Total per-frame overhead: proto id, kind tag, correlation id,
    /// payload length prefix, alignment pad.
    pub const FRAME_HEADER_BYTES: u64 =
        FRAME_PROTO_BYTES + FRAME_KIND_BYTES + FRAME_CORR_BYTES + FRAME_LEN_BYTES + FRAME_PAD_BYTES;

    /// Per-envelope header fields.
    pub const ENV_SRC_BYTES: u64 = 2;
    pub const ENV_DST_BYTES: u64 = 2;
    pub const ENV_LEN_BYTES: u64 = 4;
    pub const ENV_CHECKSUM_BYTES: u64 = 8;
    pub const ENV_TRACE_BYTES: u64 = 8;
    pub const ENV_DEADLINE_BYTES: u64 = 8;
    pub const ENV_FRAME_COUNT_BYTES: u64 = 4;
    pub const ENV_MAGIC_BYTES: u64 = 4;
    /// Total per-envelope overhead: src, dst, length, checksum, trace id,
    /// deadline, frame count, magic.
    pub const ENV_HEADER_BYTES: u64 = ENV_SRC_BYTES
        + ENV_DST_BYTES
        + ENV_LEN_BYTES
        + ENV_CHECKSUM_BYTES
        + ENV_TRACE_BYTES
        + ENV_DEADLINE_BYTES
        + ENV_FRAME_COUNT_BYTES
        + ENV_MAGIC_BYTES;
}

/// How a frame participates in the request/response paradigm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Fire-and-forget message (asynchronous protocol).
    OneWay,
    /// Request expecting a response, tagged with a correlation id.
    Request(u64),
    /// Response to the request with the same correlation id.
    Response(u64),
    /// Response indicating the callee had no handler for the protocol.
    NoHandler(u64),
    /// Response indicating the callee refused the request because its
    /// deadline budget was already exhausted on arrival.
    Expired(u64),
}

/// One logical message. Cloning shares the payload (refcount bump).
#[derive(Debug, Clone)]
pub struct Frame {
    pub proto: ProtoId,
    pub kind: FrameKind,
    pub payload: FrameBuf,
}

impl Frame {
    /// Bytes this frame contributes to a transfer: payload plus the frame
    /// header ([`layout::FRAME_HEADER_BYTES`]).
    pub fn wire_bytes(&self) -> u64 {
        self.payload.len() as u64 + layout::FRAME_HEADER_BYTES
    }
}

/// One physical transfer between two machines.
#[derive(Debug, Clone)]
pub struct Envelope {
    pub src: MachineId,
    pub dst: MachineId,
    /// Trace id of the query/job this transfer belongs to
    /// ([`trinity_obs::NO_TRACE`] when untraced). Carried in the envelope
    /// header so a distributed query can be reconstructed across machines.
    pub trace: u64,
    /// Absolute deadline of the query this transfer serves, in
    /// microseconds on the [`crate::deadline_now_us`] clock
    /// ([`crate::NO_DEADLINE`] when unbounded). Carried next to the trace
    /// id so the receiving machine can abort work the client has already
    /// given up on.
    pub deadline: u64,
    pub frames: Vec<Frame>,
}

impl Envelope {
    /// Total bytes on the wire: frames plus the envelope header
    /// ([`layout::ENV_HEADER_BYTES`]).
    pub fn wire_bytes(&self) -> u64 {
        self.frames.iter().map(Frame::wire_bytes).sum::<u64>() + layout::ENV_HEADER_BYTES
    }

    /// Payload bytes carried (headers excluded) — the denominator of the
    /// copies-per-payload-byte ratio.
    pub fn payload_bytes(&self) -> u64 {
        self.frames.iter().map(|f| f.payload.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_bytes_count_headers() {
        let f = Frame {
            proto: 1,
            kind: FrameKind::OneWay,
            payload: FrameBuf::from_vec(vec![0; 100]),
        };
        assert_eq!(f.wire_bytes(), 116);
        let e = Envelope {
            src: MachineId(0),
            dst: MachineId(1),
            trace: 0,
            deadline: crate::NO_DEADLINE,
            frames: vec![f.clone(), f],
        };
        assert_eq!(e.wire_bytes(), 2 * 116 + 40);
        assert_eq!(e.payload_bytes(), 200);
    }

    #[test]
    fn layout_sums_match_the_advertised_overheads() {
        // The historical constants (16-byte frame header, 40-byte envelope
        // header) are now sums of the per-field layout definition; this
        // pins the components so neither can drift from the other.
        assert_eq!(layout::FRAME_HEADER_BYTES, 16);
        assert_eq!(layout::ENV_HEADER_BYTES, 40);
        assert_eq!(
            layout::FRAME_HEADER_BYTES,
            layout::FRAME_PROTO_BYTES
                + layout::FRAME_KIND_BYTES
                + layout::FRAME_CORR_BYTES
                + layout::FRAME_LEN_BYTES
                + layout::FRAME_PAD_BYTES
        );
    }
}
