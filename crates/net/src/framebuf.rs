//! Reference-counted frame payloads and the arena-backed frame pool.
//!
//! The paper's core bet is object access over flat blobs with zero
//! serialization (§3); this module extends that bet to the network path.
//! A [`FrameBuf`] is a `bytes`-style shared slice of an immutable chunk:
//! cloning is a refcount bump, subslicing is free, and the backing memory
//! is recycled through a [`FramePool`] when the last slice drops. The
//! [`PackArena`] packs many small payloads into one contiguous pooled
//! buffer, so an envelope of N frames costs one allocation and exactly
//! one copy per payload byte — the "one-copy contract" the
//! `net.frame_copy_bytes / net.frame_payload_bytes` ratio gates on
//! (see DESIGN.md §14).
//!
//! Ownership rules:
//!
//! * a sealed chunk is immutable — every [`FrameBuf`] over it is a read
//!   view, safe to ship across "machines" (threads) and hold in caches;
//! * the chunk returns to its pool only when the **last** slice drops, so
//!   a consumer may hold a subslice of one frame indefinitely while its
//!   neighbors from the same envelope are long gone;
//! * recycling clears length but keeps capacity (bounded by
//!   [`MAX_RECYCLED_CAPACITY`]), so steady-state packing allocates
//!   nothing.

use std::ops::{Deref, Range};
use std::sync::{Arc, Mutex, Weak};

use crate::envelope::{Frame, FrameKind};
use crate::ProtoId;

/// Spare buffers a pool retains; beyond this, dropped chunks free memory.
const MAX_SPARES: usize = 32;
/// Largest buffer capacity worth recycling — oversized one-off transfers
/// should not pin their high-water mark forever.
pub const MAX_RECYCLED_CAPACITY: usize = 1 << 20;
/// Default capacity for a fresh arena when the pool has no spare.
const DEFAULT_ARENA_CAPACITY: usize = 4096;

/// The immutable backing store of one or more [`FrameBuf`] slices. On
/// last drop the buffer is returned to its pool (if the pool is still
/// alive), cleared but with capacity intact.
struct Chunk {
    data: Vec<u8>,
    pool: Option<Weak<PoolInner>>,
}

impl Drop for Chunk {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.as_ref().and_then(Weak::upgrade) {
            pool.recycle(std::mem::take(&mut self.data));
        }
    }
}

struct PoolInner {
    spares: Mutex<Vec<Vec<u8>>>,
}

impl PoolInner {
    fn recycle(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > MAX_RECYCLED_CAPACITY {
            return;
        }
        buf.clear();
        let mut spares = self.spares.lock().unwrap();
        if spares.len() < MAX_SPARES {
            spares.push(buf);
        }
    }
}

/// A bounded free-list of arena buffers. Cloning shares the pool.
#[derive(Clone)]
pub struct FramePool {
    inner: Arc<PoolInner>,
}

impl Default for FramePool {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for FramePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FramePool")
            .field("spares", &self.spares())
            .finish()
    }
}

impl FramePool {
    pub fn new() -> Self {
        FramePool {
            inner: Arc::new(PoolInner {
                spares: Mutex::new(Vec::new()),
            }),
        }
    }

    /// An empty buffer to fill: a recycled spare when one is available,
    /// fresh otherwise.
    pub fn take(&self) -> Vec<u8> {
        self.inner
            .spares
            .lock()
            .unwrap()
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(DEFAULT_ARENA_CAPACITY))
    }

    /// Seal a filled buffer into a shared slice over the whole buffer.
    /// The buffer comes back to this pool when the last slice drops.
    pub fn seal(&self, data: Vec<u8>) -> FrameBuf {
        let len = data.len();
        FrameBuf {
            chunk: Arc::new(Chunk {
                data,
                pool: Some(Arc::downgrade(&self.inner)),
            }),
            start: 0,
            len,
        }
    }

    /// Spare buffers currently parked in the pool (observability for the
    /// recycling tests).
    pub fn spares(&self) -> usize {
        self.inner.spares.lock().unwrap().len()
    }
}

/// A cheaply clonable, zero-cost-sliceable view of immutable payload
/// bytes — the wire path's replacement for owned `Vec<u8>` payloads.
#[derive(Clone)]
pub struct FrameBuf {
    chunk: Arc<Chunk>,
    start: usize,
    len: usize,
}

impl FrameBuf {
    /// An empty buffer (no allocation).
    pub fn new() -> Self {
        FrameBuf::from_vec(Vec::new())
    }

    /// Adopt an owned vector without copying. Not pool-backed: the memory
    /// frees normally on last drop. This is the response path — a handler
    /// builds its reply once and the wire ships that exact buffer.
    pub fn from_vec(data: Vec<u8>) -> Self {
        let len = data.len();
        FrameBuf {
            chunk: Arc::new(Chunk { data, pool: None }),
            start: 0,
            len,
        }
    }

    /// Copy `bytes` into a fresh buffer. The explicit-copy constructor:
    /// call sites pair it with the `net.frame_copy_bytes` counter.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        FrameBuf::from_vec(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.chunk.data[self.start..self.start + self.len]
    }

    /// A sub-view of this buffer (refcount bump, no copy). `range` is
    /// relative to this view.
    ///
    /// # Panics
    /// Panics when `range` exceeds the view.
    pub fn slice(&self, range: Range<usize>) -> FrameBuf {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds of FrameBuf of len {}",
            self.len
        );
        FrameBuf {
            chunk: Arc::clone(&self.chunk),
            start: self.start + range.start,
            len: range.end - range.start,
        }
    }

    /// Extract the bytes as an owned vector. Zero-copy when this is the
    /// only view and it spans its whole chunk (the common case for call
    /// replies); otherwise copies.
    pub fn into_vec(self) -> Vec<u8> {
        if self.start == 0 && self.len == self.chunk.data.len() {
            match Arc::try_unwrap(self.chunk) {
                // `take` empties the chunk before its Drop runs, so a
                // pooled chunk recycles nothing (capacity 0 is skipped).
                Ok(mut chunk) => return std::mem::take(&mut chunk.data),
                Err(chunk) => return chunk.data.clone(),
            }
        }
        self.as_slice().to_vec()
    }

    /// Number of live views sharing this buffer's chunk (tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.chunk)
    }
}

impl Default for FrameBuf {
    fn default() -> Self {
        FrameBuf::new()
    }
}

impl Deref for FrameBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for FrameBuf {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for FrameBuf {
    fn from(data: Vec<u8>) -> Self {
        FrameBuf::from_vec(data)
    }
}

impl From<&[u8]> for FrameBuf {
    fn from(bytes: &[u8]) -> Self {
        FrameBuf::copy_from_slice(bytes)
    }
}

impl std::fmt::Debug for FrameBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "FrameBuf({} bytes)", self.len)
    }
}

impl PartialEq for FrameBuf {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for FrameBuf {}

impl PartialEq<[u8]> for FrameBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}
impl PartialEq<&[u8]> for FrameBuf {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<Vec<u8>> for FrameBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<const N: usize> PartialEq<[u8; N]> for FrameBuf {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}
impl<const N: usize> PartialEq<&[u8; N]> for FrameBuf {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.as_slice() == *other
    }
}
impl PartialEq<FrameBuf> for Vec<u8> {
    fn eq(&self, other: &FrameBuf) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl PartialEq<FrameBuf> for [u8] {
    fn eq(&self, other: &FrameBuf) -> bool {
        self == other.as_slice()
    }
}

// ---------------------------------------------------------------------
// PackArena: many payloads, one buffer
// ---------------------------------------------------------------------

struct FrameMeta {
    proto: ProtoId,
    kind: FrameKind,
    start: usize,
    len: usize,
}

/// Accumulates frame payloads contiguously in one pooled buffer; sealing
/// turns the buffer into a shared chunk and the recorded spans into
/// [`Frame`]s whose payloads are zero-copy slices of it. This is the pack
/// buffer behind [`crate::Endpoint::send`]'s transparent packing: one
/// allocation and one payload copy per envelope, regardless of frame
/// count.
pub struct PackArena {
    arena: Vec<u8>,
    metas: Vec<FrameMeta>,
}

impl Default for PackArena {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for PackArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackArena")
            .field("frames", &self.metas.len())
            .field("payload_bytes", &self.arena.len())
            .finish()
    }
}

impl PackArena {
    pub fn new() -> Self {
        PackArena {
            arena: Vec::new(),
            metas: Vec::new(),
        }
    }

    /// Append one frame, copying `payload` into the arena (the *one*
    /// copy of the one-copy contract). Returns the bytes copied.
    pub fn push(&mut self, proto: ProtoId, kind: FrameKind, payload: &[u8]) -> usize {
        let start = self.arena.len();
        self.arena.extend_from_slice(payload);
        self.metas.push(FrameMeta {
            proto,
            kind,
            start,
            len: payload.len(),
        });
        payload.len()
    }

    /// Buffered frame count.
    pub fn frame_count(&self) -> usize {
        self.metas.len()
    }

    /// Buffered payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.arena.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metas.is_empty()
    }

    /// Seal the buffered payloads into frames sharing one chunk, leaving
    /// the arena ready for the next batch (refilled from `pool`). The
    /// chunk recycles into `pool` when the last consumer drops its slice.
    pub fn seal(&mut self, pool: &FramePool) -> Vec<Frame> {
        let data = std::mem::replace(&mut self.arena, pool.take());
        let sealed = pool.seal(data);
        self.metas
            .drain(..)
            .map(|m| Frame {
                proto: m.proto,
                kind: m.kind,
                payload: sealed.slice(m.start..m.start + m.len),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_and_clone_share_the_chunk() {
        let buf = FrameBuf::from_vec(b"hello trinity".to_vec());
        let hello = buf.slice(0..5);
        let trinity = buf.slice(6..13);
        assert_eq!(hello, b"hello");
        assert_eq!(trinity, b"trinity");
        assert_eq!(buf.ref_count(), 3);
        let c = trinity.clone();
        assert_eq!(buf.ref_count(), 4);
        drop((hello, trinity, c));
        assert_eq!(buf.ref_count(), 1);
    }

    #[test]
    fn into_vec_moves_unique_whole_chunk() {
        let v = vec![7u8; 100];
        let ptr = v.as_ptr();
        let buf = FrameBuf::from_vec(v);
        let back = buf.into_vec();
        assert_eq!(
            back.as_ptr(),
            ptr,
            "unique whole-chunk into_vec must not copy"
        );
        // A subslice, by contrast, copies.
        let buf = FrameBuf::from_vec(back);
        assert_eq!(buf.slice(1..3).into_vec(), vec![7u8; 2]);
    }

    #[test]
    fn pool_recycles_on_last_drop_only() {
        let pool = FramePool::new();
        let mut arena = PackArena::new();
        arena.push(1, FrameKind::OneWay, b"aaaa");
        arena.push(1, FrameKind::OneWay, b"bbbb");
        let frames = arena.seal(&pool);
        assert_eq!(pool.spares(), 0);
        let keep = frames[1].payload.clone();
        drop(frames);
        // One slice still alive: nothing recycled.
        assert_eq!(pool.spares(), 0);
        assert_eq!(keep, b"bbbb");
        drop(keep);
        assert_eq!(pool.spares(), 1, "last drop returns the arena to the pool");
        // The next seal reuses the spare.
        arena.push(2, FrameKind::OneWay, b"cc");
        let frames = arena.seal(&pool);
        assert_eq!(frames[0].payload, b"cc");
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let pool = FramePool::new();
        let big = vec![0u8; MAX_RECYCLED_CAPACITY + 1];
        drop(pool.seal(big));
        assert_eq!(pool.spares(), 0);
    }
}
