//! Deterministic fault injection for the fabric (the trinity-chaos
//! substrate).
//!
//! A [`FaultPlan`] describes how the interconnect should misbehave: drop,
//! delay, duplicate, or reorder envelopes on individual links, partition
//! pairs of machines asymmetrically, and crash/revive whole machines on a
//! schedule keyed on envelope count, modeled wire time, or workload marks.
//! The plan is *seeded*: every per-envelope decision is a pure function of
//! `(seed, src, dst, link sequence number)`, so the same plan applied to
//! the same traffic injects the same faults — the property the chaos
//! harness's replay and shrinking machinery is built on.
//!
//! Every injected fault is appended to a [`FaultLog`]. A log can be
//! re-applied verbatim with [`FaultPlan::replay`], which turns the
//! recorded decisions back into a plan that injects exactly those faults
//! and nothing else — the `trinity-chaos` crate uses this to replay and
//! bisect failing schedules.
//!
//! # Determinism contract
//!
//! Fault decisions are keyed on the *per-link* sequence number (the
//! ordinal of the envelope on its `(src, dst)` link), never on global
//! arrival order: concurrent senders race for global order, but each
//! link's own ordinals are stable as long as the workload's per-link
//! traffic is. Logs are compared in canonical `(src, dst, seq)` order for
//! the same reason. Delays are FIFO-preserving: a delayed envelope raises
//! a per-link delivery barrier, and everything behind it on the same link
//! queues behind that barrier — the fabric's per-pair FIFO guarantee
//! survives arbitrary delay plans.

use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use trinity_obs::{Counter, Registry};

use crate::cost::CostModel;
use crate::deadline::deadline_now_us;
use crate::envelope::Envelope;
use crate::fabric::Router;
use crate::MachineId;

/// When a scheduled crash/revive fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Trigger {
    /// After the fabric has transmitted this many remote envelopes.
    Envelopes(u64),
    /// After the cost model has charged this much modeled wire time.
    ModeledUs(u64),
    /// When the workload calls [`crate::Fabric::chaos_mark`] with this
    /// value (checkpoint boundaries, superstep fences, phase changes).
    Mark(u64),
}

/// A scheduled whole-machine event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeEvent {
    /// Kill the machine (same semantics as [`crate::Fabric::kill`]).
    Crash(u16),
    /// Revive the machine.
    Revive(u16),
}

/// Per-envelope delay policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayPolicy {
    /// Probability an envelope is delayed.
    pub prob: f64,
    /// Fixed delay component, microseconds.
    pub base_us: u64,
    /// Seeded uniform jitter in `[0, jitter_us]` added to the base.
    pub jitter_us: u64,
}

/// Per-envelope bounded-reordering policy: a selected envelope is held
/// until the *next* envelope on the same link passes it (or `hold_us`
/// elapses), swapping adjacent deliveries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReorderPolicy {
    /// Probability an envelope is held for reordering.
    pub prob: f64,
    /// Maximum hold before the envelope is released anyway.
    pub hold_us: u64,
}

/// An asymmetric one-way partition of a single link: envelopes from
/// `from` to `to` whose link sequence number falls in
/// `[from_seq, to_seq)` are swallowed. Partition the reverse link too for
/// a symmetric split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Sending side of the partitioned link.
    pub from: u16,
    /// Receiving side of the partitioned link.
    pub to: u16,
    /// First link sequence number swallowed.
    pub from_seq: u64,
    /// First link sequence number delivered again (exclusive end).
    pub to_seq: u64,
}

/// A seeded description of how the fabric should misbehave.
///
/// Construct with [`FaultPlan::new`] and the `with_*` builders; pass it to
/// the fabric via [`crate::FabricConfig::faults`]. The all-defaults plan
/// (`FaultPlan::new(seed)`) injects nothing and is byte-identical to a
/// fault-free fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for every per-envelope decision.
    pub seed: u64,
    /// Probability an envelope is dropped.
    pub drop: f64,
    /// Delay policy.
    pub delay: DelayPolicy,
    /// Probability an envelope is duplicated (delivered twice).
    pub duplicate: f64,
    /// Bounded reordering policy.
    pub reorder: ReorderPolicy,
    /// Link partition windows.
    pub partitions: Vec<Partition>,
    /// Crash/revive schedule.
    pub schedule: Vec<(Trigger, NodeEvent)>,
    /// When set, the plan ignores the seeded policies and re-applies
    /// exactly the recorded faults (see [`FaultPlan::replay`]).
    replay: Option<FaultLog>,
}

impl FaultPlan {
    /// A plan that injects nothing (until builders add policies).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop: 0.0,
            delay: DelayPolicy {
                prob: 0.0,
                base_us: 0,
                jitter_us: 0,
            },
            duplicate: 0.0,
            reorder: ReorderPolicy {
                prob: 0.0,
                hold_us: 2_000,
            },
            partitions: Vec::new(),
            schedule: Vec::new(),
            replay: None,
        }
    }

    /// Same plan, different seed — the idiom for sweeping pinned seeds.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Drop each envelope with probability `p`.
    pub fn with_drop(mut self, p: f64) -> Self {
        self.drop = p;
        self
    }

    /// Delay envelopes with probability `prob` by `base_us` plus seeded
    /// jitter in `[0, jitter_us]`.
    pub fn with_delay(mut self, prob: f64, base_us: u64, jitter_us: u64) -> Self {
        self.delay = DelayPolicy {
            prob,
            base_us,
            jitter_us,
        };
        self
    }

    /// Duplicate each envelope with probability `p`.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        self.duplicate = p;
        self
    }

    /// Hold envelopes with probability `prob` (released when the next
    /// envelope on the link passes, or after `hold_us`).
    pub fn with_reorder(mut self, prob: f64, hold_us: u64) -> Self {
        self.reorder = ReorderPolicy { prob, hold_us };
        self
    }

    /// Add a one-way partition window on a link.
    pub fn with_partition(mut self, p: Partition) -> Self {
        self.partitions.push(p);
        self
    }

    /// Schedule a crash or revive.
    pub fn with_event(mut self, trigger: Trigger, event: NodeEvent) -> Self {
        self.schedule.push((trigger, event));
        self
    }

    /// A plan that re-applies exactly the faults in `log`: link faults
    /// fire on the same `(src, dst, seq)` envelopes, crashes/revives on
    /// the same triggers. Policy probabilities are ignored.
    pub fn replay(log: &FaultLog) -> Self {
        let mut plan = FaultPlan::new(0);
        for rec in &log.records {
            match rec.kind {
                FaultKind::Crash(t) => plan.schedule.push((t, NodeEvent::Crash(rec.src))),
                FaultKind::Revive(t) => plan.schedule.push((t, NodeEvent::Revive(rec.src))),
                _ => {}
            }
        }
        plan.replay = Some(log.clone());
        plan
    }

    /// The recorded faults this plan replays, if it is a replay plan.
    pub fn replay_records(&self) -> Option<&[FaultRecord]> {
        self.replay.as_ref().map(|l| l.records.as_slice())
    }

    /// Whether the plan can inject anything at all.
    pub fn is_neutral(&self) -> bool {
        self.drop == 0.0
            && self.delay.prob == 0.0
            && self.duplicate == 0.0
            && self.reorder.prob == 0.0
            && self.partitions.is_empty()
            && self.schedule.is_empty()
            && self.replay.is_none()
    }
}

/// What was injected on one envelope (or one scheduled machine event).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Envelope swallowed by the drop policy.
    Drop,
    /// Envelope delivery postponed by this many microseconds.
    Delay(u64),
    /// Envelope delivered twice.
    Duplicate,
    /// Envelope held so its successor passes it.
    Reorder,
    /// Envelope swallowed by a partition window.
    Partition,
    /// Machine killed by the schedule (trigger recorded for replay).
    Crash(Trigger),
    /// Machine revived by the schedule.
    Revive(Trigger),
}

/// One injected fault. For link faults `seq` is the envelope's per-link
/// ordinal; for crash/revive it is the event's index in the schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Sending machine (for crash/revive: the affected machine).
    pub src: u16,
    /// Receiving machine (for crash/revive: the affected machine).
    pub dst: u16,
    /// Per-link envelope ordinal (or schedule index).
    pub seq: u64,
    /// What was injected.
    pub kind: FaultKind,
}

/// The replayable record of every fault a chaos run injected.
///
/// Equality is order-insensitive: two logs are equal when their canonical
/// `(src, dst, seq)` orderings match, because concurrent links race for
/// append order even when each link's decisions are identical.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    /// Records in append (observation) order.
    pub records: Vec<FaultRecord>,
}

impl PartialEq for FaultLog {
    fn eq(&self, other: &Self) -> bool {
        self.canonical() == other.canonical()
    }
}

impl Eq for FaultLog {}

impl FaultLog {
    /// Number of recorded faults.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records sorted by `(src, dst, seq, kind)` — the stable order used
    /// for equality and for the encoded form.
    pub fn canonical(&self) -> Vec<FaultRecord> {
        let mut v = self.records.clone();
        v.sort_by_key(|r| (r.src, r.dst, r.seq, kind_rank(&r.kind)));
        v
    }

    /// Serialize to the line-oriented seed/replay format (see DESIGN.md
    /// §8): one fault per line, canonical order.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for r in self.canonical() {
            let line = match r.kind {
                FaultKind::Drop => format!("drop {} {} {}", r.src, r.dst, r.seq),
                FaultKind::Delay(us) => format!("delay {} {} {} {us}", r.src, r.dst, r.seq),
                FaultKind::Duplicate => format!("dup {} {} {}", r.src, r.dst, r.seq),
                FaultKind::Reorder => format!("reorder {} {} {}", r.src, r.dst, r.seq),
                FaultKind::Partition => format!("part {} {} {}", r.src, r.dst, r.seq),
                FaultKind::Crash(t) => format!("crash {} {} {}", r.src, r.seq, encode_trigger(t)),
                FaultKind::Revive(t) => format!("revive {} {} {}", r.src, r.seq, encode_trigger(t)),
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Parse the format produced by [`FaultLog::encode`]. Returns `None`
    /// on any malformed line.
    pub fn decode(text: &str) -> Option<FaultLog> {
        let mut records = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut it = line.split_whitespace();
            let tag = it.next()?;
            let rec = match tag {
                "drop" | "dup" | "reorder" | "part" => {
                    let src: u16 = it.next()?.parse().ok()?;
                    let dst: u16 = it.next()?.parse().ok()?;
                    let seq: u64 = it.next()?.parse().ok()?;
                    let kind = match tag {
                        "drop" => FaultKind::Drop,
                        "dup" => FaultKind::Duplicate,
                        "reorder" => FaultKind::Reorder,
                        _ => FaultKind::Partition,
                    };
                    FaultRecord {
                        src,
                        dst,
                        seq,
                        kind,
                    }
                }
                "delay" => {
                    let src: u16 = it.next()?.parse().ok()?;
                    let dst: u16 = it.next()?.parse().ok()?;
                    let seq: u64 = it.next()?.parse().ok()?;
                    let us: u64 = it.next()?.parse().ok()?;
                    FaultRecord {
                        src,
                        dst,
                        seq,
                        kind: FaultKind::Delay(us),
                    }
                }
                "crash" | "revive" => {
                    let m: u16 = it.next()?.parse().ok()?;
                    let seq: u64 = it.next()?.parse().ok()?;
                    let trig = decode_trigger(it.next()?, it.next()?)?;
                    FaultRecord {
                        src: m,
                        dst: m,
                        seq,
                        kind: if tag == "crash" {
                            FaultKind::Crash(trig)
                        } else {
                            FaultKind::Revive(trig)
                        },
                    }
                }
                _ => return None,
            };
            if it.next().is_some() {
                return None;
            }
            records.push(rec);
        }
        Some(FaultLog { records })
    }
}

fn kind_rank(k: &FaultKind) -> u8 {
    match k {
        FaultKind::Drop => 0,
        FaultKind::Delay(_) => 1,
        FaultKind::Duplicate => 2,
        FaultKind::Reorder => 3,
        FaultKind::Partition => 4,
        FaultKind::Crash(_) => 5,
        FaultKind::Revive(_) => 6,
    }
}

fn encode_trigger(t: Trigger) -> String {
    match t {
        Trigger::Envelopes(n) => format!("env {n}"),
        Trigger::ModeledUs(n) => format!("us {n}"),
        Trigger::Mark(n) => format!("mark {n}"),
    }
}

fn decode_trigger(tag: &str, val: &str) -> Option<Trigger> {
    let n: u64 = val.parse().ok()?;
    match tag {
        "env" => Some(Trigger::Envelopes(n)),
        "us" => Some(Trigger::ModeledUs(n)),
        "mark" => Some(Trigger::Mark(n)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Seeded decisions
// ---------------------------------------------------------------------

/// xorshift64* over a mixed key: every decision is a pure function of the
/// plan seed and the envelope's link coordinates, so replays and reruns
/// agree (same idiom as the heartbeat jitter PRNG).
fn link_rand(seed: u64, src: u16, dst: u16, seq: u64, salt: u64) -> u64 {
    // Multiplicative diffusion first: the `| 1` nonzero guard must not
    // erase low-bit differences between nearby seeds.
    let mut x = seed
        .wrapping_mul(0xFF51_AFD7_ED55_8CCD)
        .wrapping_add(((src as u64) << 48) ^ ((dst as u64) << 32))
        .wrapping_add(seq.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(salt.wrapping_mul(0xD1B5_4A32_D192_ED03))
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

// ---------------------------------------------------------------------
// Runtime state
// ---------------------------------------------------------------------

/// Where a chaos-routed envelope should go.
enum Action {
    Deliver,
    Swallow(FaultKind),
    Delay(u64),
    Duplicate,
    Hold,
}

#[derive(Default)]
struct LinkState {
    /// Next envelope ordinal on this link.
    seq: u64,
    /// Absolute time before which nothing on this link may be delivered
    /// (the FIFO barrier raised by delayed envelopes).
    barrier_us: u64,
    /// Envelopes from this link still parked in the timer. While any
    /// remain, later envelopes must route through the timer too: the
    /// barrier alone cannot order an inline delivery against a timer
    /// item whose due time has passed but which the timer thread has not
    /// fired yet.
    in_timer: u64,
    /// An envelope held for reordering, waiting for a successor to pass
    /// it. `None` inside the slot means the timer already released it.
    held: Option<Arc<Mutex<Option<Envelope>>>>,
}

/// A link's state shared between `transmit` and the timer thread.
type SharedLink = Arc<Mutex<LinkState>>;

struct TimedItem {
    due_us: u64,
    /// Tie-break so equal due times deliver in schedule order.
    order: u64,
    what: Timed,
}

enum Timed {
    /// Deliver the envelope and decrement its link's in-timer count.
    Deliver(Envelope, SharedLink),
    Release(Arc<Mutex<Option<Envelope>>>),
}

impl PartialEq for TimedItem {
    fn eq(&self, other: &Self) -> bool {
        self.due_us == other.due_us && self.order == other.order
    }
}

impl Eq for TimedItem {}

impl PartialOrd for TimedItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimedItem {
    /// Reversed: BinaryHeap is a max-heap, we want the earliest due first.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (other.due_us, other.order).cmp(&(self.due_us, self.order))
    }
}

struct TimerQueue {
    heap: BinaryHeap<TimedItem>,
    next_order: u64,
    stopped: bool,
}

struct ScheduledEvent {
    trigger: Trigger,
    event: NodeEvent,
    /// Schedule index (stable id in the log).
    index: u64,
    fired: AtomicBool,
}

/// Cached chaos counters for one source machine's scope.
struct ChaosMetrics {
    drops: Arc<Counter>,
    delays: Arc<Counter>,
    dups: Arc<Counter>,
    reorders: Arc<Counter>,
    partition_drops: Arc<Counter>,
}

/// The live fault injector attached to a fabric. Created by the fabric
/// when [`crate::FabricConfig::faults`] is set; reachable through
/// [`crate::Fabric::chaos`].
pub struct ChaosState {
    plan: FaultPlan,
    /// `(src, dst, seq)` → fault, when replaying a recorded log.
    replay_map: Option<HashMap<(u16, u16, u64), FaultKind>>,
    router: Arc<Router>,
    cost: CostModel,
    links: Mutex<HashMap<(u16, u16), SharedLink>>,
    log: Mutex<Vec<FaultRecord>>,
    schedule: Vec<ScheduledEvent>,
    sent_envelopes: AtomicU64,
    modeled_us: AtomicU64,
    /// Frames swallowed by drop/partition decisions (they left the
    /// sender's counters but never reach a receiver).
    swallowed_frames: AtomicU64,
    /// Extra frames created by duplication (they reach a receiver without
    /// a matching sender-side count).
    dup_frames: AtomicU64,
    /// Envelopes currently parked in the timer or a reorder slot.
    pending: AtomicU64,
    /// While disarmed the injector is fully transparent: envelopes pass
    /// through untouched, uncounted, and unlogged. Workloads disarm
    /// during setup (graph loading) so fault decisions and trigger
    /// counts start at the interesting phase.
    armed: AtomicBool,
    timer: Mutex<TimerQueue>,
    timer_cv: Condvar,
    timer_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    metrics: Vec<ChaosMetrics>,
    crash_counter: Arc<Counter>,
    revive_counter: Arc<Counter>,
    /// Cluster registry: every injected fault is also appended to the
    /// flight recorder's event log so a postmortem dump shows *which*
    /// faults landed in the faulting window.
    registry: Arc<Registry>,
}

impl std::fmt::Debug for ChaosState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosState")
            .field("seed", &self.plan.seed)
            .field("faults", &self.log.lock().len())
            .finish()
    }
}

impl ChaosState {
    pub(crate) fn start(
        plan: FaultPlan,
        machines: usize,
        router: Arc<Router>,
        cost: CostModel,
        obs: &Arc<Registry>,
    ) -> Arc<Self> {
        let replay_map = plan.replay.as_ref().map(|log| {
            log.records
                .iter()
                .filter(|r| !matches!(r.kind, FaultKind::Crash(_) | FaultKind::Revive(_)))
                .map(|r| ((r.src, r.dst, r.seq), r.kind))
                .collect()
        });
        let schedule = plan
            .schedule
            .iter()
            .enumerate()
            .map(|(i, (trigger, event))| ScheduledEvent {
                trigger: *trigger,
                event: *event,
                index: i as u64,
                fired: AtomicBool::new(false),
            })
            .collect();
        let metrics = (0..machines as u16)
            .map(|m| {
                let scope = obs.scope(m);
                ChaosMetrics {
                    drops: scope.counter("chaos.drops"),
                    delays: scope.counter("chaos.delays"),
                    dups: scope.counter("chaos.dups"),
                    reorders: scope.counter("chaos.reorders"),
                    partition_drops: scope.counter("chaos.partition_drops"),
                }
            })
            .collect();
        let scope0 = obs.scope(0);
        let state = Arc::new(ChaosState {
            plan,
            replay_map,
            router,
            cost,
            links: Mutex::new(HashMap::new()),
            log: Mutex::new(Vec::new()),
            schedule,
            sent_envelopes: AtomicU64::new(0),
            modeled_us: AtomicU64::new(0),
            swallowed_frames: AtomicU64::new(0),
            dup_frames: AtomicU64::new(0),
            pending: AtomicU64::new(0),
            armed: AtomicBool::new(true),
            timer: Mutex::new(TimerQueue {
                heap: BinaryHeap::new(),
                next_order: 0,
                stopped: false,
            }),
            timer_cv: Condvar::new(),
            timer_handle: Mutex::new(None),
            metrics,
            crash_counter: scope0.counter("chaos.crashes"),
            revive_counter: scope0.counter("chaos.revives"),
            registry: Arc::clone(obs),
        });
        let thread_state = Arc::clone(&state);
        *state.timer_handle.lock() = Some(
            std::thread::Builder::new()
                .name("trinity-chaos-timer".into())
                .spawn(move || timer_loop(thread_state))
                .expect("spawn chaos timer"),
        );
        state
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Snapshot of every fault injected so far (append order).
    pub fn fault_log(&self) -> FaultLog {
        FaultLog {
            records: self.log.lock().clone(),
        }
    }

    /// Envelopes currently held back by delays or reorder slots.
    pub fn pending(&self) -> u64 {
        self.pending.load(Ordering::Acquire)
    }

    /// Frames swallowed by drop/partition faults.
    pub fn swallowed_frames(&self) -> u64 {
        self.swallowed_frames.load(Ordering::Relaxed)
    }

    /// Extra frames minted by duplication faults.
    pub fn duplicated_frames(&self) -> u64 {
        self.dup_frames.load(Ordering::Relaxed)
    }

    /// Arm or disarm the injector. Disarmed, every envelope passes
    /// through untouched and neither link sequence numbers nor trigger
    /// counters advance — arming later starts the fault clock at that
    /// moment, so a workload's setup traffic does not perturb the seeded
    /// decisions for its measured phase.
    pub fn set_armed(&self, armed: bool) {
        self.armed.store(armed, Ordering::Release);
    }

    /// Fire every `Trigger::Mark(value)` event not yet fired. Workloads
    /// call this (via [`crate::Fabric::chaos_mark`]) at logical
    /// boundaries — checkpoint writes, phase changes — so crash schedules
    /// can be keyed on workload progress instead of raw traffic.
    pub fn mark(&self, value: u64) {
        for ev in &self.schedule {
            if ev.trigger == Trigger::Mark(value) {
                self.fire_event(ev);
            }
        }
    }

    /// Block until no envelopes are parked in the injector (all delays
    /// elapsed, all held envelopes released), or `timeout` passes.
    /// Returns whether the injector quiesced.
    pub fn quiesce(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.pending() > 0 {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        true
    }

    /// Chaos-routed transmit: decide this envelope's fate, record it, and
    /// either deliver (now or later) or swallow it. Called by the
    /// endpoint for remote envelopes only — local loopback cannot fail.
    pub(crate) fn transmit(&self, env: Envelope) -> crate::Result<()> {
        if !self.armed.load(Ordering::Acquire) {
            return self.router.deliver(env);
        }
        let n = self.sent_envelopes.fetch_add(1, Ordering::Relaxed) + 1;
        let wire_us = (self.cost.seconds(1, env.wire_bytes()) * 1e6) as u64;
        let m = self.modeled_us.fetch_add(wire_us, Ordering::Relaxed) + wire_us;
        self.check_schedule(n, m);

        let key = (env.src.0, env.dst.0);
        let link_arc = {
            let mut links = self.links.lock();
            Arc::clone(links.entry(key).or_default())
        };
        // The link lock is held across delivery/scheduling so this link's
        // envelopes enter the inbox (or the timer) in sequence order —
        // the same discipline `flush_to` uses for pack buffers.
        let mut link = link_arc.lock();
        let seq = link.seq;
        link.seq += 1;
        let frames = env.frames.len() as u64;
        let now = deadline_now_us();
        let action = self.decide(key.0, key.1, seq, now, &link);

        match action {
            Action::Swallow(kind) => {
                self.record(key.0, key.1, seq, kind);
                self.swallowed_frames.fetch_add(frames, Ordering::Relaxed);
                match kind {
                    FaultKind::Partition => {
                        self.metrics[key.0 as usize].partition_drops.inc();
                    }
                    _ => self.metrics[key.0 as usize].drops.inc(),
                }
                // The sender sees success: a dropped packet looks like
                // silence, never like an error at the send site.
                Ok(())
            }
            Action::Hold => {
                self.record(key.0, key.1, seq, FaultKind::Reorder);
                self.metrics[key.0 as usize].reorders.inc();
                let slot = Arc::new(Mutex::new(Some(env)));
                link.held = Some(Arc::clone(&slot));
                self.pending.fetch_add(1, Ordering::AcqRel);
                self.schedule_timed(now + self.plan.reorder.hold_us, Timed::Release(slot));
                Ok(())
            }
            Action::Delay(us) => {
                self.record(key.0, key.1, seq, FaultKind::Delay(us));
                self.metrics[key.0 as usize].delays.inc();
                let due = (now + us).max(link.barrier_us);
                link.barrier_us = due;
                link.in_timer += 1;
                self.pending.fetch_add(1, Ordering::AcqRel);
                self.schedule_timed(due, Timed::Deliver(env, Arc::clone(&link_arc)));
                // The swap completes behind the successor: held envelopes
                // are always released *after* the current one.
                self.release_held(&mut link, &link_arc, Some(due));
                Ok(())
            }
            Action::Duplicate => {
                self.record(key.0, key.1, seq, FaultKind::Duplicate);
                self.metrics[key.0 as usize].dups.inc();
                self.dup_frames.fetch_add(frames, Ordering::Relaxed);
                // Frame payloads are shared slices: duplicating the
                // envelope bumps refcounts, copying nothing — so the copy
                // counter (a true memcpy count) stays untouched here.
                let copy = env.clone();
                if link.barrier_us > now || link.in_timer > 0 {
                    let due = link.barrier_us.max(now);
                    link.in_timer += 2;
                    self.pending.fetch_add(2, Ordering::AcqRel);
                    self.schedule_timed(due, Timed::Deliver(env, Arc::clone(&link_arc)));
                    self.schedule_timed(due, Timed::Deliver(copy, Arc::clone(&link_arc)));
                    self.release_held(&mut link, &link_arc, Some(due));
                    Ok(())
                } else {
                    let r = self.router.deliver(env);
                    let _ = self.router.deliver(copy);
                    self.release_held(&mut link, &link_arc, None);
                    r
                }
            }
            Action::Deliver => {
                if link.barrier_us > now || link.in_timer > 0 {
                    // FIFO: queue behind the timer items in front.
                    let due = link.barrier_us.max(now);
                    link.in_timer += 1;
                    self.pending.fetch_add(1, Ordering::AcqRel);
                    self.schedule_timed(due, Timed::Deliver(env, Arc::clone(&link_arc)));
                    self.release_held(&mut link, &link_arc, Some(due));
                    Ok(())
                } else {
                    let r = self.router.deliver(env);
                    self.release_held(&mut link, &link_arc, None);
                    r
                }
            }
        }
    }

    /// Decide an envelope's fate. Pure in `(seed, src, dst, seq)` except
    /// for reordering, which only arms when the link has no active delay
    /// barrier and no envelope already held (deterministic whenever the
    /// reorder policy runs without a delay policy).
    fn decide(&self, src: u16, dst: u16, seq: u64, now: u64, link: &LinkState) -> Action {
        if let Some(map) = &self.replay_map {
            return match map.get(&(src, dst, seq)) {
                Some(FaultKind::Drop) => Action::Swallow(FaultKind::Drop),
                Some(FaultKind::Partition) => Action::Swallow(FaultKind::Partition),
                Some(FaultKind::Delay(us)) => Action::Delay(*us),
                Some(FaultKind::Duplicate) => Action::Duplicate,
                Some(FaultKind::Reorder) => {
                    if link.barrier_us <= now && link.held.is_none() {
                        Action::Hold
                    } else {
                        Action::Deliver
                    }
                }
                _ => Action::Deliver,
            };
        }
        let p = &self.plan;
        for part in &p.partitions {
            if part.from == src && part.to == dst && seq >= part.from_seq && seq < part.to_seq {
                return Action::Swallow(FaultKind::Partition);
            }
        }
        if p.drop > 0.0 && unit(link_rand(p.seed, src, dst, seq, 1)) < p.drop {
            return Action::Swallow(FaultKind::Drop);
        }
        if p.reorder.prob > 0.0
            && unit(link_rand(p.seed, src, dst, seq, 2)) < p.reorder.prob
            && link.barrier_us <= now
            && link.held.is_none()
        {
            return Action::Hold;
        }
        if p.duplicate > 0.0 && unit(link_rand(p.seed, src, dst, seq, 3)) < p.duplicate {
            return Action::Duplicate;
        }
        if p.delay.prob > 0.0 && unit(link_rand(p.seed, src, dst, seq, 4)) < p.delay.prob {
            let jitter = if p.delay.jitter_us == 0 {
                0
            } else {
                link_rand(p.seed, src, dst, seq, 5) % (p.delay.jitter_us + 1)
            };
            return Action::Delay(p.delay.base_us + jitter);
        }
        Action::Deliver
    }

    /// Release a reorder-held envelope *behind* the current one: the swap
    /// is complete the moment its successor is delivered or scheduled.
    fn release_held(&self, link: &mut LinkState, link_arc: &SharedLink, after_due: Option<u64>) {
        if let Some(slot) = link.held.take() {
            if let Some(held) = slot.lock().take() {
                match after_due {
                    Some(due) => {
                        link.in_timer += 1;
                        self.schedule_timed(due, Timed::Deliver(held, Arc::clone(link_arc)));
                    }
                    None => {
                        let _ = self.router.deliver(held);
                        self.pending.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
        }
    }

    fn record(&self, src: u16, dst: u16, seq: u64, kind: FaultKind) {
        self.registry
            .flight_event(format!("fault {kind:?} link {src}->{dst} seq {seq}"));
        self.log.lock().push(FaultRecord {
            src,
            dst,
            seq,
            kind,
        });
    }

    fn check_schedule(&self, envelopes: u64, modeled_us: u64) {
        for ev in &self.schedule {
            let due = match ev.trigger {
                Trigger::Envelopes(n) => envelopes >= n,
                Trigger::ModeledUs(n) => modeled_us >= n,
                Trigger::Mark(_) => false,
            };
            if due {
                self.fire_event(ev);
            }
        }
    }

    fn fire_event(&self, ev: &ScheduledEvent) {
        if ev.fired.swap(true, Ordering::AcqRel) {
            return;
        }
        let (m, kind) = match ev.event {
            NodeEvent::Crash(m) => {
                self.router.set_dead(MachineId(m), true);
                self.crash_counter.inc();
                (m, FaultKind::Crash(ev.trigger))
            }
            NodeEvent::Revive(m) => {
                self.router.set_dead(MachineId(m), false);
                self.revive_counter.inc();
                (m, FaultKind::Revive(ev.trigger))
            }
        };
        self.record(m, m, ev.index, kind);
    }

    fn schedule_timed(&self, due_us: u64, what: Timed) {
        let mut q = self.timer.lock();
        if q.stopped {
            // Late arrival during shutdown: deliver inline so nothing
            // leaks.
            drop(q);
            self.fire_timed(what);
            return;
        }
        let order = q.next_order;
        q.next_order += 1;
        q.heap.push(TimedItem {
            due_us,
            order,
            what,
        });
        drop(q);
        self.timer_cv.notify_all();
    }

    fn fire_timed(&self, what: Timed) {
        match what {
            Timed::Deliver(env, link) => {
                // Deliver before decrementing: once in_timer drops, a
                // concurrent sender may deliver inline, and the inbox
                // must already hold this envelope for FIFO to hold.
                let _ = self.router.deliver(env);
                link.lock().in_timer -= 1;
                self.pending.fetch_sub(1, Ordering::AcqRel);
            }
            Timed::Release(slot) => {
                if let Some(env) = slot.lock().take() {
                    let _ = self.router.deliver(env);
                    self.pending.fetch_sub(1, Ordering::AcqRel);
                }
            }
        }
    }

    /// Stop the timer thread, delivering everything still parked. Called
    /// by fabric shutdown before the inboxes close.
    pub(crate) fn stop(&self) {
        let drained: Vec<TimedItem> = {
            let mut q = self.timer.lock();
            if q.stopped {
                return;
            }
            q.stopped = true;
            std::mem::take(&mut q.heap).into_sorted_vec()
        };
        self.timer_cv.notify_all();
        if let Some(h) = self.timer_handle.lock().take() {
            let _ = h.join();
        }
        // into_sorted_vec sorts ascending by Ord; our Ord is reversed
        // (min-heap), so iterate in reverse for due-time order.
        for item in drained.into_iter().rev() {
            self.fire_timed(item.what);
        }
    }
}

fn timer_loop(state: Arc<ChaosState>) {
    loop {
        let mut q = state.timer.lock();
        if q.stopped {
            return;
        }
        let now = deadline_now_us();
        let mut due = Vec::new();
        while q.heap.peek().is_some_and(|t| t.due_us <= now) {
            due.push(q.heap.pop().expect("peeked"));
        }
        if !due.is_empty() {
            drop(q);
            for item in due {
                state.fire_timed(item.what);
            }
            continue;
        }
        match q.heap.peek().map(|t| t.due_us) {
            Some(next) => {
                let wait = Duration::from_micros(next.saturating_sub(now).max(1));
                state.timer_cv.wait_for(&mut q, wait);
            }
            None => state.timer_cv.wait(&mut q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(src: u16, dst: u16, seq: u64, kind: FaultKind) -> FaultRecord {
        FaultRecord {
            src,
            dst,
            seq,
            kind,
        }
    }

    #[test]
    fn log_codec_roundtrip() {
        let log = FaultLog {
            records: vec![
                rec(2, 1, 9, FaultKind::Delay(1500)),
                rec(0, 1, 3, FaultKind::Drop),
                rec(1, 1, 0, FaultKind::Crash(Trigger::Mark(4))),
                rec(0, 2, 7, FaultKind::Duplicate),
                rec(1, 1, 1, FaultKind::Revive(Trigger::Envelopes(120))),
                rec(3, 0, 2, FaultKind::Reorder),
                rec(0, 3, 11, FaultKind::Partition),
            ],
        };
        let decoded = FaultLog::decode(&log.encode()).expect("roundtrip");
        assert_eq!(decoded, log);
        assert_eq!(decoded.encode(), log.encode());
        assert!(FaultLog::decode("drop 1 2\n").is_none(), "short line");
        assert!(FaultLog::decode("bogus 1 2 3\n").is_none(), "bad tag");
        assert!(FaultLog::decode("drop 1 2 3 4\n").is_none(), "long line");
    }

    #[test]
    fn log_equality_is_order_insensitive() {
        let a = FaultLog {
            records: vec![rec(0, 1, 3, FaultKind::Drop), rec(2, 1, 9, FaultKind::Drop)],
        };
        let b = FaultLog {
            records: vec![rec(2, 1, 9, FaultKind::Drop), rec(0, 1, 3, FaultKind::Drop)],
        };
        assert_eq!(a, b);
        let c = FaultLog {
            records: vec![rec(2, 1, 8, FaultKind::Drop), rec(0, 1, 3, FaultKind::Drop)],
        };
        assert_ne!(a, c);
    }

    #[test]
    fn decisions_are_pure_in_seed_and_link_coordinates() {
        for seed in [1u64, 42, 0xdead_beef] {
            for (src, dst, seq) in [(0u16, 1u16, 0u64), (3, 2, 17), (1, 0, 9999)] {
                let a = link_rand(seed, src, dst, seq, 1);
                let b = link_rand(seed, src, dst, seq, 1);
                assert_eq!(a, b);
                // Different salt, seed, or coordinates shift the draw.
                assert_ne!(a, link_rand(seed, src, dst, seq, 2));
                assert_ne!(a, link_rand(seed ^ 1, src, dst, seq, 1));
                assert_ne!(a, link_rand(seed, src, dst, seq + 1, 1));
            }
        }
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let hits = (0..10_000u64)
            .filter(|&seq| unit(link_rand(7, 0, 1, seq, 1)) < 0.2)
            .count();
        assert!(
            (1_500..2_500).contains(&hits),
            "20% drop rate wildly off: {hits}/10000"
        );
    }

    #[test]
    fn replay_plan_reconstructs_schedule_and_link_map() {
        let log = FaultLog {
            records: vec![
                rec(0, 1, 3, FaultKind::Drop),
                rec(2, 2, 0, FaultKind::Crash(Trigger::Mark(8))),
                rec(2, 2, 1, FaultKind::Revive(Trigger::Mark(9))),
            ],
        };
        let plan = FaultPlan::replay(&log);
        assert_eq!(
            plan.schedule,
            vec![
                (Trigger::Mark(8), NodeEvent::Crash(2)),
                (Trigger::Mark(9), NodeEvent::Revive(2)),
            ]
        );
        assert_eq!(plan.replay_records().unwrap().len(), 3);
        assert!(!plan.is_neutral());
        assert!(FaultPlan::new(99).is_neutral());
    }
}
