//! Traffic accounting.
//!
//! Every envelope leaving an endpoint is counted here. The counters are
//! the measured half of the simulation contract (see DESIGN.md): the
//! algorithms run for real and produce real message volumes; the
//! [`crate::CostModel`] prices them. Machine-local frames (src == dst) are
//! tracked separately and never priced.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic traffic counters for one endpoint.
#[derive(Debug, Default)]
pub struct NetStats {
    pub(crate) remote_envelopes: AtomicU64,
    pub(crate) remote_frames: AtomicU64,
    pub(crate) remote_bytes: AtomicU64,
    pub(crate) local_frames: AtomicU64,
    pub(crate) delivered_frames: AtomicU64,
    pub(crate) dropped_frames: AtomicU64,
    pub(crate) refused_frames: AtomicU64,
}

/// A point-in-time copy of [`NetStats`], or a difference of two snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsDelta {
    /// Physical transfers to other machines.
    pub remote_envelopes: u64,
    /// Logical messages to other machines.
    pub remote_frames: u64,
    /// Bytes shipped to other machines (headers included).
    pub remote_bytes: u64,
    /// Logical messages delivered machine-locally (free).
    pub local_frames: u64,
    /// Frames terminally handled on the receive side (handler ran, call
    /// completed, or the request was refused with an expired reply).
    pub delivered_frames: u64,
    /// Frames that entered the fabric but were discarded on the receive
    /// side: the destination died in flight, no handler was registered,
    /// or a duplicate response found its call already completed.
    pub dropped_frames: u64,
    /// Frames refused at the *send* site because the destination was
    /// already dead — they never entered the fabric and are excluded
    /// from the delivery ledger.
    pub refused_frames: u64,
}

impl NetStats {
    /// Snapshot the counters.
    pub fn snapshot(&self) -> StatsDelta {
        StatsDelta {
            remote_envelopes: self.remote_envelopes.load(Ordering::Relaxed),
            remote_frames: self.remote_frames.load(Ordering::Relaxed),
            remote_bytes: self.remote_bytes.load(Ordering::Relaxed),
            local_frames: self.local_frames.load(Ordering::Relaxed),
            delivered_frames: self.delivered_frames.load(Ordering::Relaxed),
            dropped_frames: self.dropped_frames.load(Ordering::Relaxed),
            refused_frames: self.refused_frames.load(Ordering::Relaxed),
        }
    }

    pub(crate) fn record_remote(&self, frames: u64, bytes: u64) {
        self.remote_envelopes.fetch_add(1, Ordering::Relaxed);
        self.remote_frames.fetch_add(frames, Ordering::Relaxed);
        self.remote_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    pub(crate) fn record_local(&self, frames: u64) {
        self.local_frames.fetch_add(frames, Ordering::Relaxed);
    }

    pub(crate) fn record_delivered(&self, frames: u64) {
        self.delivered_frames.fetch_add(frames, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped(&self, frames: u64) {
        self.dropped_frames.fetch_add(frames, Ordering::Relaxed);
    }

    pub(crate) fn record_refused(&self, frames: u64) {
        self.refused_frames.fetch_add(frames, Ordering::Relaxed);
    }

    /// Traffic since a previous snapshot — the idiom every measurement
    /// window uses:
    ///
    /// ```
    /// # let stats = trinity_net::NetStats::default();
    /// let before = stats.snapshot();
    /// // ... traffic ...
    /// let window = stats.delta(&before);
    /// ```
    pub fn delta(&self, prev: &StatsDelta) -> StatsDelta {
        self.snapshot() - *prev
    }
}

impl StatsDelta {
    /// Traffic between two snapshots (`later - self`).
    pub fn delta_to(&self, later: &StatsDelta) -> StatsDelta {
        StatsDelta {
            remote_envelopes: later.remote_envelopes - self.remote_envelopes,
            remote_frames: later.remote_frames - self.remote_frames,
            remote_bytes: later.remote_bytes - self.remote_bytes,
            local_frames: later.local_frames - self.local_frames,
            delivered_frames: later.delivered_frames - self.delivered_frames,
            dropped_frames: later.dropped_frames - self.dropped_frames,
            refused_frames: later.refused_frames - self.refused_frames,
        }
    }

    /// Element-wise sum (aggregating endpoints into cluster totals).
    pub fn merge(&mut self, other: &StatsDelta) {
        self.remote_envelopes += other.remote_envelopes;
        self.remote_frames += other.remote_frames;
        self.remote_bytes += other.remote_bytes;
        self.local_frames += other.local_frames;
        self.delivered_frames += other.delivered_frames;
        self.dropped_frames += other.dropped_frames;
        self.refused_frames += other.refused_frames;
    }

    /// Frames that entered the fabric on the send side (remote plus
    /// machine-local; refused frames never entered).
    pub fn entered_frames(&self) -> u64 {
        self.remote_frames + self.local_frames
    }

    /// Frames fully accounted on the receive side (terminally handled or
    /// discarded). In a quiescent fabric every entered frame is consumed:
    /// `entered_frames + duplicated == consumed_frames + swallowed`, where
    /// the chaos layer reports the duplicated/swallowed corrections.
    pub fn consumed_frames(&self) -> u64 {
        self.delivered_frames + self.dropped_frames
    }

    /// Average frames per envelope — the packing factor the transparent
    /// packing optimization is trying to maximize.
    pub fn packing_factor(&self) -> f64 {
        if self.remote_envelopes == 0 {
            0.0
        } else {
            self.remote_frames as f64 / self.remote_envelopes as f64
        }
    }
}

impl std::ops::Add for StatsDelta {
    type Output = StatsDelta;

    fn add(self, rhs: StatsDelta) -> StatsDelta {
        StatsDelta {
            remote_envelopes: self.remote_envelopes + rhs.remote_envelopes,
            remote_frames: self.remote_frames + rhs.remote_frames,
            remote_bytes: self.remote_bytes + rhs.remote_bytes,
            local_frames: self.local_frames + rhs.local_frames,
            delivered_frames: self.delivered_frames + rhs.delivered_frames,
            dropped_frames: self.dropped_frames + rhs.dropped_frames,
            refused_frames: self.refused_frames + rhs.refused_frames,
        }
    }
}

impl std::ops::AddAssign for StatsDelta {
    fn add_assign(&mut self, rhs: StatsDelta) {
        *self = *self + rhs;
    }
}

impl std::ops::Sub for StatsDelta {
    type Output = StatsDelta;

    /// Saturating element-wise difference: a later snapshot minus an
    /// earlier one. Saturation (rather than panic) keeps windows taken
    /// across concurrent recording safe.
    fn sub(self, rhs: StatsDelta) -> StatsDelta {
        StatsDelta {
            remote_envelopes: self.remote_envelopes.saturating_sub(rhs.remote_envelopes),
            remote_frames: self.remote_frames.saturating_sub(rhs.remote_frames),
            remote_bytes: self.remote_bytes.saturating_sub(rhs.remote_bytes),
            local_frames: self.local_frames.saturating_sub(rhs.local_frames),
            delivered_frames: self.delivered_frames.saturating_sub(rhs.delivered_frames),
            dropped_frames: self.dropped_frames.saturating_sub(rhs.dropped_frames),
            refused_frames: self.refused_frames.saturating_sub(rhs.refused_frames),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_and_delta() {
        let s = NetStats::default();
        s.record_remote(10, 1000);
        s.record_local(5);
        let a = s.snapshot();
        s.record_remote(10, 500);
        s.record_dropped(2);
        let b = s.snapshot();
        let d = a.delta_to(&b);
        assert_eq!(d.remote_envelopes, 1);
        assert_eq!(d.remote_frames, 10);
        assert_eq!(d.remote_bytes, 500);
        assert_eq!(d.local_frames, 0);
        assert_eq!(d.dropped_frames, 2);
        assert_eq!(d.packing_factor(), 10.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StatsDelta {
            remote_envelopes: 1,
            remote_bytes: 10,
            ..Default::default()
        };
        a.merge(&StatsDelta {
            remote_envelopes: 2,
            remote_bytes: 30,
            ..Default::default()
        });
        assert_eq!(a.remote_envelopes, 3);
        assert_eq!(a.remote_bytes, 40);
    }

    #[test]
    fn delta_helper_and_operators_agree() {
        let s = NetStats::default();
        s.record_remote(4, 400);
        let before = s.snapshot();
        s.record_remote(6, 600);
        s.record_local(3);
        let d = s.delta(&before);
        assert_eq!(d, before.delta_to(&s.snapshot()));
        assert_eq!(d.remote_envelopes, 1);
        assert_eq!(d.remote_frames, 6);
        assert_eq!(d.remote_bytes, 600);
        assert_eq!(d.local_frames, 3);
        assert_eq!(before + d, s.snapshot());
        // Sub saturates instead of panicking on out-of-order windows.
        let weird = before - s.snapshot();
        assert_eq!(weird, StatsDelta::default());
    }
}
