//! Per-machine cache of *remote* cell reads, with versioned invalidation.
//!
//! Every cell carries a monotonic version stamp minted by the trunk layer
//! (`trinity_memstore::next_version`); a cached copy is the pair
//! `(version, bytes)`, the bytes held as a [`FrameBuf`] view of the reply
//! frame that carried them (zero-copy from the wire into the cache). Coherence is version-ordered:
//!
//! * an **insert** is dropped if the cache already holds a *newer* stamp
//!   for that cell — a reply that raced with a concurrent write can never
//!   roll the cache backwards;
//! * an **invalidation** `(id, v)` replaces any entry with stamp `<= v` by
//!   a *floor* — a data-less entry remembering "whatever you learn about
//!   this cell must be stamped at least `v`". The floor absorbs in-flight
//!   read replies that left the owner before the write.
//!
//! Floors occupy regular LRU slots, so under extreme capacity pressure a
//! floor can be evicted while the read it was guarding against is still in
//! flight; the protocol's staleness bound is therefore "one in-flight hop,
//! plus eviction races under overload" (see DESIGN.md §9). Reconfiguration
//! (a new addressing table) clears the whole cache: trunk reloads re-stamp
//! every cell, and a machine that was dead missed invalidations.
//!
//! The cache is strictly a *remote-read* accelerator: locally owned cells
//! are always served zero-copy from the trunk and never enter the cache.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use trinity_memstore::CellVersion;
use trinity_net::FrameBuf;
use trinity_obs::{Counter, MachineScope};

use crate::CellId;

const NIL: u32 = u32::MAX;

/// Point-in-time cache counters (cumulative) plus the live entry count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads served from the cache without touching the fabric.
    pub hits: u64,
    /// Reads that had to go to the owner.
    pub misses: u64,
    /// Invalidations applied (entry floored, or a floor recorded).
    pub invalidations: u64,
    /// Entries pushed out by capacity pressure.
    pub evictions: u64,
    /// Prefetch batches that failed outright (the warm-up fetch errored;
    /// the per-cell reads will surface the fault themselves).
    pub prefetch_errors: u64,
    /// Entries currently resident (data entries and floors alike).
    pub entries: usize,
}

/// One cached cell: its version stamp and, unless this is an invalidation
/// floor, the payload bytes. Slots double as intrusive LRU-list nodes.
#[derive(Debug)]
struct Slot {
    id: CellId,
    version: CellVersion,
    data: Option<FrameBuf>,
    prev: u32,
    next: u32,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<CellId, u32>,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (eviction victim).
    tail: u32,
}

impl Inner {
    fn new() -> Self {
        Inner {
            head: NIL,
            tail: NIL,
            ..Inner::default()
        }
    }

    fn unlink(&mut self, i: u32) {
        let (prev, next) = (self.slots[i as usize].prev, self.slots[i as usize].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
    }

    fn push_front(&mut self, i: u32) {
        self.slots[i as usize].prev = NIL;
        self.slots[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slots[h as usize].prev = i,
        }
        self.head = i;
    }

    fn touch(&mut self, i: u32) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Drop the LRU entry. Returns whether anything was evicted.
    fn evict_tail(&mut self) -> bool {
        let t = self.tail;
        if t == NIL {
            return false;
        }
        self.unlink(t);
        let id = self.slots[t as usize].id;
        self.map.remove(&id);
        self.slots[t as usize].data = None;
        self.free.push(t);
        true
    }

    fn alloc(&mut self, id: CellId, version: CellVersion, data: Option<FrameBuf>) -> u32 {
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Slot {
                    id,
                    version,
                    data,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slots.push(Slot {
                    id,
                    version,
                    data,
                    prev: NIL,
                    next: NIL,
                });
                (self.slots.len() - 1) as u32
            }
        };
        self.map.insert(id, i);
        i
    }
}

/// The per-machine remote-cell read cache. Capacity 0 disables it: every
/// operation becomes a no-op and no counters move.
#[derive(Debug)]
pub(crate) struct RemoteCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidations: Arc<Counter>,
    evictions: Arc<Counter>,
    prefetch_errors: Arc<Counter>,
    /// Scope whose [`trinity_obs::LoadMap`] receives the per-trunk
    /// hit/miss attribution behind the aggregate counters above.
    obs: MachineScope,
}

impl RemoteCache {
    pub(crate) fn new(capacity: usize, obs: &MachineScope) -> Self {
        RemoteCache {
            capacity,
            inner: Mutex::new(Inner::new()),
            hits: obs.counter("cloud.cache.hits"),
            misses: obs.counter("cloud.cache.misses"),
            invalidations: obs.counter("cloud.cache.invalidations"),
            evictions: obs.counter("cloud.cache.evictions"),
            prefetch_errors: obs.counter("cloud.cache.prefetch_errors"),
            obs: obs.clone(),
        }
    }

    pub(crate) fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Look a cell up. A floor entry is a miss — it carries no bytes.
    /// `trunk` is the cell's owning trunk (the caller has it from the
    /// addressing table); hits and misses are attributed to it so cache
    /// efficacy can be ranked against per-trunk hotness.
    pub(crate) fn get(&self, trunk: u64, id: CellId) -> Option<FrameBuf> {
        if !self.enabled() {
            return None;
        }
        let mut inner = self.inner.lock();
        if let Some(&i) = inner.map.get(&id) {
            if let Some(data) = inner.slots[i as usize].data.clone() {
                inner.touch(i);
                self.hits.inc();
                self.obs.load().record_cache_hit(trunk);
                return Some(data);
            }
        }
        self.misses.inc();
        self.obs.load().record_cache_miss(trunk);
        None
    }

    /// Record a fetched (or just-written) cell. Dropped when the cache
    /// already holds a newer stamp — including a newer floor.
    pub(crate) fn insert(&self, id: CellId, version: CellVersion, data: FrameBuf) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(&i) = inner.map.get(&id) {
            let slot = &mut inner.slots[i as usize];
            if slot.version <= version {
                slot.version = version;
                slot.data = Some(data);
                inner.touch(i);
            }
            return;
        }
        if inner.map.len() >= self.capacity && inner.evict_tail() {
            self.evictions.inc();
        }
        let i = inner.alloc(id, version, Some(data));
        inner.push_front(i);
    }

    /// Apply an invalidation: floor the entry at `version`. Recorded even
    /// when the cell is absent, so a read reply already in flight when the
    /// write happened cannot install its stale payload afterwards.
    pub(crate) fn invalidate(&self, id: CellId, version: CellVersion) {
        if !self.enabled() {
            return;
        }
        let mut inner = self.inner.lock();
        if let Some(&i) = inner.map.get(&id) {
            let slot = &mut inner.slots[i as usize];
            if slot.version <= version {
                slot.version = version;
                slot.data = None;
                inner.touch(i);
                self.invalidations.inc();
            }
            return;
        }
        if inner.map.len() >= self.capacity && inner.evict_tail() {
            self.evictions.inc();
        }
        let i = inner.alloc(id, version, None);
        inner.push_front(i);
        self.invalidations.inc();
    }

    /// Drop everything (reconfiguration: stamps are reminted on reload and
    /// missed invalidations cannot be reconstructed). Counters survive.
    pub(crate) fn clear(&self) {
        if !self.enabled() {
            return;
        }
        *self.inner.lock() = Inner::new();
    }

    /// Drop only the cells of the given trunks (`p` is the table's hash
    /// width). Used on a table flip: a moved trunk's new owner knows
    /// nothing about this machine's cached copies, so they must go, while
    /// the rest of the cache — still covered by live sharer directories —
    /// survives the reconfiguration.
    pub(crate) fn clear_trunks(&self, trunks: &std::collections::BTreeSet<u64>, p: u32) {
        if !self.enabled() || trunks.is_empty() {
            return;
        }
        let mut inner = self.inner.lock();
        let victims: Vec<CellId> = inner
            .map
            .keys()
            .copied()
            .filter(|&id| trunks.contains(&trinity_memstore::hash::trunk_of(id, p)))
            .collect();
        for id in victims {
            if let Some(i) = inner.map.remove(&id) {
                inner.unlink(i);
                inner.slots[i as usize].data = None;
                inner.free.push(i);
            }
        }
    }

    pub(crate) fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            invalidations: self.invalidations.get(),
            evictions: self.evictions.get(),
            prefetch_errors: self.prefetch_errors.get(),
            entries: self.inner.lock().map.len(),
        }
    }

    /// Count one failed prefetch batch (a warm-up `multi_get` that
    /// errored). Counted even with the cache disabled: the error signal
    /// matters regardless of whether the bytes would have been kept.
    pub(crate) fn record_prefetch_error(&self) {
        self.prefetch_errors.inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(capacity: usize) -> RemoteCache {
        RemoteCache::new(capacity, &MachineScope::detached())
    }

    fn bytes(b: &[u8]) -> FrameBuf {
        FrameBuf::copy_from_slice(b)
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let c = cache(4);
        assert_eq!(c.get(0, 1), None);
        c.insert(1, 10, bytes(b"x"));
        assert_eq!(c.get(0, 1).as_deref(), Some(&b"x"[..]));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let c = cache(2);
        c.insert(1, 1, bytes(b"a"));
        c.insert(2, 2, bytes(b"b"));
        assert!(c.get(0, 1).is_some()); // 1 is now MRU
        c.insert(3, 3, bytes(b"c")); // evicts 2
        assert!(c.get(0, 2).is_none());
        assert!(c.get(0, 1).is_some());
        assert!(c.get(0, 3).is_some());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().entries, 2);
    }

    #[test]
    fn stale_insert_is_rejected_by_floor() {
        let c = cache(4);
        c.invalidate(7, 100);
        // A reply stamped before the write must not land.
        c.insert(7, 99, bytes(b"stale"));
        assert_eq!(c.get(0, 7), None);
        // The write's own (or any newer) value does land.
        c.insert(7, 100, bytes(b"fresh"));
        assert_eq!(c.get(0, 7).as_deref(), Some(&b"fresh"[..]));
    }

    #[test]
    fn invalidation_floors_older_entries_only() {
        let c = cache(4);
        c.insert(3, 50, bytes(b"new"));
        c.invalidate(3, 40); // late, older invalidation: ignored
        assert_eq!(c.get(0, 3).as_deref(), Some(&b"new"[..]));
        c.invalidate(3, 60);
        assert_eq!(c.get(0, 3), None);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn capacity_zero_disables_everything() {
        let c = cache(0);
        c.insert(1, 1, bytes(b"a"));
        c.invalidate(2, 2);
        assert_eq!(c.get(0, 1), None);
        assert_eq!(c.stats(), CacheStats::default());
    }

    #[test]
    fn clear_drops_entries_but_keeps_counters() {
        let c = cache(4);
        c.insert(1, 1, bytes(b"a"));
        assert!(c.get(0, 1).is_some());
        c.clear();
        assert_eq!(c.get(0, 1), None);
        let s = c.stats();
        assert_eq!(s.entries, 0);
        assert_eq!(s.hits, 1);
    }

    #[test]
    fn hits_and_misses_are_attributed_per_trunk() {
        let scope = MachineScope::detached();
        let c = RemoteCache::new(4, &scope);
        assert_eq!(c.get(2, 1), None); // miss on trunk 2
        c.insert(1, 10, bytes(b"x"));
        assert!(c.get(2, 1).is_some()); // hit on trunk 2
        assert_eq!(c.get(5, 9), None); // miss on trunk 5
        let load = scope.load();
        load.roll_at(load.now_us().max(trinity_obs::MIN_ROLL_WINDOW_US));
        let snap = load.snapshot_rolled();
        let t2 = snap.iter().find(|t| t.trunk == 2).unwrap();
        assert_eq!((t2.cache_hits, t2.cache_misses), (1, 1));
        let t5 = snap.iter().find(|t| t.trunk == 5).unwrap();
        assert_eq!((t5.cache_hits, t5.cache_misses), (0, 1));
    }

    #[test]
    fn clear_trunks_is_selective() {
        let c = cache(16);
        // With p = 2 there are 4 trunks; spread ids across them.
        let p = 2;
        for id in 0u64..12 {
            c.insert(id, id + 1, bytes(&id.to_le_bytes()));
        }
        let victim_trunk = trinity_memstore::hash::trunk_of(3, p);
        let victims: std::collections::BTreeSet<u64> = [victim_trunk].into();
        c.clear_trunks(&victims, p);
        for id in 0u64..12 {
            let hit = c.get(0, id).is_some();
            let moved = trinity_memstore::hash::trunk_of(id, p) == victim_trunk;
            assert_eq!(hit, !moved, "id {id} (moved={moved})");
        }
    }

    #[test]
    fn slot_recycling_under_churn_stays_consistent() {
        let c = cache(8);
        for round in 0u64..50 {
            for k in 0u64..16 {
                c.insert(k, round * 16 + k, bytes(&k.to_le_bytes()));
            }
        }
        // The last 8 distinct keys inserted are resident.
        assert_eq!(c.stats().entries, 8);
        for k in 8u64..16 {
            assert_eq!(c.get(0, k).as_deref(), Some(&k.to_le_bytes()[..]));
        }
    }
}
