//! The Trinity memory cloud (paper §3).
//!
//! The memory cloud organizes the memory of multiple machines into "a
//! globally addressable, distributed memory address space": a distributed
//! key-value store partitioned into `2^p` memory trunks, with `2^p > m` so
//! each machine hosts several trunks.
//!
//! Addressing a cell takes the paper's two hashing steps (Figure 3):
//!
//! 1. hash the 64-bit cell id to a p-bit trunk index `i`;
//! 2. look trunk `i` up in the **addressing table** — `2^p` slots, each
//!    naming the machine currently hosting that trunk — then hash again
//!    into that trunk's own hash table for the cell's offset and size.
//!
//! Every machine keeps a replica of the addressing table; the *primary*
//! replica lives on the leader and is persisted in TFS before any update
//! commits (§6.2). A machine that fails to load a data item re-syncs its
//! replica from TFS and retries — exactly the paper's staleness protocol.
//! Machines join and leave the cloud by reassigning addressing-table slots
//! and reloading the affected trunks from their TFS backups.
//!
//! # Example
//!
//! ```
//! use trinity_memcloud::{CloudConfig, MemoryCloud};
//!
//! let cloud = MemoryCloud::new(CloudConfig::small(4));
//! let node = cloud.node(0);
//! let id = node.alloc_id();
//! node.put(id, b"a cell visible from every machine").unwrap();
//! assert_eq!(
//!     cloud.node(3).get(id).unwrap().unwrap(),
//!     b"a cell visible from every machine"
//! );
//! cloud.shutdown();
//! ```

mod cache;
mod cloud;
mod error;
pub mod migration;
mod node;
mod table;
mod tiering;
mod wire;

pub use cache::CacheStats;
pub use cloud::{CloudConfig, MemoryCloud};
pub use error::CloudError;
pub use node::{trunk_backup_path, CloudNode};
pub use table::{AddressingTable, TFS_TABLE_PATH};
pub use tiering::{TierState, TierStats};

pub use trinity_memstore::{CellId, CellVersion};

/// Result alias for memory-cloud operations.
pub type Result<T> = std::result::Result<T, CloudError>;

/// Memory-cloud protocol ids (range reserved by `trinity_net::proto`).
pub(crate) mod proto {
    use trinity_net::ProtoId;
    pub const GET: ProtoId = trinity_net::proto::FIRST_MEMCLOUD;
    pub const PUT: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 1;
    pub const REMOVE: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 2;
    pub const APPEND: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 3;
    pub const CONTAINS: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 4;
    /// Batched read: many cell ids in, one entry per id out.
    pub const MULTI_GET: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 5;
    /// Cache coherence: the owner tells a reader that its cached copy of
    /// a cell is stale below the carried version stamp.
    pub const INVALIDATE: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 6;
    /// Conditional write: replace a cell's payload only if its version
    /// still matches the caller's snapshot (single-cell CAS).
    pub const PUT_IF: ProtoId = trinity_net::proto::FIRST_MEMCLOUD + 7;

    // Elastic trunk-migration frames (coordinator-driven; see the
    // `migration` module). These live in the dedicated elastic range.
    /// Donor: snapshot the trunk's cell ids and arm delta capture.
    pub const MIG_BEGIN: ProtoId = trinity_net::proto::FIRST_ELASTIC;
    /// Donor: read one bounded chunk of the snapshot.
    pub const MIG_READ: ProtoId = trinity_net::proto::FIRST_ELASTIC + 1;
    /// Donor: drain captured deltas, resolved to current cell state.
    pub const MIG_DELTA: ProtoId = trinity_net::proto::FIRST_ELASTIC + 2;
    /// Donor: refuse further writes to the trunk (reads still serve).
    pub const MIG_SEAL: ProtoId = trinity_net::proto::FIRST_ELASTIC + 3;
    /// Donor: abandon the migration and resume normal service.
    pub const MIG_ABORT: ProtoId = trinity_net::proto::FIRST_ELASTIC + 4;
    /// Recipient: apply a batch of migrated entries behind a version fence.
    pub const MIG_APPLY: ProtoId = trinity_net::proto::FIRST_ELASTIC + 5;
    /// Recipient: persist the assembled trunk to TFS before the flip.
    pub const MIG_COMMIT: ProtoId = trinity_net::proto::FIRST_ELASTIC + 6;
}
