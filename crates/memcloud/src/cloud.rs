//! Cluster-level assembly of the memory cloud.
//!
//! [`MemoryCloud`] brings up the whole simulated deployment: the network
//! fabric, the TFS deployment, one [`CloudNode`] per machine, and the
//! initial addressing table (persisted to TFS as the primary replica). It
//! also exposes the mechanical halves of the paper's reconfiguration
//! protocols — kill/recover/join — which `trinity-core` orchestrates with
//! leader election and heartbeats on top.

use std::sync::Arc;

use trinity_memstore::{LocalStoreConfig, TrunkConfig};
use trinity_net::{CostModel, Fabric, FabricConfig, FaultPlan, MachineId};
use trinity_tfs::{Tfs, TfsConfig};

use crate::node::CloudNode;
use crate::table::{AddressingTable, TFS_TABLE_PATH};
use crate::Result;

/// Deployment shape of a memory cloud.
#[derive(Debug, Clone)]
pub struct CloudConfig {
    /// Number of machines (Trinity slaves).
    pub machines: usize,
    /// `log2` of the trunk count; `2^p` must be at least the machine count.
    pub p_bits: u32,
    /// Per-machine trunk storage configuration.
    pub store: LocalStoreConfig,
    /// TFS deployment backing the cloud.
    pub tfs: TfsConfig,
    /// Network cost model for modeled time reporting.
    pub cost: CostModel,
    /// Handler worker threads per machine.
    pub workers_per_machine: usize,
    /// Additional fabric endpoints beyond the slaves — Trinity proxies and
    /// clients (paper Figure 1) attach here. They carry no trunks and no
    /// addressing-table slots.
    pub extra_machines: usize,
    /// Synchronous-call timeout (doubles as the detection-by-access
    /// horizon; recovery tests shorten it).
    pub call_timeout: std::time::Duration,
    /// Standby slaves: fully provisioned machines that own no trunks
    /// until a join — `trinity-elastic`'s online migration, or
    /// [`MemoryCloud::cold_join`] — rebalances some onto them (the
    /// paper's dynamic join, §3).
    pub standby_machines: usize,
    /// Fault-injection plan for the fabric (`None` = fault-free). The
    /// chaos harness sets this to run whole workloads under seeded
    /// network misbehaviour.
    pub faults: Option<FaultPlan>,
    /// Per-machine remote-read cache capacity in entries; 0 disables the
    /// cache (and with it the sharer tracking and invalidation traffic).
    /// Must be uniform across the cloud — the coherence protocol skips
    /// machines entirely when the cache is off.
    pub cache_capacity: usize,
    /// Per-machine resident-memory budget in bytes; 0 (the default)
    /// disables trunk tiering. With a budget set, each node spills its
    /// coldest trunks' sealed images to TFS whenever resident bytes
    /// exceed the budget, and faults them back in on access — graphs
    /// larger than RAM at the cost of TFS round-trips on cold reads
    /// (DESIGN.md §15).
    pub memory_budget_bytes: u64,
}

impl CloudConfig {
    /// A production-shaped config: 2^(ceil(log2 m) + 3) trunks so every
    /// machine hosts ~8, with default trunk sizes.
    pub fn new(machines: usize) -> Self {
        let p_bits = (machines.next_power_of_two().trailing_zeros() + 3).max(4);
        CloudConfig {
            machines,
            p_bits,
            store: LocalStoreConfig::default(),
            tfs: TfsConfig {
                nodes: machines.max(3),
                replication: 3.min(machines.max(2)),
            },
            cost: CostModel::default(),
            workers_per_machine: 4,
            extra_machines: 0,
            call_timeout: std::time::Duration::from_secs(10),
            standby_machines: 0,
            faults: None,
            cache_capacity: 4096,
            memory_budget_bytes: 0,
        }
    }

    /// A small config for tests and doc examples (tiny trunks).
    pub fn small(machines: usize) -> Self {
        CloudConfig {
            store: LocalStoreConfig {
                trunk: TrunkConfig::small(),
                ..LocalStoreConfig::default()
            },
            ..CloudConfig::new(machines)
        }
    }
}

/// A running memory cloud: fabric + TFS + one node per machine.
pub struct MemoryCloud {
    fabric: Arc<Fabric>,
    tfs: Tfs,
    nodes: Vec<Arc<CloudNode>>,
}

impl std::fmt::Debug for MemoryCloud {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryCloud")
            .field("machines", &self.nodes.len())
            .finish()
    }
}

impl MemoryCloud {
    /// Bring up a memory cloud.
    pub fn new(cfg: CloudConfig) -> Self {
        let slaves = cfg.machines + cfg.standby_machines;
        let fabric = Fabric::new(FabricConfig {
            machines: slaves + cfg.extra_machines,
            workers_per_machine: cfg.workers_per_machine,
            cost: cfg.cost,
            call_timeout: cfg.call_timeout,
            faults: cfg.faults,
            ..FabricConfig::with_machines(slaves + cfg.extra_machines)
        });
        let tfs = Tfs::new(cfg.tfs);
        let table = AddressingTable::round_robin(cfg.p_bits, cfg.machines);
        // Persist the primary replica before the cloud serves traffic.
        tfs.write(TFS_TABLE_PATH, &table.encode())
            .expect("persist initial addressing table");
        let nodes = (0..slaves)
            .map(|m| {
                CloudNode::start(
                    fabric.endpoint(MachineId(m as u16)),
                    cfg.store.clone(),
                    tfs.clone(),
                    table.clone(),
                    cfg.cache_capacity,
                )
            })
            .collect();
        let cloud = MemoryCloud { fabric, tfs, nodes };
        if cfg.memory_budget_bytes > 0 {
            cloud.set_memory_budget(cfg.memory_budget_bytes);
        }
        cloud
    }

    /// Set every machine's resident-memory budget (0 = unlimited) and
    /// enforce it immediately. Enforcement failures are best-effort at
    /// this level — a machine that cannot reach TFS simply stays over
    /// budget until its next sweep.
    pub fn set_memory_budget(&self, bytes: u64) {
        for n in &self.nodes {
            let _ = n.set_memory_budget(bytes);
        }
    }

    /// Cluster-wide aggregate of the per-machine `tier.*` counters.
    pub fn tier_stats(&self) -> crate::TierStats {
        let mut total = crate::TierStats::default();
        for n in &self.nodes {
            let s = n.tier_stats();
            total.spills += s.spills;
            total.spill_bytes += s.spill_bytes;
            total.faults += s.faults;
            total.fault_bytes += s.fault_bytes;
            total.prefetch_hits += s.prefetch_hits;
            total.prefetch_misses += s.prefetch_misses;
            total.spilled_trunks += s.spilled_trunks;
            total.resident_bytes += s.resident_bytes;
        }
        total
    }

    /// Bring a standby machine into the cloud the *stop-the-world* way
    /// (paper §3: "when new machines join the memory cloud, we relocate
    /// some memory trunks to those new machines and update the addressing
    /// table accordingly").
    ///
    /// The donors' trunks are snapshotted to TFS, the rebalanced table is
    /// persisted and installed everywhere (the joiner reloads its new
    /// trunks; donors evict theirs). Writes racing the snapshot can land
    /// after the capture and be lost on the moved trunks — this is the
    /// fallback for quiesced clusters; the online path is
    /// `trinity-elastic`'s `MigrationEngine::join_machine`, which streams
    /// trunks while the donors keep serving. Returns the trunks moved, as
    /// `(trunk, donor)` pairs.
    pub fn cold_join(&self, m: usize) -> Result<Vec<(u64, MachineId)>> {
        let joiner = MachineId(m as u16);
        let (table, moved) = loop {
            let (ver, mut table) = self.primary_versioned()?;
            let moved = table.rebalance_join(joiner);
            // Fresh snapshots of the moving trunks, straight from the
            // donors.
            for &(trunk, donor) in &moved {
                self.nodes[donor.0 as usize].backup_trunk(trunk)?;
            }
            match self
                .tfs
                .write_if_version(TFS_TABLE_PATH, &table.encode(), ver)
            {
                Ok(_) => break (table, moved),
                // A concurrent table writer (migration flip, recovery)
                // got in between our read and write: replan against the
                // fresh primary rather than clobbering their update.
                Err(trinity_tfs::TfsError::VersionMismatch { .. }) => continue,
                Err(e) => return Err(e.into()),
            }
        };
        for node in &self.nodes {
            if !self.fabric.is_dead(node.machine()) {
                node.install_table(table.clone())?;
            }
        }
        Ok(moved)
    }

    /// The primary table from TFS plus its file version, for a
    /// conditional (compare-and-swap) table update.
    fn primary_versioned(&self) -> Result<(u64, AddressingTable)> {
        let (ver, bytes) = self.tfs.read_versioned(TFS_TABLE_PATH)?;
        let table = AddressingTable::decode(&bytes).ok_or(crate::CloudError::BadReply)?;
        Ok((ver, table))
    }

    /// The node running on machine `m`.
    pub fn node(&self, m: usize) -> &Arc<CloudNode> {
        &self.nodes[m]
    }

    /// All nodes in machine order.
    pub fn nodes(&self) -> &[Arc<CloudNode>] {
        &self.nodes
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.nodes.len()
    }

    /// The underlying fabric (for stats, cost model, failure injection).
    pub fn fabric(&self) -> &Arc<Fabric> {
        &self.fabric
    }

    /// The backing TFS deployment.
    pub fn tfs(&self) -> &Tfs {
        &self.tfs
    }

    /// Total live cells across the cloud.
    pub fn total_cells(&self) -> usize {
        self.nodes.iter().map(|n| n.store().cell_count()).sum()
    }

    /// Cluster-wide aggregate of the per-machine remote-read caches.
    pub fn cache_stats(&self) -> crate::CacheStats {
        let mut total = crate::CacheStats::default();
        for n in &self.nodes {
            let s = n.cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
            total.evictions += s.evictions;
            total.prefetch_errors += s.prefetch_errors;
            total.entries += s.entries;
        }
        total
    }

    /// Persist every live machine's trunks to TFS. Dead machines are
    /// skipped — their in-memory state is gone by definition, and their
    /// stale trunk objects must not overwrite survivors' snapshots.
    pub fn backup_all(&self) -> Result<()> {
        for (m, n) in self.nodes.iter().enumerate() {
            if self.fabric.is_dead(MachineId(m as u16)) {
                continue;
            }
            n.backup_all()?;
        }
        Ok(())
    }

    /// Kill a machine at the fabric level (it stops serving; its memory is
    /// gone). Recovery is a separate step — see [`MemoryCloud::recover`].
    pub fn kill_machine(&self, m: usize) {
        self.fabric.kill(MachineId(m as u16));
    }

    /// Bring a previously killed machine back as a blank standby. Its
    /// soft state (cache, sharers, migration books) is dropped and its
    /// addressing-table replica refreshed from the TFS primary *before*
    /// it serves again — a revived machine must not answer for trunks
    /// that were reassigned while it was down, nor serve cells it cached
    /// before dying.
    pub fn revive_machine(&self, m: usize) -> Result<()> {
        self.fabric.revive(MachineId(m as u16));
        self.nodes[m].refresh_after_revive()
    }

    /// Mechanically recover from the failure of machine `m`: reassign its
    /// trunks to survivors, persist the new primary table to TFS, and
    /// install it on every live node (which reloads the reassigned trunks
    /// from their TFS backups). In the full system this runs on the
    /// elected leader (`trinity-core::recovery`); tests may call it
    /// directly.
    pub fn recover(&self, failed: usize) -> Result<AddressingTable> {
        let failed = MachineId(failed as u16);
        let survivors: Vec<MachineId> = (0..self.nodes.len() as u16)
            .map(MachineId)
            .filter(|&m| m != failed && !self.fabric.is_dead(m))
            .collect();
        let table = loop {
            let (ver, mut table) = self.primary_versioned()?;
            if !table.trunks_of(failed).is_empty() {
                table.reassign_failed(failed, &survivors);
                match self
                    .tfs
                    .write_if_version(TFS_TABLE_PATH, &table.encode(), ver)
                {
                    Ok(_) => break table,
                    // An in-flight migration flip (or a second recovery)
                    // wrote the table between our read and write; redo
                    // the reassignment against the fresh primary so
                    // neither update is clobbered.
                    Err(trinity_tfs::TfsError::VersionMismatch { .. }) => continue,
                    Err(e) => return Err(e.into()),
                }
            }
            break table;
        };
        for &m in &survivors {
            self.nodes[m.0 as usize].install_table(table.clone())?;
        }
        Ok(table)
    }

    /// Stop the fabric.
    pub fn shutdown(&self) {
        self.fabric.shutdown();
    }
}

impl Drop for MemoryCloud {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_on_one_machine_get_on_another() {
        let cloud = MemoryCloud::new(CloudConfig::small(4));
        let id = cloud.node(0).alloc_id();
        cloud.node(0).put(id, b"cross-machine cell").unwrap();
        for m in 0..4 {
            assert_eq!(
                cloud.node(m).get(id).unwrap().as_deref(),
                Some(&b"cross-machine cell"[..]),
                "machine {m} could not read the cell"
            );
            assert!(cloud.node(m).contains(id).unwrap());
        }
        cloud.shutdown();
    }

    #[test]
    fn ids_from_different_machines_never_collide() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        let mut ids = std::collections::HashSet::new();
        for m in 0..3 {
            for _ in 0..100 {
                assert!(ids.insert(cloud.node(m).alloc_id()));
            }
        }
        cloud.shutdown();
    }

    #[test]
    fn update_append_remove_across_machines() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        let id = cloud.node(1).alloc_id();
        cloud.node(1).put(id, b"base").unwrap();
        assert!(cloud.node(2).append(id, b"+more").unwrap());
        assert_eq!(cloud.node(0).get(id).unwrap().unwrap(), b"base+more");
        cloud.node(0).put(id, b"replaced").unwrap();
        assert_eq!(cloud.node(1).get(id).unwrap().unwrap(), b"replaced");
        assert!(cloud.node(2).remove(id).unwrap());
        assert_eq!(cloud.node(0).get(id).unwrap(), None);
        assert!(
            !cloud.node(1).remove(id).unwrap(),
            "double remove reports absence"
        );
        cloud.shutdown();
    }

    #[test]
    fn cells_spread_over_all_machines() {
        let cloud = MemoryCloud::new(CloudConfig::small(4));
        for i in 0..400u64 {
            cloud.node(0).put(i, &i.to_le_bytes()).unwrap();
        }
        assert_eq!(cloud.total_cells(), 400);
        for m in 0..4 {
            let local = cloud.node(m).store().cell_count();
            assert!(local > 40, "machine {m} holds only {local} of 400 cells");
        }
        cloud.shutdown();
    }

    #[test]
    fn machine_failure_recovery_restores_backed_up_data() {
        let cloud = MemoryCloud::new(CloudConfig::small(4));
        for i in 0..200u64 {
            cloud
                .node(0)
                .put(i, format!("cell-{i}").as_bytes())
                .unwrap();
        }
        cloud.backup_all().unwrap();
        cloud.kill_machine(2);
        cloud.recover(2).unwrap();
        for i in 0..200u64 {
            let v = cloud.node(0).get(i).unwrap();
            assert_eq!(
                v.as_deref(),
                Some(format!("cell-{i}").as_bytes()),
                "cell {i} lost after recovery"
            );
        }
        // The dead machine hosts nothing in the new table.
        assert!(cloud.node(0).table().trunks_of(MachineId(2)).is_empty());
        cloud.shutdown();
    }

    #[test]
    fn stale_replica_self_heals_through_tfs_sync() {
        let cloud = MemoryCloud::new(CloudConfig::small(4));
        for i in 0..100u64 {
            cloud.node(0).put(i, b"x").unwrap();
        }
        cloud.backup_all().unwrap();
        cloud.kill_machine(3);
        // Recover but only install the table on machines 0..=1; machine 2
        // keeps a stale replica and must self-heal on first failed access.
        let failed = MachineId(3);
        let survivors = vec![MachineId(0), MachineId(1), MachineId(2)];
        let mut table = cloud.node(0).table();
        table.reassign_failed(failed, &survivors);
        cloud.tfs().write(TFS_TABLE_PATH, &table.encode()).unwrap();
        cloud.node(0).install_table(table.clone()).unwrap();
        cloud.node(1).install_table(table).unwrap();
        // Machine 2 still routes some ids to dead machine 3; the access
        // path must sync and retry transparently.
        for i in 0..100u64 {
            assert_eq!(
                cloud.node(2).get(i).unwrap().as_deref(),
                Some(&b"x"[..]),
                "cell {i}"
            );
        }
        cloud.shutdown();
    }

    #[test]
    fn unbacked_data_is_lost_but_cloud_stays_available() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        for i in 0..60u64 {
            cloud.node(0).put(i, b"volatile").unwrap();
        }
        // No backup_all: a failure loses the dead machine's cells.
        let lost_on_1: Vec<u64> = (0..60)
            .filter(|&i| cloud.node(0).table().machine_of(i) == MachineId(1))
            .collect();
        assert!(!lost_on_1.is_empty());
        cloud.kill_machine(1);
        cloud.recover(1).unwrap();
        for i in 0..60u64 {
            let v = cloud.node(0).get(i).unwrap();
            if lost_on_1.contains(&i) {
                assert_eq!(v, None, "cell {i} should have died with machine 1");
            } else {
                assert_eq!(v.as_deref(), Some(&b"volatile"[..]));
            }
        }
        // And the cloud accepts new writes to the reassigned trunks.
        for i in 0..60u64 {
            cloud.node(2).put(1000 + i, b"fresh").unwrap();
        }
        cloud.shutdown();
    }

    #[test]
    fn standby_machine_joins_and_takes_trunk_share() {
        let cloud = MemoryCloud::new(CloudConfig {
            standby_machines: 1,
            ..CloudConfig::small(3)
        });
        for i in 0..200u64 {
            cloud.node(0).put(i, format!("j{i}").as_bytes()).unwrap();
        }
        // Before the join, the standby owns nothing and serves nothing.
        assert!(cloud.node(0).table().trunks_of(MachineId(3)).is_empty());
        assert_eq!(cloud.node(3).store().cell_count(), 0);
        let moved = cloud.cold_join(3).unwrap();
        assert!(!moved.is_empty(), "the joiner must receive trunks");
        // The joiner holds its fair share and serves its cells.
        let its_trunks = cloud.node(0).table().trunks_of(MachineId(3));
        assert_eq!(its_trunks.len(), moved.len());
        assert!(
            cloud.node(3).store().cell_count() > 0,
            "moved trunks must carry their cells"
        );
        // Every cell still reads back, from old and new machines alike.
        for i in 0..200u64 {
            for m in 0..4 {
                assert_eq!(
                    cloud.node(m).get(i).unwrap().as_deref(),
                    Some(format!("j{i}").as_bytes()),
                    "cell {i} via machine {m} after join"
                );
            }
        }
        // New writes route to the joiner for its trunks.
        let joiner_bound = (1000..2000u64)
            .find(|&i| cloud.node(0).table().machine_of(i) == MachineId(3))
            .expect("some id routes to the joiner");
        cloud.node(0).put(joiner_bound, b"fresh-on-joiner").unwrap();
        assert_eq!(
            cloud.node(3).get(joiner_bound).unwrap().unwrap(),
            b"fresh-on-joiner"
        );
        cloud.shutdown();
    }

    #[test]
    fn join_then_failure_uses_the_joiner_as_survivor() {
        let cloud = MemoryCloud::new(CloudConfig {
            standby_machines: 1,
            ..CloudConfig::small(2)
        });
        for i in 0..80u64 {
            cloud.node(0).put(i, b"resilient").unwrap();
        }
        cloud.cold_join(2).unwrap();
        cloud.backup_all().unwrap();
        cloud.kill_machine(0);
        cloud.recover(0).unwrap();
        for i in 0..80u64 {
            assert_eq!(
                cloud.node(2).get(i).unwrap().as_deref(),
                Some(&b"resilient"[..]),
                "cell {i}"
            );
        }
        cloud.shutdown();
    }

    /// First id whose owner is none of the given machines.
    fn id_remote_to(cloud: &MemoryCloud, machines: &[u16]) -> u64 {
        let table = cloud.node(0).table();
        (0u64..)
            .find(|&i| {
                let m = table.machine_of(i);
                machines.iter().all(|&x| m != MachineId(x))
            })
            .unwrap()
    }

    #[test]
    fn cached_remote_reads_skip_the_fabric() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        let id = id_remote_to(&cloud, &[0]);
        cloud.node(0).put(id, b"hot cell").unwrap();
        // The write populated the writer's cache; repeated reads are local.
        let before = cloud.fabric().total_stats();
        for _ in 0..50 {
            assert_eq!(cloud.node(0).get(id).unwrap().unwrap(), b"hot cell");
        }
        let delta = before.delta_to(&cloud.fabric().total_stats());
        assert_eq!(
            delta.remote_envelopes, 0,
            "cached reads must not touch the fabric"
        );
        assert!(cloud.node(0).cache_stats().hits >= 50);
        cloud.shutdown();
    }

    #[test]
    fn write_invalidates_remote_caches_before_acking() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        // A cell remote to both the reader (0) and the writer (1).
        let id = id_remote_to(&cloud, &[0, 1]);
        cloud.node(1).put(id, b"v1").unwrap();
        assert_eq!(cloud.node(0).get(id).unwrap().unwrap(), b"v1");
        // The ack of this write implies node 0's copy is gone.
        cloud.node(1).put(id, b"v2").unwrap();
        assert_eq!(
            cloud.node(0).get(id).unwrap().unwrap(),
            b"v2",
            "stale read after an acknowledged write"
        );
        assert!(cloud.node(0).cache_stats().invalidations >= 1);
        // Appends and removes propagate the same way.
        assert!(cloud.node(1).append(id, b"+x").unwrap());
        assert_eq!(cloud.node(0).get(id).unwrap().unwrap(), b"v2+x");
        assert!(cloud.node(1).remove(id).unwrap());
        assert_eq!(cloud.node(0).get(id).unwrap(), None);
        cloud.shutdown();
    }

    #[test]
    fn multi_get_uses_one_envelope_per_destination() {
        let cloud = MemoryCloud::new(CloudConfig::small(4));
        let ids: Vec<u64> = (0..64).collect();
        for &i in &ids {
            cloud.node(1).put(i, &i.to_le_bytes()).unwrap();
        }
        let reader = cloud.node(0);
        reader.clear_cache();
        let before = cloud.fabric().total_stats();
        let got = reader.multi_get(&ids).unwrap();
        let delta = before.delta_to(&cloud.fabric().total_stats());
        for (i, v) in ids.iter().zip(&got) {
            assert_eq!(v.as_deref(), Some(&i.to_le_bytes()[..]), "cell {i}");
        }
        // One request + one reply envelope per remote machine, not per cell.
        assert!(
            delta.remote_envelopes <= 6,
            "{} envelopes for a batched read across 3 remote machines",
            delta.remote_envelopes
        );
        // The batch warmed the cache: re-reading every cell is free.
        let before = cloud.fabric().total_stats();
        for &i in &ids {
            assert!(reader.get(i).unwrap().is_some());
        }
        let delta = before.delta_to(&cloud.fabric().total_stats());
        assert_eq!(delta.remote_envelopes, 0);
        cloud.shutdown();
    }

    #[test]
    fn multi_get_reports_missing_cells() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        cloud.node(0).put(7, b"present").unwrap();
        let got = cloud.node(1).multi_get(&[7, 1_000_007]).unwrap();
        assert_eq!(got[0].as_deref(), Some(&b"present"[..]));
        assert_eq!(got[1], None);
        cloud.shutdown();
    }

    #[test]
    fn cache_capacity_zero_disables_caching() {
        let cloud = MemoryCloud::new(CloudConfig {
            cache_capacity: 0,
            ..CloudConfig::small(3)
        });
        let id = id_remote_to(&cloud, &[0]);
        cloud.node(0).put(id, b"x").unwrap();
        let before = cloud.fabric().total_stats();
        for _ in 0..10 {
            assert_eq!(cloud.node(0).get(id).unwrap().unwrap(), b"x");
        }
        let delta = before.delta_to(&cloud.fabric().total_stats());
        assert!(
            delta.remote_envelopes >= 10,
            "disabled cache must fetch every read"
        );
        assert_eq!(cloud.cache_stats(), crate::CacheStats::default());
        cloud.shutdown();
    }

    #[test]
    fn revived_machine_refreshes_table_before_serving() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        for i in 0..120u64 {
            cloud.node(0).put(i, b"old").unwrap();
        }
        cloud.backup_all().unwrap();
        // Warm machine 2's cache with remote cells so a stale revival
        // would have something to answer from.
        for i in 0..120u64 {
            cloud.node(2).get(i).unwrap();
        }
        cloud.kill_machine(2);
        cloud.recover(2).unwrap();
        // The cluster moves on while 2 is dead: every cell is rewritten
        // through the post-recovery table.
        for i in 0..120u64 {
            cloud.node(0).put(i, b"new").unwrap();
        }
        cloud.revive_machine(2).unwrap();
        // The revived machine owns nothing (recovery reassigned its
        // trunks), must not answer from its pre-death trunks or cache,
        // and routes every read to the current owners.
        assert!(cloud.node(2).table().trunks_of(MachineId(2)).is_empty());
        for i in 0..120u64 {
            assert_eq!(
                cloud.node(2).get(i).unwrap().as_deref(),
                Some(&b"new"[..]),
                "cell {i} served stale after revival"
            );
        }
        // And remote writers never land on the revived husk: a write
        // through it routes to the current owner and reads back anywhere.
        cloud.node(2).put(7, b"post-revival").unwrap();
        assert_eq!(cloud.node(1).get(7).unwrap().unwrap(), b"post-revival");
        cloud.shutdown();
    }

    #[test]
    fn concurrent_mixed_workload() {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(4)));
        let mut handles = Vec::new();
        for t in 0..4usize {
            let cloud = Arc::clone(&cloud);
            handles.push(std::thread::spawn(move || {
                let node = Arc::clone(cloud.node(t));
                for i in 0..200u64 {
                    let id = (t as u64) << 32 | i;
                    node.put(id, &id.to_le_bytes()).unwrap();
                    if i % 3 == 0 {
                        assert_eq!(node.get(id).unwrap().unwrap(), id.to_le_bytes());
                    }
                    if i % 7 == 0 {
                        node.remove(id).unwrap();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        cloud.shutdown();
    }
}
