//! Online trunk migration: the memory-cloud half of `trinity-elastic`.
//!
//! A migration streams one trunk's cells from a *donor* to a *recipient*
//! in bounded chunks **while the donor keeps serving**. The protocol is
//! coordinator-driven (the elastic engine issues every frame; donor and
//! recipient only answer), in six phases:
//!
//! 1. **Begin** — the donor snapshots its cell-id list and arms a delta
//!    log: every subsequent mutation of the trunk records the dirty cell
//!    id (reads stay untouched).
//! 2. **Stream** — the coordinator walks the snapshot cursor with
//!    `MIG_READ`, forwarding each chunk to the recipient with
//!    `MIG_APPLY`. Payloads are read at stream time, so a cell mutated
//!    after the snapshot ships its *newer* bytes (the delta record makes
//!    the final state right either way).
//! 3. **Catch-up** — `MIG_DELTA` drains the dirty set in rounds: each
//!    dirty id resolves to its *current* state (upsert with fresh bytes,
//!    or a remove), version-stamped for fencing.
//! 4. **Seal** — the donor rejects further *writes* to the trunk with
//!    `MOVED` (reads still serve); one final delta drain empties the log.
//! 5. **Commit** — the recipient persists the assembled trunk to TFS, so
//!    a post-flip crash recovers the migrated state, not a stale backup.
//! 6. **Flip** — the coordinator persists the epoch-bumped table to TFS
//!    *before* installing it anywhere, then installs on recipient, donor,
//!    and the rest of the cluster. The donor evicts the trunk and
//!    remembers its flip epoch: stale requests get `MOVED{epoch}`, which
//!    makes the client sync its table replica and retry.
//!
//! # Fencing argument
//!
//! Version stamps are minted by a process-global monotonic counter
//! (`trinity_memstore::next_version`), so any two states of a cell are
//! totally ordered by stamp. Every migrated entry carries the stamp of
//! the state it describes (removes carry a freshly minted fence stamp,
//! which is greater than every stamp the cell ever had). The recipient
//! keeps a per-cell high-water fence and drops any entry at or below it —
//! a duplicated or reordered frame (chaos injects both) can never roll a
//! cell backwards, and re-applying the same entry twice is a no-op.
//! Control frames carry a monotonic migration id (`mid`); a frame from a
//! superseded migration attempt is rejected outright.
//!
//! # Crash matrix
//!
//! * **Donor crashes** mid-migration: the coordinator's next frame fails,
//!   the migration aborts, and the ordinary §6.2 failure recovery path
//!   reassigns the trunk from its TFS backup.
//! * **Recipient crashes**: the migration aborts; the donor unseals (via
//!   `MIG_ABORT`, or the seal timeout below) and keeps serving.
//! * **Coordinator crashes**: if it died before the TFS table write, the
//!   flip never existed — the donor's seal times out, it confirms via the
//!   TFS primary that it still owns the trunk, drops the migration state
//!   and keeps serving. If it died after the TFS write, the flip *is*
//!   committed — the donor's timed-out seal check syncs the new table,
//!   completes the flip locally and answers `MOVED` from then on. Either
//!   way there is exactly one owner per the TFS primary at all times.
//! * **Coordinator is merely slow** (not dead): the seal is a lease. A
//!   donor that unseals after [`SEAL_TIMEOUT`] first *persists* that
//!   decision by rewriting the primary table at the file version it just
//!   read (a TFS compare-and-swap "touch"); the slow coordinator's flip
//!   is itself a conditional write against the version it read, so one
//!   of the two loses deterministically. A post-unseal donor write can
//!   therefore never be silently missing from a committed flip — the
//!   flip aborts instead.
//! * **Coordinator dies before sealing**: the donor entry would log
//!   dirty ids forever. An unsealed entry with no coordinator frame for
//!   [`DONOR_IDLE_TIMEOUT`] is garbage collected by the write gate; a
//!   late frame from the abandoned attempt gets "no migration in
//!   flight" and the coordinator (if alive after all) aborts cleanly.
//! * **Coordinator dies mid-stream**: the recipient's partial staging is
//!   orphaned (no abort ever arrives). It is *never* adopted as the
//!   trunk's contents: only a staging marked complete by `MIG_COMMIT`
//!   survives the table install that grants ownership — an uncommitted
//!   one is evicted and the trunk reloads from its TFS backup — and
//!   installs unrelated to the migration expire staging idle past
//!   `STAGING_TIMEOUT`.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use trinity_memstore::CellVersion;
use trinity_net::{Endpoint, MachineId};

use crate::proto;
use crate::table::AddressingTable;
use crate::{CellId, CloudError, Result};

/// How long a donor honours a seal with no flip before it assumes the
/// coordinator died and resolves ownership through the TFS primary. The
/// seal is a *lease*: before resuming writes the donor must persist its
/// unseal decision by touching the primary table's file version, so a
/// merely-slow coordinator's pending flip fails its conditional write
/// instead of silently dropping the donor's post-unseal writes.
pub const SEAL_TIMEOUT: Duration = Duration::from_secs(1);

/// How long an *unsealed* donor entry survives with no coordinator
/// frame (`MIG_READ`/`MIG_DELTA`/`MIG_SEAL`) before the donor garbage
/// collects it: a coordinator that died before sealing would otherwise
/// leave the trunk paying the delta-log cost on every write forever.
/// Dropping the entry is safe pre-seal — the coordinator's next frame
/// gets "no migration in flight" and the attempt aborts cleanly.
pub const DONOR_IDLE_TIMEOUT: Duration = Duration::from_secs(3);

/// How long a recipient keeps an inbound staging with no `MIG_APPLY` /
/// `MIG_COMMIT` frame before a table install treats it as orphaned (the
/// coordinator died mid-stream and its abort never arrived) and evicts
/// it rather than carrying the partial image along.
pub(crate) const STAGING_TIMEOUT: Duration = Duration::from_secs(10);

/// Mint a migration id: globally monotonic, so a recipient can order
/// competing migration attempts for the same trunk.
pub fn next_migration_id() -> u64 {
    // Version stamps and migration ids share one monotonic source; they
    // are never compared against each other.
    trinity_memstore::next_version()
}

/// One migrated cell state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MigEntry {
    /// The cell exists with these bytes, stamped `version`.
    Upsert {
        id: CellId,
        version: CellVersion,
        bytes: Vec<u8>,
    },
    /// The cell was removed; `version` is a fence stamp minted at drain
    /// time (greater than any stamp the cell ever carried).
    Remove { id: CellId, version: CellVersion },
}

impl MigEntry {
    /// The cell this entry describes.
    pub fn id(&self) -> CellId {
        match self {
            MigEntry::Upsert { id, .. } | MigEntry::Remove { id, .. } => *id,
        }
    }

    /// The fence stamp this entry carries.
    pub fn version(&self) -> CellVersion {
        match self {
            MigEntry::Upsert { version, .. } | MigEntry::Remove { version, .. } => *version,
        }
    }

    /// Payload bytes shipped by this entry (0 for removes).
    pub fn payload_len(&self) -> usize {
        match self {
            MigEntry::Upsert { bytes, .. } => bytes.len(),
            MigEntry::Remove { .. } => 0,
        }
    }
}

// ---------------------------------------------------------------------
// Node-side state
// ---------------------------------------------------------------------

/// Donor-side record of one outbound migration.
pub(crate) struct DonorMig {
    /// Migration id this entry belongs to; stale frames are rejected.
    pub(crate) mid: u64,
    /// Cell ids resident at `MIG_BEGIN` (the stream cursor walks this).
    pub(crate) snapshot: Vec<CellId>,
    /// Dirty cells in first-touch order, awaiting a delta drain.
    pub(crate) dirty: VecDeque<CellId>,
    pub(crate) dirty_set: HashSet<CellId>,
    /// When the seal landed; `None` while streaming/catching up.
    pub(crate) sealed_at: Option<Instant>,
    /// Last coordinator frame seen; an unsealed entry idle past
    /// [`DONOR_IDLE_TIMEOUT`] is garbage collected by the write gate.
    pub(crate) last_frame: Instant,
}

/// Outcome of arming a donor-side migration (see
/// [`MigrationState::begin_donor`]).
pub(crate) enum BeginOutcome {
    /// New entry published (empty snapshot — the caller fills it).
    Created(Arc<Mutex<DonorMig>>),
    /// Same mid already armed (duplicated BEGIN); snapshot length carried.
    Existing(usize),
    /// The frame's mid is older than the armed attempt.
    Stale,
}

/// Recipient-side record of one inbound migration: the per-cell version
/// fence that makes chunk application idempotent and reorder-proof.
pub(crate) struct Incoming {
    pub(crate) mid: u64,
    pub(crate) fence: HashMap<CellId, CellVersion>,
    /// Set by `MIG_COMMIT`: the staged image is complete and persisted
    /// to TFS. Only a committed staging may be adopted as authoritative
    /// when a table install makes this node the trunk's owner — an
    /// uncommitted one is a partial stream and must be discarded.
    pub(crate) committed: bool,
    /// Last frame of this attempt; staging idle past
    /// [`STAGING_TIMEOUT`] is treated as orphaned at install time.
    pub(crate) last_frame: Instant,
}

/// A node's migration books: outbound donors, inbound fences, and the
/// trunks this node gave away (with their flip epochs, for `MOVED`).
#[derive(Default)]
pub(crate) struct MigrationState {
    donors: RwLock<HashMap<u64, Arc<Mutex<DonorMig>>>>,
    incoming: Mutex<HashMap<u64, Incoming>>,
    moved: RwLock<HashMap<u64, u64>>,
}

impl MigrationState {
    /// The donor entry for `gid`, if a migration is in flight.
    pub(crate) fn donor(&self, gid: u64) -> Option<Arc<Mutex<DonorMig>>> {
        self.donors.read().get(&gid).cloned()
    }

    /// Shared lock over the donor map. The write gate holds this across a
    /// trunk mutation so that `begin_donor` (which takes the write lock)
    /// cannot publish an entry — and snapshot the trunk — mid-mutation:
    /// every write either precedes the snapshot or is caught by the log.
    pub(crate) fn donors_read(
        &self,
    ) -> parking_lot::RwLockReadGuard<'_, HashMap<u64, Arc<Mutex<DonorMig>>>> {
        self.donors.read()
    }

    /// Exclusive lock over the donor map. The tiering spill path acquires
    /// it as a write *barrier*: every in-flight mutation holds the read
    /// lock while applying, so once this lock is granted the trunk about
    /// to be captured is quiescent, and any later mutation re-checks the
    /// tier state under the read lock and backs off.
    pub(crate) fn donors_write(
        &self,
    ) -> parking_lot::RwLockWriteGuard<'_, HashMap<u64, Arc<Mutex<DonorMig>>>> {
        self.donors.write()
    }

    /// Arm delta capture for `gid`. A newer mid supersedes a stalled
    /// older attempt; an older mid is rejected. On `Created` the caller
    /// must capture the trunk's cell ids into the (still empty) snapshot
    /// — the entry is published *first* so any write racing the snapshot
    /// is caught by the delta log (see the donor's write gate).
    pub(crate) fn begin_donor(&self, gid: u64, mid: u64) -> BeginOutcome {
        let mut donors = self.donors.write();
        if let Some(existing) = donors.get(&gid) {
            let g = existing.lock();
            match g.mid.cmp(&mid) {
                std::cmp::Ordering::Equal => return BeginOutcome::Existing(g.snapshot.len()),
                std::cmp::Ordering::Greater => return BeginOutcome::Stale,
                std::cmp::Ordering::Less => {}
            }
        }
        let entry = Arc::new(Mutex::new(DonorMig {
            mid,
            snapshot: Vec::new(),
            dirty: VecDeque::new(),
            dirty_set: HashSet::new(),
            sealed_at: None,
            last_frame: Instant::now(),
        }));
        donors.insert(gid, Arc::clone(&entry));
        BeginOutcome::Created(entry)
    }

    /// Drop the donor entry for `gid` if it belongs to `mid` (or to any
    /// mid, when `mid` is `None` — the local auto-unseal path).
    pub(crate) fn abort_donor(&self, gid: u64, mid: Option<u64>) {
        let mut donors = self.donors.write();
        if let Some(e) = donors.get(&gid) {
            if mid.is_none_or(|m| e.lock().mid == m) {
                donors.remove(&gid);
            }
        }
    }

    /// The flip epoch of a trunk this node gave away, if any.
    pub(crate) fn moved_epoch(&self, gid: u64) -> Option<u64> {
        self.moved.read().get(&gid).copied()
    }

    /// Run the recipient-side fence for `mid`/`gid` over `entries`,
    /// returning only the entries that survive (newer than the fence).
    /// `None` means the whole frame is from a superseded migration. The
    /// boolean is true when this frame *starts* an attempt (first frame,
    /// or a newer mid superseding a stalled one): the caller must then
    /// discard whatever a previous attempt staged before applying.
    pub(crate) fn fence_incoming(
        &self,
        gid: u64,
        mid: u64,
        entries: Vec<MigEntry>,
    ) -> Option<(bool, Vec<MigEntry>)> {
        let mut incoming = self.incoming.lock();
        let mut started = false;
        let inc = incoming.entry(gid).or_insert_with(|| {
            started = true;
            Incoming {
                mid,
                fence: HashMap::new(),
                committed: false,
                last_frame: Instant::now(),
            }
        });
        match inc.mid.cmp(&mid) {
            std::cmp::Ordering::Greater => return None,
            std::cmp::Ordering::Less => {
                // A newer attempt supersedes whatever the old one staged.
                started = true;
                *inc = Incoming {
                    mid,
                    fence: HashMap::new(),
                    committed: false,
                    last_frame: Instant::now(),
                };
            }
            std::cmp::Ordering::Equal => inc.last_frame = Instant::now(),
        }
        let mut fresh = Vec::with_capacity(entries.len());
        for e in entries {
            match inc.fence.get(&e.id()) {
                Some(&v) if v >= e.version() => continue,
                _ => {
                    inc.fence.insert(e.id(), e.version());
                    fresh.push(e);
                }
            }
        }
        Some((started, fresh))
    }

    /// Whether an inbound migration is staging into `gid` on this node.
    pub(crate) fn has_incoming(&self, gid: u64) -> bool {
        self.incoming.lock().contains_key(&gid)
    }

    /// Mark `gid`'s inbound staging complete (its image is persisted to
    /// TFS): `MIG_COMMIT` landed for `mid`. A table flip may now adopt
    /// the staged trunk as authoritative. Stale mids are ignored.
    pub(crate) fn commit_incoming(&self, gid: u64, mid: u64) {
        if let Some(inc) = self.incoming.lock().get_mut(&gid) {
            if inc.mid == mid {
                inc.committed = true;
                inc.last_frame = Instant::now();
            }
        }
    }

    /// Whether `gid`'s inbound staging, if any, is committed — i.e. the
    /// resident trunk holds a complete, TFS-persisted migrated image
    /// that a table install may trust.
    pub(crate) fn incoming_committed(&self, gid: u64) -> bool {
        self.incoming
            .lock()
            .get(&gid)
            .is_some_and(|inc| inc.committed)
    }

    /// Whether `gid`'s inbound staging is still actively fed (a frame
    /// within [`STAGING_TIMEOUT`]). An inactive one is orphaned: its
    /// coordinator died mid-stream and the abort never arrived.
    pub(crate) fn incoming_active(&self, gid: u64) -> bool {
        self.incoming
            .lock()
            .get(&gid)
            .is_some_and(|inc| inc.last_frame.elapsed() < STAGING_TIMEOUT)
    }

    /// Unconditionally drop `gid`'s inbound staging record (install-time
    /// cleanup of orphaned or untrusted staging).
    pub(crate) fn drop_incoming(&self, gid: u64) {
        self.incoming.lock().remove(&gid);
    }

    /// Drop the inbound fence for `gid` if it belongs to `mid` — the
    /// recipient half of an abort. Returns whether it was dropped; a late
    /// abort from a superseded attempt must not touch newer staging.
    pub(crate) fn abort_incoming(&self, gid: u64, mid: u64) -> bool {
        let mut incoming = self.incoming.lock();
        if incoming.get(&gid).is_some_and(|inc| inc.mid == mid) {
            incoming.remove(&gid);
            return true;
        }
        false
    }

    /// Forget everything — used when a machine revives after a crash: its
    /// in-flight migrations (either side) died with it, and the fresh
    /// table sync rebuilds the `moved` book from scratch.
    pub(crate) fn reset(&self) {
        self.donors.write().clear();
        self.incoming.lock().clear();
        self.moved.write().clear();
    }

    /// Reconcile the books with a freshly installed table: donor entries
    /// for trunks that left this machine are over (the flip completed),
    /// their flip epochs are recorded for `MOVED` replies, and inbound
    /// fences for trunks now owned here are done. Trunks that came *back*
    /// are no longer "moved".
    pub(crate) fn on_table_installed(
        &self,
        me: MachineId,
        old: &AddressingTable,
        new: &AddressingTable,
    ) {
        self.donors
            .write()
            .retain(|&gid, _| new.machine_for(gid) == me);
        let mut moved = self.moved.write();
        for gid in old.trunks_of(me) {
            if new.machine_for(gid) != me {
                moved.insert(gid, new.epoch);
            }
        }
        moved.retain(|&gid, _| new.machine_for(gid) != me);
        drop(moved);
        self.incoming
            .lock()
            .retain(|&gid, _| new.machine_for(gid) != me);
    }
}

// ---------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------

pub(crate) const MIG_OK: u8 = 0;
pub(crate) const MIG_ERR: u8 = 1;

const UPSERT_TAG: u8 = 0;
const REMOVE_TAG: u8 = 1;

/// Every migration request starts `[mid u64, trunk u64]`.
pub(crate) fn encode_header(mid: u64, trunk: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&mid.to_le_bytes());
    out.extend_from_slice(&trunk.to_le_bytes());
    out
}

pub(crate) fn decode_header(data: &[u8]) -> Option<(u64, u64, &[u8])> {
    if data.len() < 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(data[..8].try_into().unwrap()),
        u64::from_le_bytes(data[8..16].try_into().unwrap()),
        &data[16..],
    ))
}

pub(crate) fn encode_entries(out: &mut Vec<u8>, entries: &[MigEntry]) {
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for e in entries {
        match e {
            MigEntry::Upsert { id, version, bytes } => {
                out.push(UPSERT_TAG);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
                out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                out.extend_from_slice(bytes);
            }
            MigEntry::Remove { id, version } => {
                out.push(REMOVE_TAG);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(&version.to_le_bytes());
            }
        }
    }
}

pub(crate) fn decode_entries(data: &[u8]) -> Option<(Vec<MigEntry>, &[u8])> {
    let n = u32::from_le_bytes(data.get(..4)?.try_into().unwrap()) as usize;
    let mut at = 4usize;
    let mut entries = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let tag = *data.get(at)?;
        let id = u64::from_le_bytes(data.get(at + 1..at + 9)?.try_into().unwrap());
        let version = u64::from_le_bytes(data.get(at + 9..at + 17)?.try_into().unwrap());
        at += 17;
        match tag {
            UPSERT_TAG => {
                let len = u32::from_le_bytes(data.get(at..at + 4)?.try_into().unwrap()) as usize;
                let bytes = data.get(at + 4..at + 4 + len)?.to_vec();
                at += 4 + len;
                entries.push(MigEntry::Upsert { id, version, bytes });
            }
            REMOVE_TAG => entries.push(MigEntry::Remove { id, version }),
            _ => return None,
        }
    }
    Some((entries, &data[at..]))
}

fn ok_reply(fields: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + fields.len() * 8);
    out.push(MIG_OK);
    for f in fields {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

pub(crate) fn err_reply(msg: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + msg.len());
    out.push(MIG_ERR);
    out.extend_from_slice(msg.as_bytes());
    out
}

pub(crate) fn ok_u64s(fields: &[u64]) -> Vec<u8> {
    ok_reply(fields)
}

pub(crate) fn ok_with_entries(fields: &[u64], entries: &[MigEntry]) -> Vec<u8> {
    let mut out = ok_reply(fields);
    encode_entries(&mut out, entries);
    out
}

/// Split an OK reply into its leading u64 fields and the remainder, or
/// surface the carried error.
fn parse_ok(raw: &[u8], n_fields: usize) -> Result<(Vec<u64>, &[u8])> {
    match raw.first() {
        Some(&MIG_OK) if raw.len() > n_fields * 8 => {
            let fields = (0..n_fields)
                .map(|i| u64::from_le_bytes(raw[1 + i * 8..9 + i * 8].try_into().unwrap()))
                .collect();
            Ok((fields, &raw[1 + n_fields * 8..]))
        }
        Some(&MIG_ERR) => Err(CloudError::Migration(
            String::from_utf8_lossy(&raw[1..]).into_owned(),
        )),
        _ => Err(CloudError::BadReply),
    }
}

// ---------------------------------------------------------------------
// Coordinator-side client API (used by trinity-elastic)
// ---------------------------------------------------------------------

fn call(ep: &Endpoint, dst: MachineId, pid: u16, req: &[u8]) -> Result<Vec<u8>> {
    ep.call(dst, pid, req)
        .map(|r| r.into_vec())
        .map_err(CloudError::Net)
}

/// Arm delta capture on the donor. Returns the snapshot cell count.
pub fn begin(ep: &Endpoint, donor: MachineId, mid: u64, trunk: u64) -> Result<u64> {
    let raw = call(ep, donor, proto::MIG_BEGIN, &encode_header(mid, trunk))?;
    Ok(parse_ok(&raw, 1)?.0[0])
}

/// Read one bounded chunk of the donor's snapshot from `cursor`.
/// Returns `(next_cursor, entries)`; an empty batch with
/// `next_cursor >= snapshot length` ends the stream.
pub fn read_chunk(
    ep: &Endpoint,
    donor: MachineId,
    mid: u64,
    trunk: u64,
    cursor: u64,
    max_cells: u32,
    max_bytes: u32,
) -> Result<(u64, Vec<MigEntry>)> {
    let mut req = encode_header(mid, trunk);
    req.extend_from_slice(&cursor.to_le_bytes());
    req.extend_from_slice(&max_cells.to_le_bytes());
    req.extend_from_slice(&max_bytes.to_le_bytes());
    let raw = call(ep, donor, proto::MIG_READ, &req)?;
    let (fields, rest) = parse_ok(&raw, 1)?;
    let (entries, tail) = decode_entries(rest).ok_or(CloudError::BadReply)?;
    if !tail.is_empty() {
        return Err(CloudError::BadReply);
    }
    Ok((fields[0], entries))
}

/// Drain up to `max` dirty cells from the donor's delta log. Returns the
/// number still pending and the drained entries (resolved to their
/// current state at drain time).
pub fn drain_delta(
    ep: &Endpoint,
    donor: MachineId,
    mid: u64,
    trunk: u64,
    max: u32,
) -> Result<(u64, Vec<MigEntry>)> {
    let mut req = encode_header(mid, trunk);
    req.extend_from_slice(&max.to_le_bytes());
    let raw = call(ep, donor, proto::MIG_DELTA, &req)?;
    let (fields, rest) = parse_ok(&raw, 1)?;
    let (entries, tail) = decode_entries(rest).ok_or(CloudError::BadReply)?;
    if !tail.is_empty() {
        return Err(CloudError::BadReply);
    }
    Ok((fields[0], entries))
}

/// Seal the trunk on the donor: writes are refused from here on (reads
/// still serve). Returns the delta entries still pending.
pub fn seal(ep: &Endpoint, donor: MachineId, mid: u64, trunk: u64) -> Result<u64> {
    let raw = call(ep, donor, proto::MIG_SEAL, &encode_header(mid, trunk))?;
    Ok(parse_ok(&raw, 1)?.0[0])
}

/// Abandon the migration on the donor: delta capture stops, a seal is
/// lifted, and the donor keeps serving as before.
pub fn abort(ep: &Endpoint, donor: MachineId, mid: u64, trunk: u64) -> Result<()> {
    let raw = call(ep, donor, proto::MIG_ABORT, &encode_header(mid, trunk))?;
    parse_ok(&raw, 0).map(|_| ())
}

/// Apply a batch of migrated entries on the recipient. Returns how many
/// survived the version fence (duplicates and stale frames are dropped).
pub fn apply(
    ep: &Endpoint,
    recipient: MachineId,
    mid: u64,
    trunk: u64,
    entries: &[MigEntry],
) -> Result<u64> {
    let mut req = encode_header(mid, trunk);
    encode_entries(&mut req, entries);
    let raw = call(ep, recipient, proto::MIG_APPLY, &req)?;
    Ok(parse_ok(&raw, 1)?.0[0])
}

/// Persist the assembled trunk on the recipient to TFS (pre-flip, so a
/// crash after the flip recovers the migrated state).
pub fn commit(ep: &Endpoint, recipient: MachineId, mid: u64, trunk: u64) -> Result<()> {
    let raw = call(ep, recipient, proto::MIG_COMMIT, &encode_header(mid, trunk))?;
    parse_ok(&raw, 0).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entry_codec_roundtrip() {
        let entries = vec![
            MigEntry::Upsert {
                id: 7,
                version: 40,
                bytes: b"payload".to_vec(),
            },
            MigEntry::Remove { id: 9, version: 41 },
            MigEntry::Upsert {
                id: 1,
                version: 42,
                bytes: Vec::new(),
            },
        ];
        let mut raw = Vec::new();
        encode_entries(&mut raw, &entries);
        let (decoded, rest) = decode_entries(&raw).unwrap();
        assert_eq!(decoded, entries);
        assert!(rest.is_empty());
        // Truncation does not parse.
        assert!(decode_entries(&raw[..raw.len() - 1]).is_none());
    }

    #[test]
    fn header_roundtrip() {
        let h = encode_header(5, 12);
        assert_eq!(decode_header(&h), Some((5, 12, &b""[..])));
        assert_eq!(decode_header(&h[..10]), None);
    }

    #[test]
    fn incoming_fence_drops_stale_and_duplicate_entries() {
        let st = MigrationState::default();
        let up = |id, version| MigEntry::Upsert {
            id,
            version,
            bytes: vec![version as u8],
        };
        let (started, first) = st.fence_incoming(3, 10, vec![up(1, 5), up(2, 6)]).unwrap();
        assert!(started);
        assert_eq!(first.len(), 2);
        // A duplicated frame re-applies nothing (and does not restart).
        let (started, dup) = st.fence_incoming(3, 10, vec![up(1, 5), up(2, 6)]).unwrap();
        assert!(!started && dup.is_empty());
        // A newer state passes; an older reordered one does not.
        let (_, next) = st
            .fence_incoming(
                3,
                10,
                vec![up(1, 9), MigEntry::Remove { id: 2, version: 4 }],
            )
            .unwrap();
        assert_eq!(next, vec![up(1, 9)]);
        // A frame from a superseded migration attempt is rejected whole.
        assert!(st.fence_incoming(3, 9, vec![up(1, 50)]).is_none());
        // A newer attempt resets the fence (and flags the restart so the
        // recipient discards the old staging).
        let (started, fresh) = st.fence_incoming(3, 11, vec![up(1, 5)]).unwrap();
        assert!(started);
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn begin_donor_orders_migration_attempts() {
        let st = MigrationState::default();
        let BeginOutcome::Created(entry) = st.begin_donor(1, 10) else {
            panic!("first begin must create");
        };
        entry.lock().snapshot = vec![1, 2, 3];
        // Same mid is idempotent (duplicated BEGIN frame).
        assert!(matches!(st.begin_donor(1, 10), BeginOutcome::Existing(3)));
        // Stale mid is rejected; newer mid supersedes.
        assert!(matches!(st.begin_donor(1, 9), BeginOutcome::Stale));
        assert!(matches!(st.begin_donor(1, 11), BeginOutcome::Created(_)));
        // Abort with the wrong mid is a no-op; right mid clears.
        st.abort_donor(1, Some(10));
        assert!(st.donor(1).is_some());
        st.abort_donor(1, Some(11));
        assert!(st.donor(1).is_none());
    }
}
