//! Trunk tiering: out-of-core residency under a per-machine memory
//! budget (DESIGN.md §15).
//!
//! The §5.4 residency model observes that offline jobs only need the
//! scheduled partition fully resident. Tiering is the mechanism that acts
//! on it: a *cold* trunk spills its sealed cell image to TFS (the same
//! version-stamped backup path recovery reads) and drops out of the
//! memstore; the next access faults it back in. Per trunk, the state
//! machine is:
//!
//! ```text
//! resident ──spill──▶ Spilling ──CAS write──▶ Spilled{version}
//!    ▲                                             │ access
//!    └──────── FaultingIn ◀────────────────────────┘
//! ```
//!
//! * **resident** (no entry): the trunk lives in the memstore; accesses
//!   pay one atomic load over the untiered baseline.
//! * **Spilling**: capture + TFS write in progress. The spiller seals the
//!   trunk first (see [`CloudNode::spill_trunk`]'s donor-lock barrier), so
//!   no mutation can land between the capture and the evict; readers and
//!   writers arriving during the window wait on the state's condvar.
//! * **Spilled{version}**: the image lives only in TFS, at that file
//!   version. The first accessor transitions to FaultingIn; everyone else
//!   waits.
//! * **FaultingIn**: exactly one thread reads + decodes + restores the
//!   image, then clears the entry and wakes the waiters. A failed fault
//!   (TFS unreachable) falls back to Spilled so a later access retries.
//!
//! Pinning ([`Tiering::pin`]) is how the BSP bucket prefetcher protects
//! the scheduled (and next-scheduled) trunks: eviction never selects a
//! pinned trunk, mirroring "never the trunk currently scheduled".
//!
//! [`CloudNode::spill_trunk`]: crate::CloudNode::spill_trunk

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use trinity_obs::{Counter, Gauge, MachineScope};

/// Per-trunk tiering state. Absence from the map means *resident*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierState {
    /// Snapshot capture + TFS write in progress; accessors wait.
    Spilling,
    /// Image lives only in TFS, at this file version.
    Spilled {
        /// TFS file version of the spilled image (the CAS stamp).
        version: u64,
    },
    /// Exactly one accessor is restoring the image; the rest wait.
    FaultingIn,
}

/// What a tier-aware accessor should do about trunk residency.
pub(crate) enum FaultTurn {
    /// No tier entry: the trunk is (or may be created) resident.
    Resident,
    /// This thread won the FaultingIn transition and must restore the
    /// image spilled at `version`.
    Fault { version: u64 },
}

/// Aggregated tiering counters for one machine. The same values are
/// published as `tier.*` metrics in the machine's registry scope.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TierStats {
    /// Trunks spilled to TFS.
    pub spills: u64,
    /// Encoded image bytes written by spills.
    pub spill_bytes: u64,
    /// Trunks faulted back in from TFS.
    pub faults: u64,
    /// Encoded image bytes read by fault-ins.
    pub fault_bytes: u64,
    /// Bucket-prefetch checks that found the trunk already resident.
    pub prefetch_hits: u64,
    /// Bucket-prefetch checks that had to fault the trunk in.
    pub prefetch_misses: u64,
    /// Trunks currently spilled (image only in TFS).
    pub spilled_trunks: u64,
    /// Resident trunk bytes (the `tier.resident_bytes` gauge).
    pub resident_bytes: i64,
}

/// `tier.*` metric handles, created once per machine scope.
pub(crate) struct TierMetrics {
    pub(crate) spills: Arc<Counter>,
    pub(crate) spill_bytes: Arc<Counter>,
    pub(crate) faults: Arc<Counter>,
    pub(crate) fault_bytes: Arc<Counter>,
    pub(crate) prefetch_hits: Arc<Counter>,
    pub(crate) prefetch_misses: Arc<Counter>,
    pub(crate) resident_bytes: Arc<Gauge>,
}

impl TierMetrics {
    fn new(obs: &MachineScope) -> Self {
        TierMetrics {
            spills: obs.counter("tier.spills"),
            spill_bytes: obs.counter("tier.spill_bytes"),
            faults: obs.counter("tier.faults"),
            fault_bytes: obs.counter("tier.fault_bytes"),
            prefetch_hits: obs.counter("tier.prefetch_hits"),
            prefetch_misses: obs.counter("tier.prefetch_misses"),
            resident_bytes: obs.gauge("tier.resident_bytes"),
        }
    }
}

/// One machine's tiering books: the per-trunk state map, pin counts, the
/// memory budget, and the `tier.*` metric handles. The spill/fault logic
/// itself lives on `CloudNode` (it needs the store, TFS, and migration
/// books); this struct owns only the state machine.
pub(crate) struct Tiering {
    /// Fast-path gate: true iff a budget is set or any trunk has a tier
    /// entry. When false, tier-aware accessors pay one relaxed load.
    active: AtomicBool,
    /// Per-machine resident-bytes budget; 0 means unlimited (tiering only
    /// acts through explicit `spill_trunk` calls).
    budget: AtomicU64,
    states: Mutex<HashMap<u64, TierState>>,
    cv: Condvar,
    /// Pin counts per trunk: pinned trunks are never chosen for eviction.
    pins: Mutex<HashMap<u64, usize>>,
    /// Mutations since the last budget sweep (write-path trigger).
    write_ticks: AtomicU64,
    pub(crate) metrics: TierMetrics,
}

/// Budget sweeps trigger every this many mutations (plus after every
/// fault-in), so a write-heavy phase cannot overrun the budget by more
/// than a bounded amount between sweeps.
const WRITES_PER_SWEEP: u64 = 128;

impl Tiering {
    pub(crate) fn new(obs: &MachineScope) -> Self {
        Tiering {
            active: AtomicBool::new(false),
            budget: AtomicU64::new(0),
            states: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
            pins: Mutex::new(HashMap::new()),
            write_ticks: AtomicU64::new(0),
            metrics: TierMetrics::new(obs),
        }
    }

    #[inline]
    pub(crate) fn is_active(&self) -> bool {
        self.active.load(Ordering::Relaxed)
    }

    pub(crate) fn budget(&self) -> u64 {
        self.budget.load(Ordering::Relaxed)
    }

    pub(crate) fn set_budget(&self, bytes: u64) {
        self.budget.store(bytes, Ordering::Relaxed);
        if bytes > 0 {
            self.active.store(true, Ordering::Relaxed);
        } else {
            self.active
                .store(!self.states.lock().is_empty(), Ordering::Relaxed);
        }
    }

    /// Whether the write-path trigger elects this mutation for a sweep.
    pub(crate) fn write_tick(&self) -> bool {
        self.budget() > 0
            && self
                .write_ticks
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(WRITES_PER_SWEEP)
    }

    pub(crate) fn pin(&self, gid: u64) {
        *self.pins.lock().entry(gid).or_insert(0) += 1;
    }

    pub(crate) fn unpin(&self, gid: u64) {
        let mut pins = self.pins.lock();
        if let Some(n) = pins.get_mut(&gid) {
            *n -= 1;
            if *n == 0 {
                pins.remove(&gid);
            }
        }
    }

    pub(crate) fn pinned(&self, gid: u64) -> bool {
        self.pins.lock().contains_key(&gid)
    }

    /// Whether `gid` has any tier entry — the write gate's re-check under
    /// the donor read lock. Any entry blocks a mutation: Spilling must
    /// drain, Spilled must fault in, FaultingIn must finish.
    #[inline]
    pub(crate) fn blocks(&self, gid: u64) -> bool {
        self.is_active() && self.states.lock().contains_key(&gid)
    }

    /// Current tier state of `gid` (`None` = resident), without blocking.
    pub(crate) fn state(&self, gid: u64) -> Option<TierState> {
        if !self.is_active() {
            return None;
        }
        self.states.lock().get(&gid).copied()
    }

    /// Claim the Spilling slot for `gid`. Fails if any tier entry exists
    /// (already spilled, or a concurrent spill/fault is in flight).
    pub(crate) fn try_begin_spill(&self, gid: u64) -> bool {
        let mut states = self.states.lock();
        if states.contains_key(&gid) {
            return false;
        }
        states.insert(gid, TierState::Spilling);
        self.active.store(true, Ordering::Relaxed);
        true
    }

    /// Abandon an in-flight spill: the trunk stays resident.
    pub(crate) fn abort_spill(&self, gid: u64) {
        let mut states = self.states.lock();
        states.remove(&gid);
        self.recompute_active(&states);
        self.cv.notify_all();
    }

    /// Commit a spill: the image landed in TFS at `version` and the
    /// caller evicted the trunk. Waiters wake and fault it back in.
    pub(crate) fn commit_spill(&self, gid: u64, version: u64) {
        let mut states = self.states.lock();
        states.insert(gid, TierState::Spilled { version });
        drop(states);
        self.cv.notify_all();
    }

    /// Claim the Spilled → FaultingIn transition without blocking: the
    /// prefetch path's bulk variant of [`await_fault_turn`]. `None` when
    /// the trunk is resident or busy (mid-spill or already faulting) —
    /// the compute path's blocking turn resolves those.
    ///
    /// [`await_fault_turn`]: Self::await_fault_turn
    pub(crate) fn try_begin_fault(&self, gid: u64) -> Option<u64> {
        let mut states = self.states.lock();
        match states.get(&gid).copied() {
            Some(TierState::Spilled { version }) => {
                states.insert(gid, TierState::FaultingIn);
                Some(version)
            }
            _ => None,
        }
    }

    /// Wait until `gid` is either resident or this thread wins the
    /// Spilled → FaultingIn transition.
    pub(crate) fn await_fault_turn(&self, gid: u64) -> FaultTurn {
        let mut states = self.states.lock();
        loop {
            match states.get(&gid).copied() {
                None => return FaultTurn::Resident,
                Some(TierState::Spilled { version }) => {
                    states.insert(gid, TierState::FaultingIn);
                    return FaultTurn::Fault { version };
                }
                Some(TierState::Spilling) | Some(TierState::FaultingIn) => {
                    self.cv.wait(&mut states);
                }
            }
        }
    }

    /// Fault-in finished: the trunk is resident again.
    pub(crate) fn finish_fault(&self, gid: u64) {
        let mut states = self.states.lock();
        states.remove(&gid);
        self.recompute_active(&states);
        self.cv.notify_all();
    }

    /// Fault-in failed (TFS unreachable): fall back to Spilled so a later
    /// access retries the restore.
    pub(crate) fn fail_fault(&self, gid: u64, version: u64) {
        let mut states = self.states.lock();
        states.insert(gid, TierState::Spilled { version });
        drop(states);
        self.cv.notify_all();
    }

    /// Drop whatever entry `gid` has — used by table installs when trunk
    /// ownership changes hands (the new owner reloads from TFS through
    /// the recovery path, which reads the same image a spill wrote).
    pub(crate) fn forget(&self, gid: u64) {
        let mut states = self.states.lock();
        if states.remove(&gid).is_some() {
            self.recompute_active(&states);
            self.cv.notify_all();
        }
    }

    /// Drop all tiering state (machine revival).
    pub(crate) fn reset(&self) {
        let mut states = self.states.lock();
        states.clear();
        self.pins.lock().clear();
        self.recompute_active(&states);
        self.cv.notify_all();
    }

    /// Trunks currently spilled, with their image versions.
    pub(crate) fn spilled(&self) -> Vec<(u64, u64)> {
        self.states
            .lock()
            .iter()
            .filter_map(|(&gid, &st)| match st {
                TierState::Spilled { version } => Some((gid, version)),
                _ => None,
            })
            .collect()
    }

    pub(crate) fn spilled_count(&self) -> u64 {
        self.states
            .lock()
            .values()
            .filter(|s| matches!(s, TierState::Spilled { .. }))
            .count() as u64
    }

    fn recompute_active(&self, states: &HashMap<u64, TierState>) {
        self.active
            .store(self.budget() > 0 || !states.is_empty(), Ordering::Relaxed);
    }

    /// Snapshot the machine's tier counters.
    pub(crate) fn stats(&self) -> TierStats {
        TierStats {
            spills: self.metrics.spills.get(),
            spill_bytes: self.metrics.spill_bytes.get(),
            faults: self.metrics.faults.get(),
            fault_bytes: self.metrics.fault_bytes.get(),
            prefetch_hits: self.metrics.prefetch_hits.get(),
            prefetch_misses: self.metrics.prefetch_misses.get(),
            spilled_trunks: self.spilled_count(),
            resident_bytes: self.metrics.resident_bytes.get(),
        }
    }
}
