//! One machine's view of the memory cloud.
//!
//! A [`CloudNode`] owns the machine-local trunks, a replica of the
//! addressing table, and the protocol handlers that serve remote cell
//! accesses. All cell operations are *location transparent*: the node
//! routes by the two-step hash and either touches its own trunks or issues
//! a one-sided call to the owner.
//!
//! Staleness protocol (paper §6.2): when an access fails — the owner is
//! unreachable, or it answers "not owner" — the node re-syncs its table
//! replica from the TFS primary and retries once. If the table hasn't
//! changed (no recovery happened yet), the error propagates to the caller,
//! who is expected to inform the leader (see `trinity-core`'s recovery).
//!
//! # Remote-read cache and coherence
//!
//! Every node keeps a [`RemoteCache`] of remote cells it has read (or
//! written), keyed by cell id and stamped with the trunk-minted version.
//! Coherence is owner-driven write-invalidate:
//!
//! * the owner tracks, per trunk, which machines hold cached copies (the
//!   *sharers*: any machine whose GET/MULTI_GET/PUT passed through it);
//! * a mutation bumps the cell's version stamp, then synchronously
//!   invalidates every sharer **before acknowledging the writer** — after
//!   a write returns, no fault-free reader serves the old value;
//! * the writer itself is excluded from the broadcast: its ack carries the
//!   new stamp, which it applies to its own cache before returning.
//!
//! Sharer registration is ordered through the cell's spin lock (a reader
//! registers while the cell is pinned; a writer registers before the trunk
//! write), so any read that observed the pre-write payload is visible to
//! the write's invalidation snapshot. Invalidations to unreachable
//! machines drop the sharer; invalidations that time out degrade to the
//! bounded-staleness floor protocol (the version floor in the reader's
//! cache rejects stale inserts whenever the invalidation does land). The
//! protocol assumes a cluster-wide uniform `cache_capacity`: with the
//! cache disabled, nodes neither track sharers nor send invalidations.

use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use trinity_memstore::{
    CellVersion, LocalStore, LocalStoreConfig, StoreError, Trunk, TrunkSnapshot, TrunkStats,
};
use trinity_net::{Endpoint, FrameBuf, MachineId, NetError};
use trinity_obs::MachineScope;
use trinity_tfs::Tfs;

use crate::cache::{CacheStats, RemoteCache};
use crate::migration::{self, BeginOutcome, MigEntry, MigrationState, SEAL_TIMEOUT};
use crate::proto;
use crate::table::{AddressingTable, TFS_TABLE_PATH};
use crate::tiering::{FaultTurn, TierStats, Tiering};
use crate::wire;
use crate::{CellId, CloudError, Result};

/// TFS path of a trunk's backup image.
pub fn trunk_backup_path(gid: u64) -> String {
    format!("trunks/{gid:08}")
}

/// Per-sharer budget for a synchronous invalidation. Short on purpose: a
/// healthy sharer answers in microseconds, and under network faults the
/// write must not stall behind a dropped coherence frame — it proceeds
/// after this bound and the reader's version floor catches the straggler.
const INVALIDATE_TIMEOUT: Duration = Duration::from_millis(250);

/// How long the access path keeps retrying a `MOVED` reply. The seal
/// window of a healthy migration lasts one catch-up drain plus the table
/// flip (microseconds to milliseconds); a dead coordinator resolves after
/// [`SEAL_TIMEOUT`]. The budget comfortably covers both, so callers ride
/// out migrations without ever seeing an error.
const MOVED_RETRY_BUDGET: Duration = Duration::from_secs(3);

/// Outcome of a trunk mutation run through the migration write gate.
enum Gate<R> {
    /// The mutation was applied (and logged if a migration is in flight).
    Done(R),
    /// The trunk is sealed or gone: refuse with `MOVED{epoch}`.
    Moved { epoch: u64 },
}

/// One machine of the memory cloud.
pub struct CloudNode {
    machine: MachineId,
    endpoint: Arc<Endpoint>,
    store: Arc<LocalStore>,
    table: RwLock<AddressingTable>,
    tfs: Tfs,
    id_counter: AtomicU64,
    cache: RemoteCache,
    /// Owner-side coherence directory: for each locally hosted trunk, the
    /// machines that may hold cached copies of its cells.
    sharers: Mutex<HashMap<u64, BTreeSet<u16>>>,
    /// This machine's metrics scope; cell operations attribute themselves
    /// to the owning trunk through its `LoadMap`.
    obs: MachineScope,
    /// Migration books: outbound delta logs, inbound version fences, and
    /// flip epochs of trunks this node gave away (for `MOVED` replies).
    migration: MigrationState,
    /// Trunk tiering books: per-trunk spill/fault state, pin counts, and
    /// the memory budget (DESIGN.md §15).
    tiering: Tiering,
}

impl std::fmt::Debug for CloudNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudNode")
            .field("machine", &self.machine)
            .finish()
    }
}

impl CloudNode {
    /// Bring up a node: create its trunks per the initial table and
    /// register the cell-access protocol handlers. `cache_capacity` is the
    /// remote-read cache size in entries (0 disables caching and the
    /// coherence traffic that serves it).
    pub fn start(
        endpoint: Arc<Endpoint>,
        store_cfg: LocalStoreConfig,
        tfs: Tfs,
        initial_table: AddressingTable,
        cache_capacity: usize,
    ) -> Arc<Self> {
        let machine = endpoint.machine();
        // Trunk `store.*` metrics land in the same per-machine scope as the
        // endpoint's `net.*` counters, so one registry snapshot shows a
        // machine's traffic next to its memory utilization.
        let store = Arc::new(LocalStore::with_obs(store_cfg, endpoint.obs().clone()));
        for gid in initial_table.trunks_of(machine) {
            store.ensure_trunk(gid);
        }
        let cache = RemoteCache::new(cache_capacity, endpoint.obs());
        let obs = endpoint.obs().clone();
        let tiering = Tiering::new(&obs);
        let node = Arc::new(CloudNode {
            machine,
            endpoint,
            store,
            table: RwLock::new(initial_table),
            tfs,
            id_counter: AtomicU64::new(1),
            cache,
            sharers: Mutex::new(HashMap::new()),
            obs,
            migration: MigrationState::default(),
            tiering,
        });
        node.register_handlers();
        node
    }

    fn register_handlers(self: &Arc<Self>) {
        type CellOp = fn(&CloudNode, MachineId, CellId, &[u8]) -> Vec<u8>;
        let ops: [(u16, CellOp); 6] = [
            (proto::GET, CloudNode::handle_get),
            (proto::PUT, CloudNode::handle_put),
            (proto::REMOVE, CloudNode::handle_remove),
            (proto::APPEND, CloudNode::handle_append),
            (proto::CONTAINS, CloudNode::handle_contains),
            (proto::PUT_IF, CloudNode::handle_put_if),
        ];
        for (pid, op) in ops {
            let node = Arc::clone(self);
            self.endpoint.register(pid, move |src, data| {
                let (id, body) = match wire::decode_req(data) {
                    Some(x) => x,
                    None => return Some(wire::reply(wire::STORE_ERR, b"")),
                };
                if !node.owns(id) {
                    return Some(node.not_owner_reply(id));
                }
                Some(op(&node, src, id, body))
            });
        }
        let node = Arc::clone(self);
        self.endpoint.register(proto::MULTI_GET, move |src, data| {
            Some(node.handle_multi_get(src, data))
        });
        let node = Arc::clone(self);
        self.endpoint
            .register(proto::INVALIDATE, move |_src, data| {
                if let Some((id, version)) = wire::decode_invalidate(data) {
                    node.cache.invalidate(id, version);
                }
                Some(Vec::new())
            });
        type MigOp = fn(&CloudNode, &[u8]) -> Vec<u8>;
        let mig_ops: [(u16, MigOp); 7] = [
            (proto::MIG_BEGIN, CloudNode::handle_mig_begin),
            (proto::MIG_READ, CloudNode::handle_mig_read),
            (proto::MIG_DELTA, CloudNode::handle_mig_delta),
            (proto::MIG_SEAL, CloudNode::handle_mig_seal),
            (proto::MIG_ABORT, CloudNode::handle_mig_abort),
            (proto::MIG_APPLY, CloudNode::handle_mig_apply),
            (proto::MIG_COMMIT, CloudNode::handle_mig_commit),
        ];
        for (pid, op) in mig_ops {
            let node = Arc::clone(self);
            self.endpoint
                .register(pid, move |_src, data| Some(op(&node, data)));
        }
    }

    /// Reply for a cell this node does not own: `MOVED{epoch}` when the
    /// trunk was migrated away (the caller must sync to at least that
    /// epoch), otherwise the plain stale-table `NOT_OWNER`.
    fn not_owner_reply(&self, id: CellId) -> Vec<u8> {
        let gid = self.table.read().trunk_of(id);
        match self.migration.moved_epoch(gid) {
            Some(epoch) => wire::reply_moved(epoch),
            None => wire::reply(wire::NOT_OWNER, b""),
        }
    }

    /// This node's machine id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The node's network endpoint.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// The machine-local trunk store.
    pub fn store(&self) -> &Arc<LocalStore> {
        &self.store
    }

    /// A copy of the current addressing-table replica.
    pub fn table(&self) -> AddressingTable {
        self.table.read().clone()
    }

    /// Allocate a globally unique cell id: the machine id in the top 16
    /// bits, a local counter below. Never collides across machines and
    /// never produces the reserved `u64::MAX`.
    pub fn alloc_id(&self) -> CellId {
        ((self.machine.0 as u64) << 48) | self.id_counter.fetch_add(1, Ordering::Relaxed)
    }

    fn owns(&self, id: CellId) -> bool {
        let t = self.table.read();
        t.machine_of(id) == self.machine
    }

    fn route(&self, id: CellId) -> (u64, MachineId) {
        let t = self.table.read();
        let trunk = t.trunk_of(id);
        (trunk, t.machine_for(trunk))
    }

    // ------------------------------------------------------------------
    // Coherence directory (owner side)
    // ------------------------------------------------------------------

    /// Remember that `src` may now hold cached cells of `trunk`.
    ///
    /// Ordering contract: the caller must invoke this *before* the next
    /// mutation of the cell it served can complete — readers register
    /// while holding the cell guard, writers before the trunk write — so
    /// every copy handed out is visible to later invalidation snapshots.
    fn record_sharer(&self, trunk: u64, src: MachineId) {
        if src == self.machine || !self.cache.enabled() {
            return;
        }
        self.sharers.lock().entry(trunk).or_default().insert(src.0);
    }

    /// Synchronously invalidate every sharer's cached copy of `id` (new
    /// stamp `version`), except `exclude` — the writer, whose ack carries
    /// the stamp. Runs *before* the mutation is acknowledged.
    fn invalidate_sharers(&self, id: CellId, version: CellVersion, exclude: MachineId) {
        if !self.cache.enabled() {
            return;
        }
        let trunk = self.table.read().trunk_of(id);
        let targets: Vec<u16> = match self.sharers.lock().get(&trunk) {
            Some(s) => s
                .iter()
                .copied()
                .filter(|&m| m != exclude.0 && m != self.machine.0)
                .collect(),
            None => return,
        };
        if targets.is_empty() {
            return;
        }
        let frame = wire::encode_invalidate(id, version);
        for m in targets {
            // Timeouts and expired deadlines degrade to best effort: the
            // write proceeds and the reader's version floor rejects the
            // stale payload whenever the frame does land.
            if let Err(NetError::Unreachable(_)) = self.endpoint.call_with_deadline(
                MachineId(m),
                proto::INVALIDATE,
                &frame,
                INVALIDATE_TIMEOUT,
            ) {
                // Dead reader: its cache died with its memory. If it is
                // later revived or re-joins, reconfiguration clears its
                // cache and re-reading re-registers it.
                if let Some(s) = self.sharers.lock().get_mut(&trunk) {
                    s.remove(&m);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Local handler bodies
    // ------------------------------------------------------------------

    fn local_trunk(&self, id: CellId) -> Result<Arc<Trunk>> {
        let gid = self.table.read().trunk_of(id);
        self.resident_trunk(gid)
    }

    // ------------------------------------------------------------------
    // Trunk tiering (out-of-core residency, DESIGN.md §15)
    // ------------------------------------------------------------------

    /// The trunk, faulted back in from TFS first if tiering spilled it.
    ///
    /// Fast path — tiering inactive or the trunk resident — is one
    /// relaxed atomic load on top of the store lookup. For a spilled
    /// trunk exactly one caller wins the fault-in turn; the rest block on
    /// the tier condvar until the image is restored.
    pub fn resident_trunk(&self, gid: u64) -> Result<Arc<Trunk>> {
        if !self.tiering.is_active() {
            return Ok(self.store.ensure_trunk(gid));
        }
        loop {
            match self.tiering.await_fault_turn(gid) {
                FaultTurn::Resident => return Ok(self.store.ensure_trunk(gid)),
                // Loop after the restore: a racing spill may have taken
                // the trunk out again, in which case we queue for the
                // next fault turn rather than hand out a dead Arc.
                FaultTurn::Fault { version } => self.fault_in(gid, version)?,
            }
        }
    }

    /// Restore a spilled trunk from its TFS image. On success the tier
    /// entry clears and waiters wake; on failure the entry reverts to
    /// `Spilled` so a later access retries.
    fn fault_in(&self, gid: u64, version: u64) -> Result<()> {
        let path = trunk_backup_path(gid);
        let image = match self.tfs.read_versioned(&path) {
            Ok((_, bytes)) => Some(bytes),
            // Vanished backup (wiped TFS): an empty trunk matches the
            // `reload_trunk` durability contract.
            Err(trinity_tfs::TfsError::NotFound(_)) => None,
            Err(e) => {
                self.tiering.fail_fault(gid, version);
                return Err(e.into());
            }
        };
        if image.is_some() {
            // A resident remnant (e.g. a staging reload that raced the
            // spill) would keep cells the image doesn't vouch for: drop
            // it so the restored trunk is exactly the image.
            self.store.evict(gid);
        }
        let trunk = self.store.ensure_trunk(gid);
        let mut bytes_in = 0u64;
        if let Some(bytes) = image {
            let restored = TrunkSnapshot::decode(&bytes)
                .ok()
                .and_then(|snap| snap.restore_into(&trunk).ok());
            if restored.is_none() {
                // Undecodable or unrestorable image: drop the partial
                // trunk and leave the entry Spilled — serving a half
                // image would silently lose cells.
                self.store.evict(gid);
                self.tiering.fail_fault(gid, version);
                return Err(CloudError::Tfs(trinity_tfs::TfsError::NotFound(path)));
            }
            bytes_in = bytes.len() as u64;
        }
        self.tiering.finish_fault(gid);
        self.tiering.metrics.faults.inc();
        self.tiering.metrics.fault_bytes.add(bytes_in);
        // The freshly faulted trunk must not be the sweep's next victim —
        // its EWMA score is stale-cold. Pin it across the enforcement.
        self.tiering.pin(gid);
        let _ = self.enforce_budget();
        self.tiering.unpin(gid);
        Ok(())
    }

    /// Fault a set of trunks in with **one bulk TFS read**
    /// ([`Tfs::read_versioned_many`]) — the pipelined-prefetch path.
    /// Trunks that are resident, mid-spill, or already faulting are
    /// skipped (the compute path's blocking fault turn resolves those).
    /// Returns how many trunks were restored. Runs a budget sweep at the
    /// end: the caller is expected to have pinned the trunks it wants
    /// kept, so the sweep pushes out older buckets, not the prefetched
    /// ones.
    ///
    /// [`Tfs::read_versioned_many`]: trinity_tfs::Tfs::read_versioned_many
    pub fn fault_in_many(&self, gids: &[u64]) -> Result<usize> {
        let mut claims: Vec<(u64, u64)> = Vec::new();
        for &gid in gids {
            if let Some(version) = self.tiering.try_begin_fault(gid) {
                claims.push((gid, version));
            }
        }
        if claims.is_empty() {
            return Ok(0);
        }
        let paths: Vec<String> = claims
            .iter()
            .map(|&(gid, _)| trunk_backup_path(gid))
            .collect();
        let images = self.tfs.read_versioned_many(&paths);
        let mut restored = 0usize;
        for ((gid, version), image) in claims.into_iter().zip(images) {
            match image {
                Ok((_, bytes)) => {
                    let trunk = self.store.ensure_trunk(gid);
                    let ok = TrunkSnapshot::decode(&bytes)
                        .ok()
                        .and_then(|snap| snap.restore_into(&trunk).ok())
                        .is_some();
                    if ok {
                        self.tiering.finish_fault(gid);
                        self.tiering.metrics.faults.inc();
                        self.tiering.metrics.fault_bytes.add(bytes.len() as u64);
                        restored += 1;
                    } else {
                        self.store.evict(gid);
                        self.tiering.fail_fault(gid, version);
                    }
                }
                Err(trinity_tfs::TfsError::NotFound(_)) => {
                    // Same contract as `reload_trunk`: a vanished backup
                    // restores as an empty trunk.
                    self.store.ensure_trunk(gid);
                    self.tiering.finish_fault(gid);
                    self.tiering.metrics.faults.inc();
                    restored += 1;
                }
                Err(_) => self.tiering.fail_fault(gid, version),
            }
        }
        self.update_resident_gauge();
        let _ = self.enforce_budget();
        Ok(restored)
    }

    /// Spill one trunk's sealed cell image to TFS and drop it from the
    /// memstore. `Ok(true)` when it spilled; `Ok(false)` when skipped
    /// (not owned, pinned, absent/already spilled, or busy migrating).
    ///
    /// Seal protocol: after claiming `Spilling`, taking and releasing the
    /// donor map's **write** lock is a barrier — every in-flight
    /// `gated_mutate` either finished its write under the read lock (the
    /// write is in the capture) or will re-check the tier state and wait
    /// out the fault-in. The image goes to the trunk's recovery backup
    /// path via a TFS compare-and-swap, so a crash mid-spill leaves
    /// either the old image or the new one — never a torn file — and
    /// recovery's `reload_trunk` reads whichever committed.
    pub fn spill_trunk(&self, gid: u64) -> Result<bool> {
        if self.table.read().machine_for(gid) != self.machine
            || self.tiering.pinned(gid)
            || self.store.trunk(gid).is_none()
            || !self.tiering.try_begin_spill(gid)
        {
            return Ok(false);
        }
        {
            // Write-barrier + migration check: a trunk that is donating
            // or staging must stay resident (the migration protocols
            // read it directly).
            let donors = self.migration.donors_write();
            if donors.contains_key(&gid) || self.migration.has_incoming(gid) {
                drop(donors);
                self.tiering.abort_spill(gid);
                return Ok(false);
            }
        }
        let Some(trunk) = self.store.trunk(gid) else {
            self.tiering.abort_spill(gid);
            return Ok(false);
        };
        let image = TrunkSnapshot::capture(&trunk).encode();
        let path = trunk_backup_path(gid);
        loop {
            let expected = match self.tfs.read_versioned(&path) {
                Ok((v, _)) => v,
                Err(trinity_tfs::TfsError::NotFound(_)) => 0,
                Err(e) => {
                    self.tiering.abort_spill(gid);
                    return Err(e.into());
                }
            };
            match self.tfs.write_if_version(&path, &image, expected) {
                Ok(version) => {
                    self.store.evict(gid);
                    self.tiering.commit_spill(gid, version);
                    self.tiering.metrics.spills.inc();
                    self.tiering.metrics.spill_bytes.add(image.len() as u64);
                    self.update_resident_gauge();
                    return Ok(true);
                }
                // Lost the CAS to a concurrent backup writer. The trunk
                // is sealed, so our capture is still current: re-read
                // the version and retry.
                Err(trinity_tfs::TfsError::VersionMismatch { .. }) => continue,
                Err(e) => {
                    self.tiering.abort_spill(gid);
                    return Err(e.into());
                }
            }
        }
    }

    /// Spill coldest-first (§11 LoadMap EWMA score, ascending; ties by
    /// trunk id) until resident bytes fit the budget. Pinned trunks and
    /// trunks busy migrating are never selected. Returns how many trunks
    /// were spilled.
    pub fn enforce_budget(&self) -> Result<usize> {
        let budget = self.tiering.budget();
        if budget == 0 {
            return Ok(0);
        }
        let mut resident: Vec<(u64, u64)> = self
            .store
            .trunks()
            .into_iter()
            .map(|t| (t.id(), t.stats().used_bytes as u64))
            .collect();
        let mut total: u64 = resident.iter().map(|&(_, b)| b).sum();
        self.tiering.metrics.resident_bytes.set(total as i64);
        if total <= budget {
            return Ok(0);
        }
        let scores: HashMap<u64, f64> = self
            .obs
            .load()
            .snapshot()
            .into_iter()
            .map(|t| (t.trunk, t.score()))
            .collect();
        // Missing from the load map = never touched this window = 0.0,
        // i.e. coldest; exactly the trunks an out-of-core sweep wants out
        // first.
        resident.sort_by(|a, b| {
            let sa = scores.get(&a.0).copied().unwrap_or(0.0);
            let sb = scores.get(&b.0).copied().unwrap_or(0.0);
            sa.partial_cmp(&sb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        let mut spilled = 0usize;
        for (gid, bytes) in resident {
            if total <= budget {
                break;
            }
            if self.spill_trunk(gid)? {
                total = total.saturating_sub(bytes);
                spilled += 1;
            }
        }
        self.tiering.metrics.resident_bytes.set(total as i64);
        Ok(spilled)
    }

    /// Write-path budget trigger: every [`WRITES_PER_SWEEP`] mutations
    /// run one enforcement sweep. Must be called before any trunk or
    /// migration lock is held — the sweep takes the donor write lock.
    ///
    /// [`WRITES_PER_SWEEP`]: crate::tiering
    fn maybe_enforce_budget(&self) {
        if self.tiering.write_tick() {
            let _ = self.enforce_budget();
        }
    }

    fn update_resident_gauge(&self) {
        let total: u64 = self
            .store
            .trunks()
            .into_iter()
            .map(|t| t.stats().used_bytes as u64)
            .sum();
        self.tiering.metrics.resident_bytes.set(total as i64);
    }

    /// Set the per-machine memory budget in bytes and immediately enforce
    /// it. 0 disables budget-driven eviction (already spilled trunks stay
    /// spilled until accessed). Returns how many trunks were spilled.
    pub fn set_memory_budget(&self, bytes: u64) -> Result<usize> {
        self.tiering.set_budget(bytes);
        if bytes == 0 {
            return Ok(0);
        }
        self.enforce_budget()
    }

    /// The current per-machine memory budget (0 = unlimited).
    pub fn memory_budget(&self) -> u64 {
        self.tiering.budget()
    }

    /// Whether the trunk is resident (no tier entry and present in the
    /// store). The prefetcher uses this to classify hits vs. faults.
    pub fn trunk_resident(&self, gid: u64) -> bool {
        self.tiering.state(gid).is_none() && self.store.trunk(gid).is_some()
    }

    /// Pin a trunk against eviction (counted; pair with
    /// [`unpin_trunk`](Self::unpin_trunk)).
    pub fn pin_trunk(&self, gid: u64) {
        self.tiering.pin(gid);
    }

    /// Release one pin on the trunk.
    pub fn unpin_trunk(&self, gid: u64) {
        self.tiering.unpin(gid);
    }

    /// Trunk ids currently spilled to TFS.
    pub fn spilled_trunks(&self) -> Vec<u64> {
        self.tiering
            .spilled()
            .into_iter()
            .map(|(gid, _)| gid)
            .collect()
    }

    /// Snapshot of this machine's `tier.*` counters.
    pub fn tier_stats(&self) -> TierStats {
        self.tiering.stats()
    }

    /// Attribute one bucket-prefetch residency check (`hit` = the trunk
    /// was already resident when the prefetcher looked).
    pub fn note_prefetch(&self, hit: bool) {
        if hit {
            self.tiering.metrics.prefetch_hits.inc();
        } else {
            self.tiering.metrics.prefetch_misses.inc();
        }
    }

    fn handle_get(&self, src: MachineId, id: CellId, _body: &[u8]) -> Vec<u8> {
        let trunk = match self.local_trunk(id) {
            Ok(t) => t,
            // Fault-in failed (TFS unreachable): the caller's retry
            // budget rides out the transient.
            Err(_) => return wire::reply(wire::STORE_ERR, b""),
        };
        let reply = match trunk.get_versioned(id) {
            Some((version, guard)) => {
                // Register the reader while the cell is pinned: any write
                // serialized after this read will see it as a sharer.
                self.record_sharer(trunk.id(), src);
                self.obs.load().record_read(trunk.id(), guard.len() as u64);
                wire::reply_ok(version, &guard)
            }
            None => {
                self.obs.load().record_read(trunk.id(), 0);
                wire::reply(wire::NOT_FOUND, b"")
            }
        };
        reply
    }

    /// Run a trunk mutation through the migration write gate.
    ///
    /// * No migration in flight: apply while holding the donor map's read
    ///   lock — `MIG_BEGIN` takes the write lock, so it cannot publish an
    ///   entry and snapshot the trunk mid-mutation; the write is in the
    ///   snapshot.
    /// * Migration streaming/catching up: apply under the entry lock and
    ///   record the dirty id, so a delta drain ships the new state. An
    ///   entry whose coordinator has sent no frame for
    ///   [`DONOR_IDLE_TIMEOUT`] is garbage collected instead — the
    ///   coordinator died before sealing, and the trunk must not pay the
    ///   delta-log cost forever.
    /// * Sealed: refuse with `MOVED{epoch}` — the flip is imminent and the
    ///   caller retries against the new owner after a table sync. A seal
    ///   older than [`SEAL_TIMEOUT`] means the coordinator died (or
    ///   stalled): resolve ownership through the TFS primary and either
    ///   resume serving — after *persisting* the unseal decision, see
    ///   [`Self::resolve_stale_seal`] — or complete the flip locally.
    ///
    /// The gate is also the tiering **write seal**: the trunk Arc is
    /// re-resolved from the store and the tier state re-checked while the
    /// donor read lock is held. A spill claims `Spilling` and then takes
    /// the donor *write* lock as a barrier, so observing no tier entry
    /// here guarantees the Arc below stays wired into the store until
    /// `op` lands — the write is in any later capture, never applied to
    /// an already-evicted trunk.
    fn gated_mutate<R>(
        &self,
        gid: u64,
        id: CellId,
        mut op: impl FnMut(&Trunk) -> R,
    ) -> Result<Gate<R>> {
        loop {
            // Fault the trunk in *before* taking migration locks: the
            // fault reads TFS and its budget sweep takes the donor write
            // lock itself.
            self.resident_trunk(gid)?;
            let donors = self.migration.donors_read();
            if self.tiering.blocks(gid) {
                // A spill (or fault) slipped in between our fault-in and
                // the lock: back off and take the fault turn again.
                drop(donors);
                continue;
            }
            let Some(trunk) = self.store.trunk(gid) else {
                drop(donors);
                continue;
            };
            let Some(entry) = donors.get(&gid).map(Arc::clone) else {
                let out = op(&trunk);
                return Ok(Gate::Done(out));
            };
            // Map-then-entry lock order, same as `begin_donor`; holding
            // the map lock keeps `entry` current while we decide.
            let mut g = entry.lock();
            match g.sealed_at {
                None if g.last_frame.elapsed() >= migration::DONOR_IDLE_TIMEOUT => {
                    // The coordinator went silent before ever sealing:
                    // drop the abandoned entry (its next frame, if any,
                    // gets "no migration in flight") and apply the write
                    // ungated on the next loop pass. Locks released
                    // first — `abort_donor` takes the map write lock.
                    let mid = g.mid;
                    drop(g);
                    drop(donors);
                    self.migration.abort_donor(gid, Some(mid));
                }
                None => {
                    let out = op(&trunk);
                    if g.dirty_set.insert(id) {
                        g.dirty.push_back(id);
                    }
                    return Ok(Gate::Done(out));
                }
                Some(at) if at.elapsed() < SEAL_TIMEOUT => {
                    // The flip (if it lands) bumps the epoch past ours.
                    let epoch = self.table.read().epoch + 1;
                    return Ok(Gate::Moved { epoch });
                }
                Some(_) => {
                    // Coordinator presumed dead: ask the TFS primary who
                    // owns the trunk now. Never hold the migration locks
                    // across a table install (lock-order inversion).
                    let mid = g.mid;
                    drop(g);
                    drop(donors);
                    if let Some(epoch) = self.resolve_stale_seal(gid, mid) {
                        return Ok(Gate::Moved { epoch });
                    }
                }
            }
        }
    }

    /// Resolve a seal whose coordinator has been silent past
    /// [`SEAL_TIMEOUT`], honouring the seal's *lease* semantics. Returns
    /// `Some(epoch)` when the trunk must keep refusing writes with
    /// `MOVED{epoch}`, `None` when the caller should re-run the write
    /// gate (the seal was lifted, or the primary changed under us).
    ///
    /// The donor may only resume serving writes after persisting its
    /// unseal decision: it rewrites the primary table *at the file
    /// version it just read* (a TFS compare-and-swap "touch" that bumps
    /// the version without changing the contents). A coordinator that
    /// was merely slow — not dead — performs its flip as a conditional
    /// write too, so exactly one of the two wins: either the flip
    /// committed first (we observe it and answer `MOVED`), or our touch
    /// landed first and the flip aborts, and no write acknowledged after
    /// the unseal can be missing from a committed migration.
    fn resolve_stale_seal(&self, gid: u64, mid: u64) -> Option<u64> {
        match self.tfs.read_versioned(TFS_TABLE_PATH) {
            Ok((ver, bytes)) => {
                let Some(table) = AddressingTable::decode(&bytes) else {
                    // Unreadable primary: keep refusing until it heals.
                    return Some(self.table.read().epoch + 1);
                };
                if table.machine_for(gid) == self.machine {
                    // Still the owner per the primary: fence a slow
                    // coordinator out, then unseal. A lost CAS means the
                    // table changed this instant — loop and re-read.
                    if self
                        .tfs
                        .write_if_version(TFS_TABLE_PATH, &bytes, ver)
                        .is_ok()
                    {
                        self.migration.abort_donor(gid, Some(mid));
                    }
                    None
                } else {
                    // The flip (or a recovery) committed: adopt it. The
                    // install records the flip epoch for MOVED replies.
                    let _ = self.install_table(table);
                    self.migration.moved_epoch(gid)
                }
            }
            Err(trinity_tfs::TfsError::NotFound(_)) => {
                // No primary was ever persisted, so no flip can exist.
                self.migration.abort_donor(gid, Some(mid));
                None
            }
            // TFS unreachable: the lease cannot be released safely, so
            // keep refusing writes; the caller's retry budget rides it
            // out and a later attempt resolves.
            Err(_) => Some(self.table.read().epoch + 1),
        }
    }

    fn handle_put(&self, src: MachineId, id: CellId, body: &[u8]) -> Vec<u8> {
        self.maybe_enforce_budget();
        let gid = self.table.read().trunk_of(id);
        // The writer caches the bytes it wrote, so it is a sharer too;
        // register before the write so later writes invalidate it.
        self.record_sharer(gid, src);
        self.obs.load().record_write(gid, body.len() as u64);
        match self.gated_mutate(gid, id, |trunk| trunk.put(id, body)) {
            Err(_) => wire::reply(wire::STORE_ERR, b""),
            Ok(Gate::Moved { epoch }) => wire::reply_moved(epoch),
            Ok(Gate::Done(Ok(version))) => {
                self.invalidate_sharers(id, version, src);
                wire::reply_ok(version, b"")
            }
            Ok(Gate::Done(Err(_))) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_put_if(&self, src: MachineId, id: CellId, body: &[u8]) -> Vec<u8> {
        let (expected, payload) = match wire::decode_put_if(body) {
            Some(parts) => parts,
            None => return wire::reply(wire::STORE_ERR, b""),
        };
        self.maybe_enforce_budget();
        let gid = self.table.read().trunk_of(id);
        self.record_sharer(gid, src);
        self.obs.load().record_write(gid, payload.len() as u64);
        match self.gated_mutate(gid, id, |trunk| trunk.put_if_version(id, payload, expected)) {
            Err(_) => wire::reply(wire::STORE_ERR, b""),
            Ok(Gate::Moved { epoch }) => wire::reply_moved(epoch),
            Ok(Gate::Done(Ok(version))) => {
                self.invalidate_sharers(id, version, src);
                wire::reply_ok(version, b"")
            }
            Ok(Gate::Done(Err(StoreError::NotFound(_)))) => wire::reply(wire::NOT_FOUND, b""),
            Ok(Gate::Done(Err(StoreError::VersionMismatch {
                id,
                expected,
                found,
            }))) => wire::reply_version_mismatch(id, expected, found),
            Ok(Gate::Done(Err(_))) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_remove(&self, src: MachineId, id: CellId, _body: &[u8]) -> Vec<u8> {
        self.maybe_enforce_budget();
        let gid = self.table.read().trunk_of(id);
        self.obs.load().record_write(gid, 0);
        match self.gated_mutate(gid, id, |trunk| trunk.remove(id)) {
            Err(_) => wire::reply(wire::STORE_ERR, b""),
            Ok(Gate::Moved { epoch }) => wire::reply_moved(epoch),
            Ok(Gate::Done(Ok(version))) => {
                self.invalidate_sharers(id, version, src);
                wire::reply_ok(version, b"")
            }
            Ok(Gate::Done(Err(StoreError::NotFound(_)))) => wire::reply(wire::NOT_FOUND, b""),
            Ok(Gate::Done(Err(_))) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_append(&self, src: MachineId, id: CellId, body: &[u8]) -> Vec<u8> {
        self.maybe_enforce_budget();
        let gid = self.table.read().trunk_of(id);
        self.obs.load().record_write(gid, body.len() as u64);
        match self.gated_mutate(gid, id, |trunk| trunk.append(id, body)) {
            Err(_) => wire::reply(wire::STORE_ERR, b""),
            Ok(Gate::Moved { epoch }) => wire::reply_moved(epoch),
            Ok(Gate::Done(Ok(version))) => {
                self.invalidate_sharers(id, version, src);
                wire::reply_ok(version, b"")
            }
            Ok(Gate::Done(Err(StoreError::NotFound(_)))) => wire::reply(wire::NOT_FOUND, b""),
            Ok(Gate::Done(Err(_))) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_contains(&self, _src: MachineId, id: CellId, _body: &[u8]) -> Vec<u8> {
        let trunk = match self.local_trunk(id) {
            Ok(t) => t,
            Err(_) => return wire::reply(wire::STORE_ERR, b""),
        };
        self.obs.load().record_read(trunk.id(), 0);
        match trunk.version_of(id) {
            Some(version) => wire::reply_ok(version, b""),
            None => wire::reply(wire::NOT_FOUND, b""),
        }
    }

    fn handle_multi_get(&self, src: MachineId, data: &[u8]) -> Vec<u8> {
        let ids = match wire::decode_multi_req(data) {
            Some(ids) => ids,
            // An undecodable request yields an empty reply, which fails
            // the caller's entry-count check and routes it to the
            // single-cell fallback.
            None => return Vec::new(),
        };
        // Encode straight from the pinned trunk guards into the reply
        // buffer — no per-cell Vec, one copy per payload byte on the
        // serve path (the reply Vec itself ships zero-copy).
        let mut out = Vec::new();
        for id in ids {
            if !self.owns(id) {
                wire::multi_push_status(&mut out, wire::NOT_OWNER);
                continue;
            }
            let trunk = match self.local_trunk(id) {
                Ok(t) => t,
                // Fault-in failed: degrade this entry to NOT_OWNER so the
                // caller's single-cell fallback retries (and re-syncs).
                Err(_) => {
                    wire::multi_push_status(&mut out, wire::NOT_OWNER);
                    continue;
                }
            };
            match trunk.get_versioned(id) {
                Some((version, guard)) => {
                    self.record_sharer(trunk.id(), src);
                    self.obs.load().record_read(trunk.id(), guard.len() as u64);
                    wire::multi_push_hit(&mut out, version, &guard);
                }
                None => {
                    self.obs.load().record_read(trunk.id(), 0);
                    wire::multi_push_status(&mut out, wire::NOT_FOUND);
                }
            };
        }
        out
    }

    // ------------------------------------------------------------------
    // Migration protocol handlers (donor and recipient sides)
    // ------------------------------------------------------------------

    /// `MIG_BEGIN` (donor): publish the migration entry, *then* snapshot
    /// the trunk's cell ids. Publication-before-snapshot is what lets the
    /// write gate guarantee every mutation is in the snapshot or the log.
    fn handle_mig_begin(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, _)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        if self.table.read().machine_for(gid) != self.machine {
            return migration::err_reply("not the trunk owner");
        }
        // A spilled trunk faults in before donating — migration streams
        // straight out of the memstore. The pin holds the trunk resident
        // across the gap until `begin_donor` publishes the donor entry
        // (which a spill checks behind its own barrier); after that the
        // trunk cannot spill again mid-migration.
        let tiered = self.tiering.is_active();
        if tiered {
            self.tiering.pin(gid);
            if self.resident_trunk(gid).is_err() {
                self.tiering.unpin(gid);
                return migration::err_reply("trunk not resident");
            }
        }
        let out = match self.store.trunk(gid) {
            None => migration::err_reply("trunk not resident"),
            Some(trunk) => match self.migration.begin_donor(gid, mid) {
                BeginOutcome::Stale => migration::err_reply("superseded migration id"),
                BeginOutcome::Existing(n) => migration::ok_u64s(&[n as u64]),
                BeginOutcome::Created(entry) => {
                    let ids = trunk.cell_ids();
                    let n = ids.len() as u64;
                    entry.lock().snapshot = ids;
                    migration::ok_u64s(&[n])
                }
            },
        };
        if tiered {
            self.tiering.unpin(gid);
        }
        out
    }

    /// `MIG_READ` (donor): one bounded chunk of the snapshot, payloads
    /// read at stream time. Cells removed since the snapshot are skipped —
    /// their remove is in the delta log.
    fn handle_mig_read(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, rest)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        if rest.len() < 16 {
            return migration::err_reply("bad frame");
        }
        let cursor = u64::from_le_bytes(rest[..8].try_into().unwrap()) as usize;
        let max_cells = u32::from_le_bytes(rest[8..12].try_into().unwrap()) as usize;
        let max_bytes = u32::from_le_bytes(rest[12..16].try_into().unwrap()) as usize;
        let Some(entry) = self.migration.donor(gid) else {
            return migration::err_reply("no migration in flight");
        };
        let Some(trunk) = self.store.trunk(gid) else {
            return migration::err_reply("trunk not resident");
        };
        let mut g = entry.lock();
        if g.mid != mid {
            return migration::err_reply("superseded migration id");
        }
        g.last_frame = Instant::now();
        let mut entries = Vec::new();
        let mut bytes = 0usize;
        let mut next = cursor;
        for &id in g.snapshot.iter().skip(cursor).take(max_cells.max(1)) {
            next += 1;
            if let Some((version, guard)) = trunk.get_versioned(id) {
                bytes += guard.len();
                entries.push(MigEntry::Upsert {
                    id,
                    version,
                    bytes: guard.to_vec(),
                });
                if bytes >= max_bytes {
                    break;
                }
            }
        }
        migration::ok_with_entries(&[next as u64], &entries)
    }

    /// `MIG_DELTA` (donor): drain dirty cells, resolved to their current
    /// state. Removed cells ship a freshly minted fence stamp, greater
    /// than any stamp the cell ever carried.
    fn handle_mig_delta(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, rest)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        if rest.len() < 4 {
            return migration::err_reply("bad frame");
        }
        let max = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let Some(entry) = self.migration.donor(gid) else {
            return migration::err_reply("no migration in flight");
        };
        let Some(trunk) = self.store.trunk(gid) else {
            return migration::err_reply("trunk not resident");
        };
        let mut g = entry.lock();
        if g.mid != mid {
            return migration::err_reply("superseded migration id");
        }
        g.last_frame = Instant::now();
        let mut entries = Vec::new();
        for _ in 0..max.max(1) {
            let Some(id) = g.dirty.pop_front() else {
                break;
            };
            g.dirty_set.remove(&id);
            match trunk.get_versioned(id) {
                Some((version, guard)) => entries.push(MigEntry::Upsert {
                    id,
                    version,
                    bytes: guard.to_vec(),
                }),
                None => entries.push(MigEntry::Remove {
                    id,
                    version: trinity_memstore::next_version(),
                }),
            }
        }
        migration::ok_with_entries(&[g.dirty.len() as u64], &entries)
    }

    /// `MIG_SEAL` (donor): refuse writes from here on (reads still serve)
    /// and report how many delta entries are still pending.
    fn handle_mig_seal(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, _)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        let Some(entry) = self.migration.donor(gid) else {
            return migration::err_reply("no migration in flight");
        };
        let mut g = entry.lock();
        if g.mid != mid {
            return migration::err_reply("superseded migration id");
        }
        g.last_frame = Instant::now();
        if g.sealed_at.is_none() {
            g.sealed_at = Some(Instant::now());
        }
        migration::ok_u64s(&[g.dirty.len() as u64])
    }

    /// `MIG_ABORT` (either side): on the donor, lift the seal and stop
    /// delta capture; on the recipient, drop the version fence and the
    /// staged trunk. The coordinator sends it to both on failure.
    fn handle_mig_abort(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, _)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        self.migration.abort_donor(gid, Some(mid));
        if self.table.read().machine_for(gid) != self.machine
            && self.migration.abort_incoming(gid, mid)
        {
            self.store.evict(gid);
        }
        migration::ok_u64s(&[])
    }

    /// `MIG_APPLY` (recipient): stage a batch of migrated entries behind
    /// the per-cell version fence. The staged trunk is invisible to cell
    /// traffic — this node does not own the trunk until the flip.
    fn handle_mig_apply(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, rest)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        let Some((entries, tail)) = migration::decode_entries(rest) else {
            return migration::err_reply("bad frame");
        };
        if !tail.is_empty() {
            return migration::err_reply("bad frame");
        }
        if self.table.read().machine_for(gid) == self.machine {
            return migration::err_reply("already the trunk owner");
        }
        match self.migration.fence_incoming(gid, mid, entries) {
            None => migration::err_reply("superseded migration id"),
            Some((started, fresh)) => {
                if started {
                    // First frame of this attempt: discard whatever an
                    // aborted earlier attempt staged, so its leftover
                    // cells cannot resurrect after the flip.
                    self.store.evict(gid);
                }
                let trunk = self.store.ensure_trunk(gid);
                let mut applied = 0u64;
                for e in fresh {
                    let ok = match e {
                        MigEntry::Upsert { id, bytes, .. } => trunk.put(id, &bytes).is_ok(),
                        MigEntry::Remove { id, .. } => {
                            matches!(trunk.remove(id), Ok(_) | Err(StoreError::NotFound(_)))
                        }
                    };
                    if !ok {
                        return migration::err_reply("staging store error");
                    }
                    applied += 1;
                }
                migration::ok_u64s(&[applied])
            }
        }
    }

    /// `MIG_COMMIT` (recipient): persist the staged trunk to TFS so a
    /// crash after the flip recovers the migrated state, not a stale
    /// backup, and mark the staging *committed* — only from here on may
    /// a table install adopt the staged image as the trunk's contents.
    /// An empty staging still writes a (empty) backup image — otherwise
    /// the flip would reload the donor's outdated one.
    fn handle_mig_commit(&self, data: &[u8]) -> Vec<u8> {
        let Some((mid, gid, _)) = migration::decode_header(data) else {
            return migration::err_reply("bad frame");
        };
        if self.table.read().machine_for(gid) != self.machine {
            // Zero-cell migrations never sent an APPLY; seed the fence so
            // a straggling frame from an older attempt is still rejected.
            match self.migration.fence_incoming(gid, mid, Vec::new()) {
                None => return migration::err_reply("superseded migration id"),
                Some((started, _)) => {
                    if started {
                        self.store.evict(gid);
                    }
                }
            }
            self.store.ensure_trunk(gid);
        }
        match self.backup_trunk(gid) {
            Ok(()) => {
                // Committed only after the TFS image landed: a staging
                // whose backup failed is still untrusted at flip time.
                self.migration.commit_incoming(gid, mid);
                migration::ok_u64s(&[])
            }
            Err(e) => migration::err_reply(&format!("backup failed: {e}")),
        }
    }

    // ------------------------------------------------------------------
    // Location-transparent cell operations
    // ------------------------------------------------------------------

    fn remote_op(
        &self,
        pid: u16,
        id: CellId,
        body: &[u8],
    ) -> Result<Option<(CellVersion, FrameBuf)>> {
        let started = Instant::now();
        let mut resynced = false;
        loop {
            let (trunk, owner) = self.route(id);
            let outcome = if owner == self.machine {
                // (Became) local — run the handler body directly. A local
                // write can still answer `MOVED` when the trunk is sealed
                // by an in-flight migration.
                let raw = match pid {
                    proto::GET => self.handle_get(self.machine, id, body),
                    proto::PUT => self.handle_put(self.machine, id, body),
                    proto::REMOVE => self.handle_remove(self.machine, id, body),
                    proto::APPEND => self.handle_append(self.machine, id, body),
                    proto::CONTAINS => self.handle_contains(self.machine, id, body),
                    proto::PUT_IF => self.handle_put_if(self.machine, id, body),
                    _ => unreachable!("unknown memcloud protocol {pid}"),
                };
                // Adopt the handler's reply Vec without copying — the
                // same zero-copy step `dispatch` performs on the wire.
                wire::parse_reply(&FrameBuf::from_vec(raw), trunk, owner)
            } else {
                self.endpoint
                    .call(owner, pid, &wire::encode_req(id, body))
                    .map_err(|e| match e {
                        // Typed so callers see "budget spent", not
                        // "network broke" — and so the retry arms below
                        // never treat an expired query as a stale table
                        // or a dead owner.
                        NetError::DeadlineExceeded(m, _) => {
                            CloudError::DeadlineExceeded { machine: m }
                        }
                        e => CloudError::Net(e),
                    })
                    .and_then(|raw| wire::parse_reply(&raw, trunk, owner))
            };
            match outcome {
                Ok(v) => return Ok(v),
                Err(e @ CloudError::Moved { .. }) => {
                    // The trunk is mid-migration (sealed flip window) or
                    // already flipped: keep syncing and retrying within
                    // the budget — the flip lands in milliseconds, so a
                    // healthy migration is invisible to the caller.
                    if started.elapsed() >= MOVED_RETRY_BUDGET {
                        return Err(e);
                    }
                    let _ = self.sync_table();
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(CloudError::WrongOwner { .. })
                | Err(CloudError::Net(NetError::Unreachable(_)))
                | Err(CloudError::Net(NetError::Timeout(..)))
                    if !resynced =>
                {
                    // Stale table or dead owner: re-sync from the TFS
                    // primary and retry once.
                    resynced = true;
                    let _ = self.sync_table();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Read a cell from wherever it lives. Remote reads are served from
    /// the node's cache when a coherent copy is resident.
    ///
    /// The returned [`FrameBuf`] is a shared view of the reply frame (or
    /// of the cached copy, itself a view of the frame that filled it):
    /// reading a remote cell copies its payload exactly once — at the
    /// owner, from trunk storage into the reply.
    pub fn get(&self, id: CellId) -> Result<Option<FrameBuf>> {
        if !self.owns(id) {
            let trunk = self.table.read().trunk_of(id);
            if let Some(bytes) = self.cache.get(trunk, id) {
                return Ok(Some(bytes));
            }
        }
        match self.remote_op(proto::GET, id, b"")? {
            Some((version, bytes)) => {
                if !self.owns(id) {
                    self.cache.insert(id, version, bytes.clone());
                }
                Ok(Some(bytes))
            }
            None => Ok(None),
        }
    }

    /// Insert or replace a cell. The ack carries the new version stamp,
    /// which the node applies to its own cache before returning — a
    /// machine always reads its own writes.
    pub fn put(&self, id: CellId, bytes: &[u8]) -> Result<()> {
        if let Some((version, _)) = self.remote_op(proto::PUT, id, bytes)? {
            if !self.owns(id) {
                self.cache
                    .insert(id, version, FrameBuf::copy_from_slice(bytes));
            }
        }
        Ok(())
    }

    /// Replace a cell's payload only if its version still equals
    /// `expected` — the remote single-cell compare-and-swap. Returns the
    /// new version on success; a concurrent write since the caller's
    /// versioned read surfaces as [`StoreError::VersionMismatch`], and a
    /// vanished cell as [`StoreError::NotFound`], both under
    /// [`CloudError::Store`]. Lost-ack retries are safe: a replayed CAS
    /// whose first attempt landed reads back as a mismatch, never as a
    /// double apply.
    pub fn put_if_version(
        &self,
        id: CellId,
        bytes: &[u8],
        expected: CellVersion,
    ) -> Result<CellVersion> {
        let body = wire::encode_put_if(expected, bytes);
        match self.remote_op(proto::PUT_IF, id, &body)? {
            Some((version, _)) => {
                if !self.owns(id) {
                    self.cache
                        .insert(id, version, FrameBuf::copy_from_slice(bytes));
                }
                Ok(version)
            }
            None => Err(CloudError::Store(StoreError::NotFound(id))),
        }
    }

    /// Remove a cell. `Ok(true)` if it existed.
    pub fn remove(&self, id: CellId) -> Result<bool> {
        match self.remote_op(proto::REMOVE, id, b"")? {
            Some((version, _)) => {
                if !self.owns(id) {
                    self.cache.invalidate(id, version);
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Append bytes to a cell's payload. `Ok(false)` if the cell is absent.
    pub fn append(&self, id: CellId, bytes: &[u8]) -> Result<bool> {
        match self.remote_op(proto::APPEND, id, bytes)? {
            Some((version, _)) => {
                // Only the delta is known here, so floor the cached copy;
                // the next read refetches the full payload.
                if !self.owns(id) {
                    self.cache.invalidate(id, version);
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// The cell's current version stamp, read from its owner — the
    /// snapshot half of the [`put_if_version`](Self::put_if_version)
    /// compare-and-swap. Always consults the owner (never the local
    /// cache) so the stamp is as fresh as one network round-trip allows.
    pub fn version_of(&self, id: CellId) -> Result<Option<CellVersion>> {
        self.remote_op(proto::CONTAINS, id, b"")
            .map(|r| r.map(|(version, _)| version))
    }

    /// Whether the cell exists anywhere in the cloud. A cached copy
    /// answers without touching the fabric.
    pub fn contains(&self, id: CellId) -> Result<bool> {
        if !self.owns(id) {
            let trunk = self.table.read().trunk_of(id);
            if self.cache.get(trunk, id).is_some() {
                return Ok(true);
            }
        }
        self.remote_op(proto::CONTAINS, id, b"")
            .map(|r| r.is_some())
    }

    /// Batched read: fetch many cells with **one envelope per destination
    /// machine** instead of one call per cell. Results align with `ids`
    /// (`None` = absent). Local cells are read in place; cached remote
    /// cells are served from the cache; everything fetched on the way is
    /// cached for subsequent single-cell reads — this is the traversal
    /// frontier-prefetch primitive.
    pub fn multi_get(&self, ids: &[CellId]) -> Result<Vec<Option<FrameBuf>>> {
        let mut out: Vec<Option<FrameBuf>> = vec![None; ids.len()];
        let mut by_owner: HashMap<MachineId, Vec<(usize, CellId)>> = HashMap::new();
        let mut local: Vec<(usize, u64, CellId)> = Vec::new();
        {
            let table = self.table.read();
            for (i, &id) in ids.iter().enumerate() {
                let owner = table.machine_of(id);
                let trunk = table.trunk_of(id);
                if owner == self.machine {
                    // Deferred below the lock scope: resolving a local
                    // trunk may fault it in from TFS, which must not run
                    // under the table read lock (the fault's budget sweep
                    // re-reads the table).
                    local.push((i, trunk, id));
                } else if let Some(bytes) = self.cache.get(trunk, id) {
                    out[i] = Some(bytes);
                } else {
                    by_owner.entry(owner).or_default().push((i, id));
                }
            }
        }
        for (i, trunk, id) in local {
            let got = self.resident_trunk(trunk)?.get_owned(id);
            self.obs
                .load()
                .record_read(trunk, got.as_ref().map_or(0, |b| b.len() as u64));
            out[i] = got.map(FrameBuf::from_vec);
        }
        for (owner, group) in by_owner {
            let req_ids: Vec<CellId> = group.iter().map(|&(_, id)| id).collect();
            let entries = self
                .endpoint
                .call(owner, proto::MULTI_GET, &wire::encode_multi_req(&req_ids))
                .ok()
                .and_then(|raw| wire::decode_multi_reply(&raw, req_ids.len()));
            match entries {
                Some(entries) => {
                    for ((i, id), entry) in group.into_iter().zip(entries) {
                        match entry {
                            wire::MultiEntry::Hit(version, bytes) => {
                                // Cache and result share the reply frame:
                                // a refcount bump, not a copy.
                                self.cache.insert(id, version, bytes.clone());
                                out[i] = Some(bytes);
                            }
                            wire::MultiEntry::Missing => {}
                            // Stale table: the single-cell path re-syncs.
                            wire::MultiEntry::NotOwner => out[i] = self.get(id)?,
                        }
                    }
                }
                // Dead owner, timeout, or a malformed reply: fall back to
                // the single-cell path, which re-syncs and retries.
                None => {
                    for (i, id) in group {
                        out[i] = self.get(id)?;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Warm the cache for an upcoming batch of reads (e.g. the next
    /// traversal frontier). Best-effort: a failed warm never fails the
    /// caller — the reads themselves will surface the error — but it is
    /// counted (`cloud.cache.prefetch_errors`) so a silently cold cache
    /// shows up in the metrics instead of as a latency mystery.
    pub fn prefetch(&self, ids: &[CellId]) {
        if self.multi_get(ids).is_err() {
            self.cache.record_prefetch_error();
        }
    }

    /// Counters and occupancy of this node's remote-read cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop every cached remote cell (counters survive).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    // ------------------------------------------------------------------
    // Persistence & reconfiguration
    // ------------------------------------------------------------------

    /// Back one trunk up to TFS.
    pub fn backup_trunk(&self, gid: u64) -> Result<()> {
        if let Some(trunk) = self.store.trunk(gid) {
            let snap = TrunkSnapshot::capture(&trunk);
            self.tfs.write(&trunk_backup_path(gid), &snap.encode())?;
        }
        Ok(())
    }

    /// Back all locally *owned* trunks up to TFS (fault-tolerant data
    /// persistence, paper §3). Resident but unowned trunks — a migration
    /// staging in, or leftovers of an aborted one — are skipped so a
    /// partial staging never clobbers the owner's good backup.
    pub fn backup_all(&self) -> Result<()> {
        let table = self.table();
        for gid in self.store.trunk_ids() {
            if table.machine_for(gid) == self.machine {
                self.backup_trunk(gid)?;
            }
        }
        Ok(())
    }

    /// Reload a trunk from its TFS backup into the local store (used when
    /// this machine absorbs a failed machine's trunk). Missing backups
    /// yield an empty trunk — the data was never persisted, matching the
    /// paper's durability contract.
    pub fn reload_trunk(&self, gid: u64) -> Result<()> {
        let trunk = self.store.ensure_trunk(gid);
        match self.tfs.read(&trunk_backup_path(gid)) {
            Ok(bytes) => {
                let snap = TrunkSnapshot::decode(&bytes).map_err(|_| {
                    CloudError::Tfs(trinity_tfs::TfsError::NotFound(trunk_backup_path(gid)))
                })?;
                snap.restore_into(&trunk).map_err(|_| {
                    CloudError::Store(StoreError::OutOfMemory {
                        requested: 0,
                        reserved: 0,
                    })
                })?;
                Ok(())
            }
            Err(trinity_tfs::TfsError::NotFound(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Adopt a new addressing table: reload newly owned trunks from TFS,
    /// evict trunks that moved away. No-op for stale epochs.
    ///
    /// A trunk staged by an inbound migration is already resident; when
    /// the install is the migration's own flip — the staging was marked
    /// *committed* by `MIG_COMMIT`, so its image is complete and TFS has
    /// it — it is adopted verbatim, the streamed cells surviving. An
    /// **uncommitted** staging is a partial stream (its coordinator died
    /// mid-migration): an install that grants this node the trunk evicts
    /// it and reloads the TFS backup instead, so acked cells absent from
    /// the partial image cannot silently disappear; and an install that
    /// does not grant ownership keeps it only while it is actively fed
    /// (staging idle past the timeout is orphaned and evicted).
    /// Coherence state is invalidated *selectively*: only the
    /// trunks whose owner actually changed drop their cached cells and
    /// sharer records; unmoved trunks kept serving (and invalidating)
    /// throughout, so their coherence state is still sound. (The revive
    /// path clears everything instead — see [`Self::refresh_after_revive`]
    /// — because a dead machine missed invalidations for unmoved trunks
    /// too.)
    pub fn install_table(&self, new: AddressingTable) -> Result<()> {
        let old = {
            let cur = self.table.read();
            if new.epoch <= cur.epoch {
                return Ok(());
            }
            cur.clone()
        };
        let old_mine: std::collections::BTreeSet<u64> =
            self.store.trunk_ids().into_iter().collect();
        let new_mine: std::collections::BTreeSet<u64> =
            new.trunks_of(self.machine).into_iter().collect();
        for &gid in &new_mine {
            if !old_mine.contains(&gid) {
                // Newly gained trunks reload from the TFS backup. A
                // trunk this node owns but has tiered out keeps its
                // entry untouched instead — the spilled image is the
                // current data and faults in lazily. Forgetting the
                // entry here would open a window where a concurrent
                // budget sweep spills an empty recreation of the trunk
                // over the good image.
                if self.tiering.state(gid).is_none() {
                    self.reload_trunk(gid)?;
                }
            } else if self.migration.has_incoming(gid) && !self.migration.incoming_committed(gid) {
                // Resident only as an uncommitted inbound staging — a
                // partial stream whose coordinator never sent COMMIT.
                // Becoming the owner through any other path (failure
                // recovery, a competing migration) must not adopt it:
                // evict and reload the last good TFS backup.
                self.migration.drop_incoming(gid);
                self.store.evict(gid);
                self.reload_trunk(gid)?;
            }
        }
        for &gid in old_mine.difference(&new_mine) {
            // Keep an actively staging trunk: a reconfiguration unrelated
            // to the migration must not destroy its streamed cells. A
            // staging nobody has fed for STAGING_TIMEOUT is orphaned
            // (its coordinator died and the abort never arrived) — expire
            // it rather than carry the partial image indefinitely.
            if !self.migration.incoming_active(gid) {
                self.migration.drop_incoming(gid);
                self.store.evict(gid);
            }
        }
        let moved: BTreeSet<u64> = old.changed_trunks(&new).into_iter().collect();
        self.migration.on_table_installed(self.machine, &old, &new);
        *self.table.write() = new;
        // Tier entries for trunks this node no longer owns are dead
        // weight (the new owner reloads from the same TFS image): drop
        // them so the write gate stops blocking on them. This runs
        // *after* the table swap — with the old table still routing
        // here, a local access racing the forget would recreate the
        // trunk empty and a sweep could spill that lie to TFS.
        for (gid, _) in self.tiering.spilled() {
            if self.table.read().machine_for(gid) != self.machine {
                self.tiering.forget(gid);
            }
        }
        self.cache.clear_trunks(&moved, old.p_bits());
        self.sharers
            .lock()
            .retain(|gid, _| new_mine.contains(gid) && !moved.contains(gid));
        Ok(())
    }

    /// Bring a machine that was dead back into service: drop every piece
    /// of possibly stale soft state (remote-read cache, sharer directory,
    /// migration books), then adopt the current TFS primary table *before*
    /// serving — a revived machine must not answer for trunks that were
    /// reassigned, or serve cached cells, while it was down.
    pub fn refresh_after_revive(&self) -> Result<()> {
        self.cache.clear();
        self.sharers.lock().clear();
        self.migration.reset();
        // Tier state died with the machine's memory: trunks the install
        // below grants come back through `reload_trunk`, which reads the
        // same TFS images spills wrote. The budget itself survives.
        self.tiering.reset();
        self.sync_table()?;
        Ok(())
    }

    /// Re-sync the table replica from the TFS primary ("a machine will
    /// always sync up with the primary addressing table replica when it
    /// fails to load a data item").
    pub fn sync_table(&self) -> Result<bool> {
        match self.tfs.read(TFS_TABLE_PATH) {
            Ok(bytes) => {
                if let Some(table) = AddressingTable::decode(&bytes) {
                    let newer = table.epoch > self.table.read().epoch;
                    if newer {
                        self.install_table(table)?;
                    }
                    Ok(newer)
                } else {
                    Err(CloudError::BadReply)
                }
            }
            Err(trinity_tfs::TfsError::NotFound(_)) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Machine-level storage statistics.
    pub fn stats(&self) -> TrunkStats {
        self.store.stats()
    }
}
