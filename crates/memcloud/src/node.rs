//! One machine's view of the memory cloud.
//!
//! A [`CloudNode`] owns the machine-local trunks, a replica of the
//! addressing table, and the protocol handlers that serve remote cell
//! accesses. All cell operations are *location transparent*: the node
//! routes by the two-step hash and either touches its own trunks or issues
//! a one-sided call to the owner.
//!
//! Staleness protocol (paper §6.2): when an access fails — the owner is
//! unreachable, or it answers "not owner" — the node re-syncs its table
//! replica from the TFS primary and retries once. If the table hasn't
//! changed (no recovery happened yet), the error propagates to the caller,
//! who is expected to inform the leader (see `trinity-core`'s recovery).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use trinity_memstore::{LocalStore, LocalStoreConfig, StoreError, TrunkSnapshot, TrunkStats};
use trinity_net::{Endpoint, MachineId, NetError};
use trinity_tfs::Tfs;

use crate::proto;
use crate::table::{AddressingTable, TFS_TABLE_PATH};
use crate::wire;
use crate::{CellId, CloudError, Result};

/// TFS path of a trunk's backup image.
pub fn trunk_backup_path(gid: u64) -> String {
    format!("trunks/{gid:08}")
}

/// One machine of the memory cloud.
pub struct CloudNode {
    machine: MachineId,
    endpoint: Arc<Endpoint>,
    store: Arc<LocalStore>,
    table: RwLock<AddressingTable>,
    tfs: Tfs,
    id_counter: AtomicU64,
}

impl std::fmt::Debug for CloudNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudNode")
            .field("machine", &self.machine)
            .finish()
    }
}

impl CloudNode {
    /// Bring up a node: create its trunks per the initial table and
    /// register the cell-access protocol handlers.
    pub fn start(
        endpoint: Arc<Endpoint>,
        store_cfg: LocalStoreConfig,
        tfs: Tfs,
        initial_table: AddressingTable,
    ) -> Arc<Self> {
        let machine = endpoint.machine();
        // Trunk `store.*` metrics land in the same per-machine scope as the
        // endpoint's `net.*` counters, so one registry snapshot shows a
        // machine's traffic next to its memory utilization.
        let store = Arc::new(LocalStore::with_obs(store_cfg, endpoint.obs().clone()));
        for gid in initial_table.trunks_of(machine) {
            store.ensure_trunk(gid);
        }
        let node = Arc::new(CloudNode {
            machine,
            endpoint,
            store,
            table: RwLock::new(initial_table),
            tfs,
            id_counter: AtomicU64::new(1),
        });
        node.register_handlers();
        node
    }

    fn register_handlers(self: &Arc<Self>) {
        type CellOp = fn(&CloudNode, CellId, &[u8]) -> Vec<u8>;
        let ops: [(u16, CellOp); 5] = [
            (proto::GET, CloudNode::handle_get),
            (proto::PUT, CloudNode::handle_put),
            (proto::REMOVE, CloudNode::handle_remove),
            (proto::APPEND, CloudNode::handle_append),
            (proto::CONTAINS, CloudNode::handle_contains),
        ];
        for (pid, op) in ops {
            let node = Arc::clone(self);
            self.endpoint.register(pid, move |_src, data| {
                let (id, body) = match wire::decode_req(data) {
                    Some(x) => x,
                    None => return Some(wire::reply(wire::STORE_ERR, b"")),
                };
                if !node.owns(id) {
                    return Some(wire::reply(wire::NOT_OWNER, b""));
                }
                Some(op(&node, id, body))
            });
        }
    }

    /// This node's machine id.
    pub fn machine(&self) -> MachineId {
        self.machine
    }

    /// The node's network endpoint.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// The machine-local trunk store.
    pub fn store(&self) -> &Arc<LocalStore> {
        &self.store
    }

    /// A copy of the current addressing-table replica.
    pub fn table(&self) -> AddressingTable {
        self.table.read().clone()
    }

    /// Allocate a globally unique cell id: the machine id in the top 16
    /// bits, a local counter below. Never collides across machines and
    /// never produces the reserved `u64::MAX`.
    pub fn alloc_id(&self) -> CellId {
        ((self.machine.0 as u64) << 48) | self.id_counter.fetch_add(1, Ordering::Relaxed)
    }

    fn owns(&self, id: CellId) -> bool {
        let t = self.table.read();
        t.machine_of(id) == self.machine
    }

    fn route(&self, id: CellId) -> (u64, MachineId) {
        let t = self.table.read();
        let trunk = t.trunk_of(id);
        (trunk, t.machine_for(trunk))
    }

    // ------------------------------------------------------------------
    // Local handler bodies
    // ------------------------------------------------------------------

    fn local_trunk(&self, id: CellId) -> Arc<trinity_memstore::Trunk> {
        let gid = self.table.read().trunk_of(id);
        self.store.ensure_trunk(gid)
    }

    fn handle_get(&self, id: CellId, _body: &[u8]) -> Vec<u8> {
        match self.local_trunk(id).get_owned(id) {
            Some(bytes) => wire::reply(wire::OK, &bytes),
            None => wire::reply(wire::NOT_FOUND, b""),
        }
    }

    fn handle_put(&self, id: CellId, body: &[u8]) -> Vec<u8> {
        match self.local_trunk(id).put(id, body) {
            Ok(()) => wire::reply(wire::OK, b""),
            Err(_) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_remove(&self, id: CellId, _body: &[u8]) -> Vec<u8> {
        match self.local_trunk(id).remove(id) {
            Ok(()) => wire::reply(wire::OK, b""),
            Err(StoreError::NotFound(_)) => wire::reply(wire::NOT_FOUND, b""),
            Err(_) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_append(&self, id: CellId, body: &[u8]) -> Vec<u8> {
        match self.local_trunk(id).append(id, body) {
            Ok(()) => wire::reply(wire::OK, b""),
            Err(StoreError::NotFound(_)) => wire::reply(wire::NOT_FOUND, b""),
            Err(_) => wire::reply(wire::STORE_ERR, b""),
        }
    }

    fn handle_contains(&self, id: CellId, _body: &[u8]) -> Vec<u8> {
        if self.local_trunk(id).contains(id) {
            wire::reply(wire::OK, b"")
        } else {
            wire::reply(wire::NOT_FOUND, b"")
        }
    }

    // ------------------------------------------------------------------
    // Location-transparent cell operations
    // ------------------------------------------------------------------

    fn remote_op(&self, pid: u16, id: CellId, body: &[u8]) -> Result<Option<Vec<u8>>> {
        for attempt in 0..2 {
            let (trunk, owner) = self.route(id);
            if owner == self.machine {
                // (Became) local — run the handler body directly.
                let raw = match pid {
                    proto::GET => self.handle_get(id, body),
                    proto::PUT => self.handle_put(id, body),
                    proto::REMOVE => self.handle_remove(id, body),
                    proto::APPEND => self.handle_append(id, body),
                    proto::CONTAINS => self.handle_contains(id, body),
                    _ => unreachable!("unknown memcloud protocol {pid}"),
                };
                return wire::parse_reply(&raw, trunk, owner);
            }
            let outcome = self
                .endpoint
                .call(owner, pid, &wire::encode_req(id, body))
                .map_err(|e| match e {
                    // Typed so callers see "budget spent", not "network
                    // broke" — and so the retry arm below never treats an
                    // expired query as a stale table or a dead owner.
                    NetError::DeadlineExceeded(m, _) => CloudError::DeadlineExceeded { machine: m },
                    e => CloudError::Net(e),
                })
                .and_then(|raw| wire::parse_reply(&raw, trunk, owner));
            match outcome {
                Ok(v) => return Ok(v),
                Err(CloudError::WrongOwner { .. })
                | Err(CloudError::Net(NetError::Unreachable(_)))
                | Err(CloudError::Net(NetError::Timeout(..)))
                    if attempt == 0 =>
                {
                    // Stale table or dead owner: re-sync from the TFS
                    // primary and retry once.
                    let _ = self.sync_table();
                }
                Err(e) => return Err(e),
            }
        }
        let (trunk, owner) = self.route(id);
        Err(CloudError::WrongOwner {
            trunk,
            asked: owner,
        })
    }

    /// Read a cell from wherever it lives.
    pub fn get(&self, id: CellId) -> Result<Option<Vec<u8>>> {
        self.remote_op(proto::GET, id, b"")
    }

    /// Insert or replace a cell.
    pub fn put(&self, id: CellId, bytes: &[u8]) -> Result<()> {
        self.remote_op(proto::PUT, id, bytes).map(|_| ())
    }

    /// Remove a cell. `Ok(true)` if it existed.
    pub fn remove(&self, id: CellId) -> Result<bool> {
        self.remote_op(proto::REMOVE, id, b"").map(|r| r.is_some())
    }

    /// Append bytes to a cell's payload. `Ok(false)` if the cell is absent.
    pub fn append(&self, id: CellId, bytes: &[u8]) -> Result<bool> {
        self.remote_op(proto::APPEND, id, bytes)
            .map(|r| r.is_some())
    }

    /// Whether the cell exists anywhere in the cloud.
    pub fn contains(&self, id: CellId) -> Result<bool> {
        self.remote_op(proto::CONTAINS, id, b"")
            .map(|r| r.is_some())
    }

    // ------------------------------------------------------------------
    // Persistence & reconfiguration
    // ------------------------------------------------------------------

    /// Back one trunk up to TFS.
    pub fn backup_trunk(&self, gid: u64) -> Result<()> {
        if let Some(trunk) = self.store.trunk(gid) {
            let snap = TrunkSnapshot::capture(&trunk);
            self.tfs.write(&trunk_backup_path(gid), &snap.encode())?;
        }
        Ok(())
    }

    /// Back all locally hosted trunks up to TFS (fault-tolerant data
    /// persistence, paper §3).
    pub fn backup_all(&self) -> Result<()> {
        for gid in self.store.trunk_ids() {
            self.backup_trunk(gid)?;
        }
        Ok(())
    }

    /// Reload a trunk from its TFS backup into the local store (used when
    /// this machine absorbs a failed machine's trunk). Missing backups
    /// yield an empty trunk — the data was never persisted, matching the
    /// paper's durability contract.
    pub fn reload_trunk(&self, gid: u64) -> Result<()> {
        let trunk = self.store.ensure_trunk(gid);
        match self.tfs.read(&trunk_backup_path(gid)) {
            Ok(bytes) => {
                let snap = TrunkSnapshot::decode(&bytes).map_err(|_| {
                    CloudError::Tfs(trinity_tfs::TfsError::NotFound(trunk_backup_path(gid)))
                })?;
                snap.restore_into(&trunk).map_err(|_| {
                    CloudError::Store(StoreError::OutOfMemory {
                        requested: 0,
                        reserved: 0,
                    })
                })?;
                Ok(())
            }
            Err(trinity_tfs::TfsError::NotFound(_)) => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    /// Adopt a new addressing table: reload newly owned trunks from TFS,
    /// evict trunks that moved away. No-op for stale epochs.
    pub fn install_table(&self, new: AddressingTable) -> Result<()> {
        {
            let cur = self.table.read();
            if new.epoch <= cur.epoch {
                return Ok(());
            }
        }
        let old_mine: std::collections::BTreeSet<u64> =
            self.store.trunk_ids().into_iter().collect();
        let new_mine: std::collections::BTreeSet<u64> =
            new.trunks_of(self.machine).into_iter().collect();
        for &gid in new_mine.difference(&old_mine) {
            self.reload_trunk(gid)?;
        }
        for &gid in old_mine.difference(&new_mine) {
            self.store.evict(gid);
        }
        *self.table.write() = new;
        Ok(())
    }

    /// Re-sync the table replica from the TFS primary ("a machine will
    /// always sync up with the primary addressing table replica when it
    /// fails to load a data item").
    pub fn sync_table(&self) -> Result<bool> {
        match self.tfs.read(TFS_TABLE_PATH) {
            Ok(bytes) => {
                if let Some(table) = AddressingTable::decode(&bytes) {
                    let newer = table.epoch > self.table.read().epoch;
                    if newer {
                        self.install_table(table)?;
                    }
                    Ok(newer)
                } else {
                    Err(CloudError::BadReply)
                }
            }
            Err(trinity_tfs::TfsError::NotFound(_)) => Ok(false),
            Err(e) => Err(e.into()),
        }
    }

    /// Machine-level storage statistics.
    pub fn stats(&self) -> TrunkStats {
        self.store.stats()
    }
}
