//! The shared addressing table.
//!
//! `2^p` slots, each naming the machine that hosts the corresponding
//! memory trunk (paper Figure 3). The table is the unit of cluster
//! reconfiguration: machine join, leave, and failure are all expressed as
//! slot reassignments followed by trunk reloads from TFS. Tables carry an
//! epoch so replicas can tell stale from fresh; the primary replica is
//! persisted in TFS before an update commits (§6.2).

use trinity_net::MachineId;

/// Name of the primary addressing-table replica in TFS.
pub const TFS_TABLE_PATH: &str = "addressing/table";

/// The trunk → machine map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressingTable {
    /// Monotonic version; bumped on every reassignment.
    pub epoch: u64,
    slots: Vec<u16>,
}

impl AddressingTable {
    /// Build the initial table: `2^p` trunks dealt round-robin over
    /// `machines` machines.
    pub fn round_robin(p: u32, machines: usize) -> Self {
        assert!(machines > 0 && machines <= u16::MAX as usize);
        let n = 1usize << p;
        assert!(
            n >= machines,
            "need 2^p >= machine count so every machine hosts a trunk"
        );
        AddressingTable {
            epoch: 1,
            slots: (0..n).map(|i| (i % machines) as u16).collect(),
        }
    }

    /// Number of trunks (`2^p`).
    pub fn trunk_count(&self) -> usize {
        self.slots.len()
    }

    /// `p`, the number of hash bits.
    pub fn p_bits(&self) -> u32 {
        self.slots.len().trailing_zeros()
    }

    /// The machine hosting trunk `trunk`.
    pub fn machine_for(&self, trunk: u64) -> MachineId {
        MachineId(self.slots[trunk as usize])
    }

    /// The trunk a cell id routes to.
    pub fn trunk_of(&self, id: u64) -> u64 {
        trinity_memstore::hash::trunk_of(id, self.p_bits())
    }

    /// The machine a cell id routes to (both hashing steps).
    pub fn machine_of(&self, id: u64) -> MachineId {
        self.machine_for(self.trunk_of(id))
    }

    /// All trunks hosted by `machine`.
    pub fn trunks_of(&self, machine: MachineId) -> Vec<u64> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, &m)| m == machine.0)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Machines that currently host at least one trunk.
    pub fn machines(&self) -> Vec<MachineId> {
        let mut ms: Vec<u16> = self.slots.to_vec();
        ms.sort_unstable();
        ms.dedup();
        ms.into_iter().map(MachineId).collect()
    }

    /// Reassign every trunk of a failed machine onto the `survivors`,
    /// least-loaded first, bumping the epoch. Returns the reassignments
    /// as `(trunk, new_machine)` pairs.
    pub fn reassign_failed(
        &mut self,
        failed: MachineId,
        survivors: &[MachineId],
    ) -> Vec<(u64, MachineId)> {
        assert!(
            !survivors.is_empty(),
            "cannot reassign trunks with no survivors"
        );
        assert!(!survivors.contains(&failed));
        let mut load: Vec<(usize, MachineId)> = survivors
            .iter()
            .map(|&m| (self.trunks_of(m).len(), m))
            .collect();
        let mut moved = Vec::new();
        for slot in 0..self.slots.len() {
            if self.slots[slot] == failed.0 {
                load.sort_unstable_by_key(|(n, m)| (*n, m.0));
                let (n, target) = load[0];
                load[0] = (n + 1, target);
                self.slots[slot] = target.0;
                moved.push((slot as u64, target));
            }
        }
        self.epoch += 1;
        moved
    }

    /// Rebalance onto a newly joined machine: steal trunks from the most
    /// loaded machines until the newcomer holds its fair share. Returns
    /// the moved `(trunk, from)` pairs.
    pub fn rebalance_join(&mut self, joiner: MachineId) -> Vec<(u64, MachineId)> {
        let mut machines = self.machines();
        if !machines.contains(&joiner) {
            machines.push(joiner);
        }
        let fair = self.slots.len() / machines.len();
        let mut moved = Vec::new();
        while self.trunks_of(joiner).len() < fair {
            // Take one trunk from the currently most loaded machine.
            let donor = *machines
                .iter()
                .filter(|&&m| m != joiner)
                .max_by_key(|&&m| self.trunks_of(m).len())
                .expect("at least one donor");
            if self.trunks_of(donor).len() <= fair {
                break; // already balanced
            }
            let trunk = self.trunks_of(donor)[0];
            self.slots[trunk as usize] = joiner.0;
            moved.push((trunk, donor));
        }
        self.epoch += 1;
        moved
    }

    /// Move a single trunk to a new owner, bumping the epoch — the unit
    /// step of an online migration flip. No-op (and no epoch bump) if the
    /// trunk already lives there.
    pub fn reassign_one(&mut self, trunk: u64, to: MachineId) {
        if self.slots[trunk as usize] == to.0 {
            return;
        }
        self.slots[trunk as usize] = to.0;
        self.epoch += 1;
    }

    /// Trunks whose owner differs between this table and `other` — the
    /// set a replica holder must treat as reconfigured (cached cells
    /// dropped, sharer directories reset) when stepping between them.
    pub fn changed_trunks(&self, other: &AddressingTable) -> Vec<u64> {
        assert_eq!(self.slots.len(), other.slots.len());
        self.slots
            .iter()
            .zip(&other.slots)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Serialize for TFS persistence.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.slots.len() * 2);
        out.extend_from_slice(b"ATBL");
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&(self.slots.len() as u32).to_le_bytes());
        for s in &self.slots {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }

    /// Deserialize from TFS bytes.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 16 || &data[0..4] != b"ATBL" {
            return None;
        }
        let epoch = u64::from_le_bytes(data[4..12].try_into().ok()?);
        let n = u32::from_le_bytes(data[12..16].try_into().ok()?) as usize;
        if data.len() != 16 + n * 2 || !n.is_power_of_two() {
            return None;
        }
        let slots = (0..n)
            .map(|i| u16::from_le_bytes(data[16 + i * 2..18 + i * 2].try_into().unwrap()))
            .collect();
        Some(AddressingTable { epoch, slots })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_all_machines_evenly() {
        let t = AddressingTable::round_robin(4, 3); // 16 trunks, 3 machines
        assert_eq!(t.trunk_count(), 16);
        assert_eq!(t.p_bits(), 4);
        let loads: Vec<usize> = (0..3).map(|m| t.trunks_of(MachineId(m)).len()).collect();
        assert_eq!(loads.iter().sum::<usize>(), 16);
        assert!(loads.iter().all(|&l| (5..=6).contains(&l)), "{loads:?}");
    }

    #[test]
    fn routing_is_total_and_stable() {
        let t = AddressingTable::round_robin(5, 4);
        for id in 0..10_000u64 {
            let m1 = t.machine_of(id);
            let m2 = t.machine_of(id);
            assert_eq!(m1, m2);
            assert!(m1.0 < 4);
        }
    }

    #[test]
    fn reassign_failed_moves_every_trunk_off_the_dead_machine() {
        let mut t = AddressingTable::round_robin(4, 4);
        let before_epoch = t.epoch;
        let survivors: Vec<MachineId> = (0..3).map(MachineId).collect();
        let moved = t.reassign_failed(MachineId(3), &survivors);
        assert_eq!(moved.len(), 4);
        assert!(t.trunks_of(MachineId(3)).is_empty());
        assert_eq!(t.epoch, before_epoch + 1);
        // Survivors stay balanced: 16 trunks over 3 machines.
        for m in 0..3 {
            let l = t.trunks_of(MachineId(m)).len();
            assert!((5..=6).contains(&l), "machine {m} got {l} trunks");
        }
    }

    #[test]
    fn rebalance_join_gives_newcomer_a_fair_share() {
        let mut t = AddressingTable::round_robin(4, 3);
        let moved = t.rebalance_join(MachineId(3));
        assert!(!moved.is_empty());
        assert_eq!(t.trunks_of(MachineId(3)).len(), 4); // 16 / 4
        let total: usize = (0..4).map(|m| t.trunks_of(MachineId(m)).len()).sum();
        assert_eq!(total, 16);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut t = AddressingTable::round_robin(3, 2);
        t.reassign_failed(MachineId(1), &[MachineId(0)]);
        let bytes = t.encode();
        assert_eq!(AddressingTable::decode(&bytes).unwrap(), t);
        assert_eq!(AddressingTable::decode(b"junk"), None);
        assert_eq!(AddressingTable::decode(&bytes[..10]), None);
    }
}
