use std::fmt;

use trinity_memstore::StoreError;
use trinity_net::{MachineId, NetError};
use trinity_tfs::TfsError;

/// Errors surfaced by memory-cloud operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloudError {
    /// Local trunk storage failed.
    Store(StoreError),
    /// The network transfer failed (destination dead, timeout, shutdown).
    Net(NetError),
    /// TFS failed while persisting or reloading a trunk.
    Tfs(TfsError),
    /// The remote machine does not own the trunk even after a table
    /// re-sync (persistent routing disagreement).
    WrongOwner { trunk: u64, asked: MachineId },
    /// The trunk migrated away from the asked machine (or its migration
    /// is in its sealed flip window). `epoch` is the table epoch the
    /// caller must reach before retrying: sync from TFS until
    /// `table.epoch >= epoch`, then re-route. The access path does this
    /// transparently within a bounded retry budget.
    Moved { trunk: u64, epoch: u64 },
    /// The query's deadline budget lapsed before the cell operation
    /// completed. Not a liveness signal — the owner is healthy — so the
    /// access path must not re-sync tables or retry.
    DeadlineExceeded { machine: MachineId },
    /// A migration peer refused a protocol frame (stale migration id,
    /// ownership mismatch, superseded attempt). The coordinator aborts
    /// the attempt; the donor keeps serving.
    Migration(String),
    /// A remote reply could not be decoded.
    BadReply,
}

impl fmt::Display for CloudError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloudError::Store(e) => write!(f, "trunk store error: {e}"),
            CloudError::Net(e) => write!(f, "network error: {e}"),
            CloudError::Tfs(e) => write!(f, "TFS error: {e}"),
            CloudError::WrongOwner { trunk, asked } => {
                write!(
                    f,
                    "machine {asked} does not own trunk {trunk} (stale addressing tables)"
                )
            }
            CloudError::Moved { trunk, epoch } => {
                write!(
                    f,
                    "trunk {trunk} migrated away (sync tables to epoch >= {epoch} and retry)"
                )
            }
            CloudError::DeadlineExceeded { machine } => {
                write!(f, "deadline exceeded accessing machine {machine}")
            }
            CloudError::Migration(msg) => write!(f, "migration refused: {msg}"),
            CloudError::BadReply => write!(f, "malformed remote reply"),
        }
    }
}

impl std::error::Error for CloudError {}

impl From<StoreError> for CloudError {
    fn from(e: StoreError) -> Self {
        CloudError::Store(e)
    }
}

impl From<NetError> for CloudError {
    fn from(e: NetError) -> Self {
        CloudError::Net(e)
    }
}

impl From<TfsError> for CloudError {
    fn from(e: TfsError) -> Self {
        CloudError::Tfs(e)
    }
}
