//! Wire encoding for the memory-cloud system protocols.
//!
//! Requests carry the cell id followed by the payload; replies carry a
//! one-byte status followed by data. Deliberately minimal — these are the
//! hot-path messages of every remote cell access.
//!
//! Since the read cache landed, every `OK` reply also carries the cell's
//! 8-byte version stamp right after the status byte: reads learn the stamp
//! they may cache under, and mutation acks return the stamp that doubles
//! as the invalidation floor. `NOT_FOUND`/`NOT_OWNER`/`STORE_ERR` replies
//! stay a bare status byte.

use trinity_memstore::CellVersion;
use trinity_net::FrameBuf;

use crate::{CellId, CloudError};

/// Reply status codes.
pub(crate) const OK: u8 = 0;
pub(crate) const NOT_FOUND: u8 = 1;
pub(crate) const NOT_OWNER: u8 = 2;
pub(crate) const STORE_ERR: u8 = 3;
/// The trunk migrated away from this machine (or is in its sealed flip
/// window). Carries the 8-byte table epoch the caller must sync to.
pub(crate) const MOVED: u8 = 4;
/// A conditional write (`PUT_IF`) found a different version than the
/// caller expected. Carries the cell id, the expected version, and the
/// version actually found, 8 bytes each.
pub(crate) const VERSION_MISMATCH: u8 = 5;

pub(crate) fn encode_req(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

pub(crate) fn decode_req(data: &[u8]) -> Option<(u64, &[u8])> {
    if data.len() < 8 {
        return None;
    }
    Some((
        u64::from_le_bytes(data[..8].try_into().unwrap()),
        &data[8..],
    ))
}

pub(crate) fn reply(status: u8, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + data.len());
    out.push(status);
    out.extend_from_slice(data);
    out
}

/// A `MOVED` reply: status plus the epoch fence the caller must reach.
pub(crate) fn reply_moved(epoch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(9);
    out.push(MOVED);
    out.extend_from_slice(&epoch.to_le_bytes());
    out
}

/// A `PUT_IF` request body (follows the 8-byte id from `encode_req`):
/// the expected version, then the replacement payload.
pub(crate) fn encode_put_if(expected: CellVersion, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&expected.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

pub(crate) fn decode_put_if(body: &[u8]) -> Option<(CellVersion, &[u8])> {
    if body.len() < 8 {
        return None;
    }
    Some((
        u64::from_le_bytes(body[..8].try_into().unwrap()),
        &body[8..],
    ))
}

/// A `VERSION_MISMATCH` reply: status, cell id, expected, found.
pub(crate) fn reply_version_mismatch(
    id: CellId,
    expected: CellVersion,
    found: CellVersion,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(25);
    out.push(VERSION_MISMATCH);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&expected.to_le_bytes());
    out.extend_from_slice(&found.to_le_bytes());
    out
}

/// An `OK` reply: status, version stamp, payload.
pub(crate) fn reply_ok(version: CellVersion, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(9 + data.len());
    out.push(OK);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(data);
    out
}

/// Interpret a remote reply: `Ok(Some((version, bytes)))` for OK,
/// `Ok(None)` for NOT_FOUND, errors otherwise. `trunk`/`asked`
/// contextualize NOT_OWNER.
///
/// The payload comes back as a zero-copy subslice of the received frame:
/// the bytes the owner shipped are the bytes the caller (and the read
/// cache) hold, with no intermediate copy.
pub(crate) fn parse_reply(
    data: &FrameBuf,
    trunk: u64,
    asked: trinity_net::MachineId,
) -> Result<Option<(CellVersion, FrameBuf)>, CloudError> {
    match data.first() {
        Some(&OK) if data.len() >= 9 => {
            let version = u64::from_le_bytes(data[1..9].try_into().unwrap());
            Ok(Some((version, data.slice(9..data.len()))))
        }
        Some(&NOT_FOUND) => Ok(None),
        Some(&NOT_OWNER) => Err(CloudError::WrongOwner { trunk, asked }),
        Some(&MOVED) if data.len() >= 9 => Err(CloudError::Moved {
            trunk,
            epoch: u64::from_le_bytes(data[1..9].try_into().unwrap()),
        }),
        Some(&VERSION_MISMATCH) if data.len() >= 25 => Err(CloudError::Store(
            trinity_memstore::StoreError::VersionMismatch {
                id: u64::from_le_bytes(data[1..9].try_into().unwrap()),
                expected: u64::from_le_bytes(data[9..17].try_into().unwrap()),
                found: u64::from_le_bytes(data[17..25].try_into().unwrap()),
            },
        )),
        Some(&STORE_ERR) => Err(CloudError::Store(
            trinity_memstore::StoreError::OutOfMemory {
                requested: 0,
                reserved: 0,
            },
        )),
        _ => Err(CloudError::BadReply),
    }
}

// ---------------------------------------------------------------------
// MULTI_GET: batched reads, one envelope per destination machine
// ---------------------------------------------------------------------

/// One per-cell outcome inside a MULTI_GET reply. `Hit` payloads are
/// zero-copy subslices of the received reply frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum MultiEntry {
    /// The cell exists: its version stamp and payload.
    Hit(CellVersion, FrameBuf),
    /// The cell does not exist on the owner.
    Missing,
    /// The asked machine does not own this cell's trunk (stale table);
    /// the reader falls back to the single-cell path, which re-syncs.
    NotOwner,
}

/// A MULTI_GET request is just the cell ids, 8 bytes each.
pub(crate) fn encode_multi_req(ids: &[CellId]) -> Vec<u8> {
    let mut out = Vec::with_capacity(ids.len() * 8);
    for id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

pub(crate) fn decode_multi_req(data: &[u8]) -> Option<Vec<CellId>> {
    if !data.len().is_multiple_of(8) {
        return None;
    }
    Some(
        data.chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect(),
    )
}

/// Append one `Hit` entry — `[OK, version u64, len u32, bytes]` — to a
/// reply under construction. The owner-side handler encodes straight from
/// the pinned trunk guard into the reply buffer, so the guard's bytes are
/// copied exactly once on the serve path.
pub(crate) fn multi_push_hit(out: &mut Vec<u8>, version: CellVersion, bytes: &[u8]) {
    out.push(OK);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Append a data-less status entry (`Missing`/`NotOwner`).
pub(crate) fn multi_push_status(out: &mut Vec<u8>, status: u8) {
    out.push(status);
}

/// Reply: entries in request order. `Hit` is
/// `[OK, version u64, len u32, bytes]`; the others are one status byte.
#[cfg(test)]
pub(crate) fn encode_multi_reply(entries: &[MultiEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    for e in entries {
        match e {
            MultiEntry::Hit(version, bytes) => multi_push_hit(&mut out, *version, bytes),
            MultiEntry::Missing => multi_push_status(&mut out, NOT_FOUND),
            MultiEntry::NotOwner => multi_push_status(&mut out, NOT_OWNER),
        }
    }
    out
}

pub(crate) fn decode_multi_reply(data: &FrameBuf, expected: usize) -> Option<Vec<MultiEntry>> {
    let mut entries = Vec::with_capacity(expected);
    let mut at = 0usize;
    while entries.len() < expected {
        match *data.get(at)? {
            OK => {
                let version = u64::from_le_bytes(data.get(at + 1..at + 9)?.try_into().unwrap());
                let len =
                    u32::from_le_bytes(data.get(at + 9..at + 13)?.try_into().unwrap()) as usize;
                data.get(at + 13..at + 13 + len)?;
                let bytes = data.slice(at + 13..at + 13 + len);
                at += 13 + len;
                entries.push(MultiEntry::Hit(version, bytes));
            }
            NOT_FOUND => {
                at += 1;
                entries.push(MultiEntry::Missing);
            }
            NOT_OWNER => {
                at += 1;
                entries.push(MultiEntry::NotOwner);
            }
            _ => return None,
        }
    }
    if at == data.len() {
        Some(entries)
    } else {
        None
    }
}

// ---------------------------------------------------------------------
// INVALIDATE: owner -> reader cache coherence
// ---------------------------------------------------------------------

pub(crate) fn encode_invalidate(id: CellId, version: CellVersion) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&version.to_le_bytes());
    out
}

pub(crate) fn decode_invalidate(data: &[u8]) -> Option<(CellId, CellVersion)> {
    if data.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(data[..8].try_into().unwrap()),
        u64::from_le_bytes(data[8..].try_into().unwrap()),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_net::MachineId;

    #[test]
    fn request_roundtrip() {
        let req = encode_req(0xDEAD_BEEF, b"payload");
        let (id, body) = decode_req(&req).unwrap();
        assert_eq!(id, 0xDEAD_BEEF);
        assert_eq!(body, b"payload");
        assert_eq!(decode_req(b"short"), None);
    }

    fn fb(raw: &[u8]) -> FrameBuf {
        FrameBuf::copy_from_slice(raw)
    }

    #[test]
    fn reply_statuses() {
        let (version, body) = parse_reply(&fb(&reply_ok(42, b"x")), 0, MachineId(0))
            .unwrap()
            .unwrap();
        assert_eq!((version, body.as_slice()), (42, &b"x"[..]));
        assert_eq!(
            parse_reply(&fb(&reply(NOT_FOUND, b"")), 0, MachineId(0)).unwrap(),
            None
        );
        assert!(matches!(
            parse_reply(&fb(&reply(NOT_OWNER, b"")), 3, MachineId(1)),
            Err(CloudError::WrongOwner {
                trunk: 3,
                asked: MachineId(1)
            })
        ));
        assert!(matches!(
            parse_reply(&fb(b""), 0, MachineId(0)),
            Err(CloudError::BadReply)
        ));
        // A truncated OK reply (no room for the version stamp) is malformed.
        assert!(matches!(
            parse_reply(&fb(&[OK, 1, 2]), 0, MachineId(0)),
            Err(CloudError::BadReply)
        ));
        assert!(matches!(
            parse_reply(&fb(&reply_moved(9)), 5, MachineId(2)),
            Err(CloudError::Moved { trunk: 5, epoch: 9 })
        ));
        // A truncated MOVED reply (no epoch fence) is malformed.
        assert!(matches!(
            parse_reply(&fb(&[MOVED, 1]), 0, MachineId(0)),
            Err(CloudError::BadReply)
        ));
    }

    #[test]
    fn put_if_roundtrip() {
        let body = encode_put_if(99, b"next");
        assert_eq!(decode_put_if(&body), Some((99, &b"next"[..])));
        assert_eq!(decode_put_if(&body[..7]), None);

        let raw = reply_version_mismatch(0xAB, 3, 9);
        assert!(matches!(
            parse_reply(&fb(&raw), 0, MachineId(0)),
            Err(CloudError::Store(
                trinity_memstore::StoreError::VersionMismatch {
                    id: 0xAB,
                    expected: 3,
                    found: 9
                }
            ))
        ));
        // A truncated mismatch reply is malformed.
        assert!(matches!(
            parse_reply(&fb(&raw[..24]), 0, MachineId(0)),
            Err(CloudError::BadReply)
        ));
    }

    #[test]
    fn multi_get_roundtrip() {
        let ids = vec![3u64, 99, 7];
        let decoded = decode_multi_req(&encode_multi_req(&ids)).unwrap();
        assert_eq!(decoded, ids);
        assert_eq!(decode_multi_req(b"misaligned"), None);

        let entries = vec![
            MultiEntry::Hit(11, fb(b"alpha")),
            MultiEntry::Missing,
            MultiEntry::NotOwner,
            MultiEntry::Hit(12, FrameBuf::new()),
        ];
        let raw = encode_multi_reply(&entries);
        assert_eq!(decode_multi_reply(&fb(&raw), 4).unwrap(), entries);
        // Wrong expected count or trailing garbage must not parse.
        assert_eq!(decode_multi_reply(&fb(&raw), 3), None);
        assert_eq!(decode_multi_reply(&fb(&raw[..raw.len() - 1]), 4), None);
    }

    #[test]
    fn invalidate_roundtrip() {
        let raw = encode_invalidate(0xABCD, 77);
        assert_eq!(decode_invalidate(&raw), Some((0xABCD, 77)));
        assert_eq!(decode_invalidate(&raw[..15]), None);
    }
}
