//! Wire encoding for the memory-cloud system protocols.
//!
//! Requests carry the cell id followed by the payload; replies carry a
//! one-byte status followed by data. Deliberately minimal — these are the
//! hot-path messages of every remote cell access.

use crate::CloudError;

/// Reply status codes.
pub(crate) const OK: u8 = 0;
pub(crate) const NOT_FOUND: u8 = 1;
pub(crate) const NOT_OWNER: u8 = 2;
pub(crate) const STORE_ERR: u8 = 3;

pub(crate) fn encode_req(id: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

pub(crate) fn decode_req(data: &[u8]) -> Option<(u64, &[u8])> {
    if data.len() < 8 {
        return None;
    }
    Some((
        u64::from_le_bytes(data[..8].try_into().unwrap()),
        &data[8..],
    ))
}

pub(crate) fn reply(status: u8, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + data.len());
    out.push(status);
    out.extend_from_slice(data);
    out
}

/// Interpret a remote reply: `Ok(Some(bytes))` for OK, `Ok(None)` for
/// NOT_FOUND, errors otherwise. `trunk`/`asked` contextualize NOT_OWNER.
pub(crate) fn parse_reply(
    data: &[u8],
    trunk: u64,
    asked: trinity_net::MachineId,
) -> Result<Option<Vec<u8>>, CloudError> {
    match data.first() {
        Some(&OK) => Ok(Some(data[1..].to_vec())),
        Some(&NOT_FOUND) => Ok(None),
        Some(&NOT_OWNER) => Err(CloudError::WrongOwner { trunk, asked }),
        Some(&STORE_ERR) => Err(CloudError::Store(
            trinity_memstore::StoreError::OutOfMemory {
                requested: 0,
                reserved: 0,
            },
        )),
        _ => Err(CloudError::BadReply),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_net::MachineId;

    #[test]
    fn request_roundtrip() {
        let req = encode_req(0xDEAD_BEEF, b"payload");
        let (id, body) = decode_req(&req).unwrap();
        assert_eq!(id, 0xDEAD_BEEF);
        assert_eq!(body, b"payload");
        assert_eq!(decode_req(b"short"), None);
    }

    #[test]
    fn reply_statuses() {
        assert_eq!(
            parse_reply(&reply(OK, b"x"), 0, MachineId(0)).unwrap(),
            Some(b"x".to_vec())
        );
        assert_eq!(
            parse_reply(&reply(NOT_FOUND, b""), 0, MachineId(0)).unwrap(),
            None
        );
        assert!(matches!(
            parse_reply(&reply(NOT_OWNER, b""), 3, MachineId(1)),
            Err(CloudError::WrongOwner {
                trunk: 3,
                asked: MachineId(1)
            })
        ));
        assert!(matches!(
            parse_reply(b"", 0, MachineId(0)),
            Err(CloudError::BadReply)
        ));
    }
}
