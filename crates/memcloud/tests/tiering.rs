//! Out-of-core tiering properties (DESIGN.md §15).
//!
//! The spill path must be a lossless round trip: a trunk's sealed cell
//! image goes to TFS, the trunk drops from the memstore, and the first
//! access faults back a **bit-identical** trunk — under arbitrary cell
//! sets, repeated spill/fault cycles (advancing the TFS CAS version each
//! time), and concurrent readers racing the fault-in. Crash seeds prove
//! the recovery contract: a machine that dies mid-spill or with trunks
//! spilled loses nothing, because the spill image *is* the recovery
//! backup image.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

use trinity_memcloud::{trunk_backup_path, CloudConfig, MemoryCloud};
use trinity_memstore::TrunkSnapshot;

/// Capture the canonical byte image of every resident trunk `machine`
/// owns, keyed by trunk id.
fn capture_owned(cloud: &MemoryCloud, machine: usize) -> HashMap<u64, Vec<u8>> {
    let node = cloud.node(machine);
    let table = node.table();
    let mut images = HashMap::new();
    for gid in table.trunks_of(node.machine()) {
        if let Some(trunk) = node.store().trunk(gid) {
            images.insert(gid, TrunkSnapshot::capture(&trunk).encode());
        }
    }
    images
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary cell sets, several spill → TFS → fault-in cycles (the
    /// CAS version advances every cycle), writes between cycles: every
    /// faulted-in trunk image is bit-identical to the sealed capture,
    /// and the TFS blob in between is exactly that capture.
    #[test]
    fn spill_fault_round_trip_is_bit_identical(
        cells in proptest::collection::vec((0u64..512, proptest::collection::vec(any::<u8>(), 0..48)), 1..80),
        extra in proptest::collection::vec((0u64..512, proptest::collection::vec(any::<u8>(), 0..48)), 1..20),
        cycles in 1usize..3,
    ) {
        let cloud = MemoryCloud::new(CloudConfig::small(2));
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (k, v) in &cells {
            cloud.node(0).put(*k, v).unwrap();
            model.insert(*k, v.clone());
        }
        for cycle in 0..cycles {
            for m in 0..2 {
                let node = cloud.node(m);
                let before = capture_owned(&cloud, m);
                for (&gid, image) in &before {
                    let spilled = node.spill_trunk(gid).unwrap();
                    prop_assert!(spilled, "resident unpinned trunk {gid} must spill");
                    prop_assert!(!node.trunk_resident(gid));
                    prop_assert!(node.store().trunk(gid).is_none(), "spill must drop trunk {gid} from the memstore");
                    // The TFS blob is the sealed capture, byte for byte.
                    let (_, blob) = cloud.tfs().read_versioned(&trunk_backup_path(gid)).unwrap();
                    prop_assert_eq!(&blob, image, "TFS spill image diverged for trunk {}", gid);
                    // Fault back in and re-capture: bit-identical.
                    node.resident_trunk(gid).unwrap();
                    prop_assert!(node.trunk_resident(gid));
                    let trunk = node.store().trunk(gid).unwrap();
                    let after = TrunkSnapshot::capture(&trunk).encode();
                    prop_assert_eq!(&after, image, "fault-in diverged for trunk {}", gid);
                }
            }
            // Mutate between cycles so the next spill CASes over a
            // non-zero TFS version and captures a different image.
            if cycle + 1 < cycles {
                for (k, v) in &extra {
                    let mut v = v.clone();
                    v.push(cycle as u8);
                    cloud.node(1).put(*k, &v).unwrap();
                    model.insert(*k, v);
                }
            }
        }
        let stats = cloud.tier_stats();
        prop_assert!(stats.spills >= 1 && stats.faults >= 1);
        prop_assert_eq!(stats.spilled_trunks, 0, "everything faulted back");
        for (k, v) in &model {
            let got = cloud.node(0).get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        cloud.shutdown();
    }

    /// Concurrent readers racing a spilled trunk's fault-in: exactly one
    /// wins the fault turn, the rest block on the tier condvar, and every
    /// reader — local or routed from the remote machine — observes the
    /// pre-spill value of every cell.
    #[test]
    fn concurrent_reads_during_fault_in_see_sealed_values(
        cells in proptest::collection::vec((0u64..256, proptest::collection::vec(any::<u8>(), 1..32)), 8..64),
    ) {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(2)));
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (k, v) in &cells {
            cloud.node(0).put(*k, v).unwrap();
            model.insert(*k, v.clone());
        }
        for m in 0..2 {
            let node = cloud.node(m);
            for gid in node.table().trunks_of(node.machine()) {
                node.spill_trunk(gid).unwrap();
            }
        }
        let keys: Vec<u64> = model.keys().copied().collect();
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cloud = Arc::clone(&cloud);
                let keys = keys.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::with_capacity(keys.len());
                    for &k in &keys {
                        got.push((k, cloud.node(t % 2).get(k).unwrap().map(|b| b.to_vec())));
                    }
                    got
                })
            })
            .collect();
        for h in handles {
            for (k, v) in h.join().unwrap() {
                prop_assert_eq!(v.as_deref(), model.get(&k).map(Vec::as_slice), "reader diverged on cell {}", k);
            }
        }
        // Trunks holding none of the read keys legitimately stay
        // spilled; every trunk a reader touched must be back.
        let stats = cloud.tier_stats();
        prop_assert!(stats.faults >= 1, "spilled trunks must fault in under read load");
        for m in 0..2 {
            let node = cloud.node(m);
            let table = node.table();
            for &k in &keys {
                let gid = table.trunk_of(k);
                if table.machine_for(gid) == node.machine() {
                    prop_assert!(
                        node.trunk_resident(gid),
                        "machine {} trunk {} holds read cell {} but stayed spilled (state {:?})",
                        m, gid, k, node.spilled_trunks()
                    );
                }
            }
        }
        cloud.shutdown();
    }
}

/// Crash between the spill's TFS write and the memstore eviction: the
/// image landed at the trunk's backup path but the process died before
/// committing the tier state. Recovery reads the backup path — which
/// holds exactly the sealed capture — so the reassigned trunk loses
/// nothing.
#[test]
fn crash_between_spill_write_and_eviction_loses_nothing() {
    let cloud = MemoryCloud::new(CloudConfig::small(3));
    let mut model = HashMap::new();
    for k in 0u64..192 {
        let v = vec![(k % 251) as u8; 1 + (k % 37) as usize];
        cloud.node(0).put(k, &v).unwrap();
        model.insert(k, v);
    }
    // Everything else is durable; the victim's trunks carry the fresh data.
    cloud.backup_all().unwrap();
    for k in 200u64..230 {
        let v = vec![0xA5; 9];
        cloud.node(0).put(k, &v).unwrap();
        model.insert(k, v);
    }
    let victim = 1usize;
    let vm = cloud.node(victim).machine();
    // Replay the first half of the spill by hand: seal-capture each
    // trunk and CAS the image to the backup path, then "crash" before
    // the eviction / tier-state commit would have happened.
    let table = cloud.node(victim).table();
    for gid in table.trunks_of(vm) {
        if let Some(trunk) = cloud.node(victim).store().trunk(gid) {
            let image = TrunkSnapshot::capture(&trunk).encode();
            let path = trunk_backup_path(gid);
            let expected = cloud
                .tfs()
                .read_versioned(&path)
                .map(|(v, _)| v)
                .unwrap_or(0);
            cloud
                .tfs()
                .write_if_version(&path, &image, expected)
                .unwrap();
        }
    }
    cloud.kill_machine(victim);
    cloud.recover(victim).unwrap();
    for (k, v) in &model {
        assert_eq!(
            cloud.node(0).get(*k).unwrap().as_deref(),
            Some(v.as_slice()),
            "cell {k} lost across the mid-spill crash"
        );
    }
    cloud.shutdown();
}

/// Crash while trunks are spilled (covers a crash during fault-in: the
/// TFS image is still the source of truth). The dead machine's memstore
/// held nothing for those trunks — recovery must restore them on the
/// survivors purely from the spill images, with zero divergence.
#[test]
fn crash_with_spilled_trunks_recovers_from_spill_images() {
    let cloud = MemoryCloud::new(CloudConfig::small(3));
    let mut model = HashMap::new();
    for k in 0u64..256 {
        let v = vec![(k % 13) as u8; 1 + (k % 29) as usize];
        cloud.node(0).put(k, &v).unwrap();
        model.insert(k, v);
    }
    cloud.backup_all().unwrap();
    // Post-backup writes live only in the victim's trunks; the spill
    // seals them into TFS *after* the backup, so recovery serves them.
    let victim = 2usize;
    let vm = cloud.node(victim).machine();
    let table = cloud.node(victim).table();
    let fresh: Vec<u64> = (300u64..360)
        .filter(|k| table.machine_of(*k) == vm)
        .collect();
    assert!(
        !fresh.is_empty(),
        "seed must land post-backup cells on the victim"
    );
    for &k in &fresh {
        let v = vec![0x5A; 17];
        cloud.node(0).put(k, &v).unwrap();
        model.insert(k, v);
    }
    let mut spilled = 0;
    for gid in table.trunks_of(vm) {
        if cloud.node(victim).spill_trunk(gid).unwrap() {
            spilled += 1;
        }
    }
    assert!(
        spilled > 0,
        "the victim must have trunks out-of-core when it dies"
    );
    assert_eq!(cloud.node(victim).spilled_trunks().len(), spilled);
    cloud.kill_machine(victim);
    cloud.recover(victim).unwrap();
    for (k, v) in &model {
        assert_eq!(
            cloud.node(0).get(*k).unwrap().as_deref(),
            Some(v.as_slice()),
            "cell {k} diverged recovering a spilled trunk"
        );
    }
    cloud.shutdown();
}

/// Budget-driven eviction: with the budget at roughly half the resident
/// bytes, the sweep spills coldest-first until under budget, reads fault
/// the spilled trunks back in transparently, and a pinned trunk is never
/// selected no matter how cold it is.
#[test]
fn budget_sweep_spills_cold_trunks_and_reads_fault_back() {
    let cloud = MemoryCloud::new(CloudConfig::small(2));
    let mut model = HashMap::new();
    for k in 0u64..512 {
        let v = vec![(k % 199) as u8; 24];
        cloud.node(0).put(k, &v).unwrap();
        model.insert(k, v);
    }
    let node = cloud.node(0);
    let resident: u64 = node
        .store()
        .trunks()
        .into_iter()
        .map(|t| t.stats().used_bytes as u64)
        .sum();
    assert!(resident > 0);
    // Pin one owned trunk; it must survive even a starvation budget.
    let pinned_gid = node.table().trunks_of(node.machine())[0];
    node.pin_trunk(pinned_gid);
    let spilled = node.set_memory_budget(resident / 2).unwrap();
    assert!(spilled > 0, "half budget must force spills");
    assert!(node.trunk_resident(pinned_gid), "pinned trunk evicted");
    assert!(!node.spilled_trunks().is_empty());
    let remaining: u64 = node
        .store()
        .trunks()
        .into_iter()
        .map(|t| t.stats().used_bytes as u64)
        .sum();
    assert!(
        remaining <= resident / 2,
        "sweep left {remaining} bytes resident over the {} budget",
        resident / 2
    );
    // Every cell still reads correctly — spilled ones via fault-in.
    for (k, v) in &model {
        assert_eq!(
            cloud.node(1).get(*k).unwrap().as_deref(),
            Some(v.as_slice())
        );
    }
    let stats = cloud.tier_stats();
    assert!(stats.spills as usize >= spilled);
    assert!(stats.faults >= 1);
    node.unpin_trunk(pinned_gid);
    cloud.shutdown();
}

/// Writes targeting a spilled trunk fault it in first and land — the
/// gated-mutation path re-checks the tier state, so no mutation applies
/// to a trunk that is mid-spill or absent.
#[test]
fn writes_to_spilled_trunks_fault_in_and_land() {
    let cloud = MemoryCloud::new(CloudConfig::small(2));
    for k in 0u64..128 {
        cloud.node(0).put(k, &[1, 2, 3]).unwrap();
    }
    for m in 0..2 {
        let node = cloud.node(m);
        for gid in node.table().trunks_of(node.machine()) {
            node.spill_trunk(gid).unwrap();
        }
    }
    for k in 0u64..128 {
        assert!(cloud.node(1).append(k, &[4]).unwrap(), "cell {k} vanished");
        cloud.node(0).put(k + 1000, &[9]).unwrap();
        assert!(cloud.node(0).remove(k + 1000).unwrap());
    }
    for k in 0u64..128 {
        assert_eq!(
            cloud.node(0).get(k).unwrap().as_deref(),
            Some(&[1, 2, 3, 4][..]),
            "append lost on spilled trunk for cell {k}"
        );
    }
    cloud.shutdown();
}
