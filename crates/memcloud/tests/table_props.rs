//! Property tests for the addressing table's reconfiguration operations.
//!
//! Under arbitrary sequences of joins and failures the table must keep
//! three promises the rest of the stack leans on:
//!
//! * **minimal disruption** — a reconfiguration only rewrites the slots
//!   it must (a join moves exactly the trunks the newcomer receives, a
//!   failure moves exactly the dead machine's trunks; everything else
//!   keeps its owner), so `changed_trunks` stays small and cache
//!   invalidation stays selective;
//! * **fairness** — after a join the newcomer holds its fair share and
//!   no machine is left more than one trunk above the post-join fair
//!   level among previously-balanced placements; after a failure the
//!   survivors' counts differ by at most one more than they did before;
//! * **epoch monotonicity** — every reconfiguration bumps the epoch by
//!   exactly one, so version fencing (`Moved{epoch}`, table refresh)
//!   totally orders reconfigurations.

use proptest::prelude::*;
use std::collections::BTreeSet;

use trinity_memcloud::AddressingTable;
use trinity_net::MachineId;

/// One cluster-membership reconfiguration.
#[derive(Debug, Clone, Copy)]
enum Reconfig {
    Join(u16),
    Fail(u16),
}

fn reconfig_strategy(max_machines: u16) -> impl Strategy<Value = Reconfig> {
    prop_oneof![
        1 => (0..max_machines).prop_map(Reconfig::Join),
        1 => (0..max_machines).prop_map(Reconfig::Fail),
    ]
}

/// Apply one reconfiguration, checking the per-step invariants. Returns
/// false if the step was skipped as inapplicable (joining a member,
/// failing a non-member or the last machine).
fn step(table: &mut AddressingTable, live: &mut BTreeSet<u16>, r: Reconfig) -> bool {
    let before = table.clone();
    match r {
        Reconfig::Join(m) => {
            if live.contains(&m) {
                return false;
            }
            let moved = table.rebalance_join(MachineId(m));
            live.insert(m);

            // Epoch: exactly one bump.
            assert_eq!(table.epoch, before.epoch + 1, "join must bump epoch once");
            // Minimal disruption: the changed slots are exactly the moved
            // trunks, and each moved trunk went from its recorded donor to
            // the joiner.
            let changed: BTreeSet<u64> = before.changed_trunks(table).into_iter().collect();
            let moved_set: BTreeSet<u64> = moved.iter().map(|&(g, _)| g).collect();
            assert_eq!(changed, moved_set, "join rewrote slots it did not move");
            for &(g, from) in &moved {
                assert_eq!(before.machine_for(g), from);
                assert_eq!(table.machine_for(g), MachineId(m));
            }
            // Fairness: the joiner reaches the fair share unless every
            // potential donor is already at or below it.
            let fair = table.trunk_count() / live.len();
            let got = table.trunks_of(MachineId(m)).len();
            if got < fair {
                for &other in live.iter().filter(|&&o| o != m) {
                    assert!(
                        table.trunks_of(MachineId(other)).len() <= fair,
                        "joiner below fair share while machine {other} holds a surplus"
                    );
                }
            }
            assert!(got <= fair, "joiner must not overshoot its fair share");
        }
        Reconfig::Fail(m) => {
            if !live.contains(&m) || live.len() == 1 {
                return false;
            }
            live.remove(&m);
            let survivors: Vec<MachineId> = live.iter().map(|&s| MachineId(s)).collect();
            let spread_before = count_spread(table, &survivors);
            let orphaned: BTreeSet<u64> = table.trunks_of(MachineId(m)).into_iter().collect();
            let moved = table.reassign_failed(MachineId(m), &survivors);

            assert_eq!(
                table.epoch,
                before.epoch + 1,
                "failure must bump epoch once"
            );
            // Minimal disruption: exactly the dead machine's trunks moved.
            let changed: BTreeSet<u64> = before.changed_trunks(table).into_iter().collect();
            assert_eq!(changed, orphaned, "failure rewrote slots of survivors");
            let moved_set: BTreeSet<u64> = moved.iter().map(|&(g, _)| g).collect();
            assert_eq!(moved_set, orphaned);
            assert!(table.trunks_of(MachineId(m)).is_empty());
            // Fairness: least-loaded-first placement never widens the
            // count spread beyond one (the indivisible remainder).
            let spread_after = count_spread(table, &survivors);
            assert!(
                spread_after <= spread_before.max(1),
                "failure reassignment widened the spread {spread_before} -> {spread_after}"
            );
        }
    }
    true
}

/// Max-min trunk count across `machines`.
fn count_spread(table: &AddressingTable, machines: &[MachineId]) -> usize {
    let counts: Vec<usize> = machines.iter().map(|&m| table.trunks_of(m).len()).collect();
    counts.iter().max().unwrap() - counts.iter().min().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary join/fail sequences: every applied step keeps the
    /// minimal-disruption, fairness, and epoch contracts, and the table
    /// always maps every trunk to a live machine.
    #[test]
    fn reconfigurations_preserve_table_contracts(
        p in 3u32..6,
        initial in 2usize..5,
        seq in proptest::collection::vec(reconfig_strategy(8), 1..24),
    ) {
        let mut table = AddressingTable::round_robin(p, initial);
        let mut live: BTreeSet<u16> = (0..initial as u16).collect();
        let mut epoch_floor = table.epoch;
        for &r in &seq {
            if step(&mut table, &mut live, r) {
                // Epoch strictly increases across applied reconfigs.
                prop_assert!(table.epoch > epoch_floor);
                epoch_floor = table.epoch;
            } else {
                prop_assert_eq!(table.epoch, epoch_floor, "skipped step must not bump epoch");
            }
            // Every trunk is owned by a live machine at all times.
            for g in 0..table.trunk_count() as u64 {
                prop_assert!(
                    live.contains(&table.machine_for(g).0),
                    "trunk {} owned by dead machine {:?}", g, table.machine_for(g)
                );
            }
        }
    }

    /// A join into a balanced placement takes the same number of trunks
    /// from the donors as `cold_join` would hand over: exactly the fair
    /// share, each taken from a machine holding more than the fair share
    /// at the moment of the steal.
    #[test]
    fn join_steals_only_from_surplus_holders(
        p in 3u32..6,
        machines in 2usize..7,
    ) {
        let mut table = AddressingTable::round_robin(p, machines);
        let joiner = MachineId(machines as u16);
        let before = table.clone();
        let moved = table.rebalance_join(joiner);
        let fair = table.trunk_count() / (machines + 1);
        prop_assert_eq!(moved.len(), fair);
        // Donor counts stay at or above the fair level afterwards.
        for m in 0..machines as u16 {
            prop_assert!(table.trunks_of(MachineId(m)).len() >= fair);
        }
        prop_assert_eq!(table.epoch, before.epoch + 1);
    }

    /// Failing a machine and then re-joining one restores a placement
    /// with the same balance (spread <= 1), whatever the interleaving —
    /// the table never drifts toward lopsidedness.
    #[test]
    fn fail_then_join_restores_balance(
        p in 3u32..6,
        machines in 3usize..6,
        victim in 0u16..3,
    ) {
        let mut table = AddressingTable::round_robin(p, machines);
        let survivors: Vec<MachineId> = (0..machines as u16)
            .filter(|&m| m != victim)
            .map(MachineId)
            .collect();
        table.reassign_failed(MachineId(victim), &survivors);
        table.rebalance_join(MachineId(victim));
        let all: Vec<MachineId> = (0..machines as u16).map(MachineId).collect();
        prop_assert!(count_spread(&table, &all) <= 1,
            "spread {} after fail+rejoin", count_spread(&table, &all));
    }
}
