//! Model-based property tests for the memory cloud.
//!
//! The cloud must behave exactly like a `HashMap<u64, Vec<u8>>` under
//! arbitrary op sequences issued from arbitrary machines — including a
//! machine failure + recovery in the middle (for cells that were backed
//! up) and a standby join.

use proptest::prelude::*;
use std::collections::HashMap;

use trinity_memcloud::{CloudConfig, MemoryCloud};

#[derive(Debug, Clone)]
enum Op {
    Put { via: usize, key: u64, val: Vec<u8> },
    Append { via: usize, key: u64, val: Vec<u8> },
    Remove { via: usize, key: u64 },
    Get { via: usize, key: u64 },
    Backup,
}

fn op_strategy(machines: usize) -> impl Strategy<Value = Op> {
    let via = 0..machines;
    let key = 0u64..64;
    let bytes = proptest::collection::vec(any::<u8>(), 0..48);
    prop_oneof![
        4 => (via.clone(), key.clone(), bytes.clone()).prop_map(|(via, key, val)| Op::Put { via, key, val }),
        2 => (via.clone(), key.clone(), bytes).prop_map(|(via, key, val)| Op::Append { via, key, val }),
        2 => (via.clone(), key.clone()).prop_map(|(via, key)| Op::Remove { via, key }),
        3 => (via, key).prop_map(|(via, key)| Op::Get { via, key }),
        1 => Just(Op::Backup),
    ]
}

fn apply(cloud: &MemoryCloud, model: &mut HashMap<u64, Vec<u8>>, op: &Op) {
    match op {
        Op::Put { via, key, val } => {
            cloud.node(*via).put(*key, val).unwrap();
            model.insert(*key, val.clone());
        }
        Op::Append { via, key, val } => {
            let existed = cloud.node(*via).append(*key, val).unwrap();
            match model.get_mut(key) {
                Some(m) => {
                    assert!(existed);
                    m.extend_from_slice(val);
                }
                None => assert!(!existed),
            }
        }
        Op::Remove { via, key } => {
            let existed = cloud.node(*via).remove(*key).unwrap();
            assert_eq!(existed, model.remove(key).is_some());
        }
        Op::Get { via, key } => {
            assert_eq!(
                cloud.node(*via).get(*key).unwrap().as_deref(),
                model.get(key).map(Vec::as_slice)
            );
        }
        Op::Backup => cloud.backup_all().unwrap(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn cloud_matches_hashmap(ops in proptest::collection::vec(op_strategy(3), 1..120)) {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        let mut model = HashMap::new();
        for op in &ops {
            apply(&cloud, &mut model, op);
        }
        for (k, v) in &model {
            let got = cloud.node(0).get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        cloud.shutdown();
    }

    #[test]
    fn failure_and_recovery_mid_sequence_preserves_backed_up_state(
        before in proptest::collection::vec(op_strategy(3), 1..60),
        after in proptest::collection::vec(op_strategy(3), 1..60),
        victim in 1usize..3,
    ) {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        let mut model = HashMap::new();
        for op in &before {
            apply(&cloud, &mut model, op);
        }
        // Snapshot everything, then crash & recover: the model is intact
        // because every live cell was just backed up.
        cloud.backup_all().unwrap();
        cloud.kill_machine(victim);
        cloud.recover(victim).unwrap();
        for (k, v) in &model {
            let got = cloud.node(0).get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()), "cell {} lost in recovery", k);
        }
        // The cloud keeps working afterwards, routed around the dead
        // machine (ops avoid issuing via the victim).
        for op in &after {
            let redirected = redirect(op, victim);
            apply(&cloud, &mut model, &redirected);
        }
        for (k, v) in &model {
            let got = cloud.node(0).get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        cloud.shutdown();
    }

    #[test]
    fn join_mid_sequence_is_transparent(
        before in proptest::collection::vec(op_strategy(2), 1..60),
        after in proptest::collection::vec(op_strategy(3), 1..60),
    ) {
        let cloud = MemoryCloud::new(CloudConfig { standby_machines: 1, ..CloudConfig::small(2) });
        let mut model = HashMap::new();
        for op in &before {
            apply(&cloud, &mut model, op);
        }
        cloud.cold_join(2).unwrap();
        for (k, v) in &model {
            let got = cloud.node(2).get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()), "cell {} lost in join", k);
        }
        for op in &after {
            apply(&cloud, &mut model, op); // `via` may now be the joiner
        }
        for (k, v) in &model {
            let got = cloud.node(1).get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        cloud.shutdown();
    }
}

fn redirect(op: &Op, victim: usize) -> Op {
    let fix = |via: usize| if via == victim { (victim + 1) % 3 } else { via };
    match op {
        Op::Put { via, key, val } => Op::Put {
            via: fix(*via),
            key: *key,
            val: val.clone(),
        },
        Op::Append { via, key, val } => Op::Append {
            via: fix(*via),
            key: *key,
            val: val.clone(),
        },
        Op::Remove { via, key } => Op::Remove {
            via: fix(*via),
            key: *key,
        },
        Op::Get { via, key } => Op::Get {
            via: fix(*via),
            key: *key,
        },
        Op::Backup => Op::Backup,
    }
}

/// The single-cell CAS behaves like `compare_exchange` on the owner's
/// version stamp, from any machine in the cloud: a fresh stamp wins, a
/// stale one reports the mismatch without clobbering, and the ack stamp
/// chains into the next CAS.
#[test]
fn put_if_version_is_a_cloudwide_cas() {
    use trinity_memcloud::CloudError;
    use trinity_memstore::StoreError;

    let cloud = MemoryCloud::new(CloudConfig::small(3));
    // Pick a key owned by machine 0 so machine 1 exercises the remote path.
    let key = (0u64..)
        .find(|k| {
            let t = cloud.node(0).table();
            t.machine_of(t.trunk_of(*k)) == cloud.node(0).machine()
        })
        .unwrap();

    cloud.node(1).put(key, b"v0").unwrap();
    let v0 = cloud.node(1).version_of(key).unwrap().unwrap();

    let v1 = cloud.node(1).put_if_version(key, b"v1", v0).unwrap();
    assert!(v1 > v0);

    // The stale stamp must lose, reporting what it collided with.
    match cloud.node(2).put_if_version(key, b"stale", v0) {
        Err(CloudError::Store(StoreError::VersionMismatch {
            id,
            expected,
            found,
        })) => {
            assert_eq!(id, key);
            assert_eq!(expected, v0);
            assert_eq!(found, v1);
        }
        other => panic!("expected version mismatch, got {other:?}"),
    }
    assert_eq!(cloud.node(2).get(key).unwrap().as_deref(), Some(&b"v1"[..]));

    // The winning ack's stamp is the next expected value — and works
    // issued from the owner itself (local dispatch path).
    let v2 = cloud.node(0).put_if_version(key, b"v2", v1).unwrap();
    assert!(v2 > v1);
    assert_eq!(cloud.node(1).get(key).unwrap().as_deref(), Some(&b"v2"[..]));

    // CAS on a cell that never existed is NotFound, not a silent create.
    match cloud.node(1).put_if_version(key + (1 << 40), b"x", v2) {
        Err(CloudError::Store(StoreError::NotFound(_))) => {}
        other => panic!("expected not-found, got {other:?}"),
    }
    cloud.shutdown();
}
