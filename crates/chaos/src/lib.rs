//! Seeded chaos testing for the Trinity memory cloud.
//!
//! The paper's recovery story (§6) is stated in terms of *mechanisms* —
//! heartbeats, TFS backups, BSP checkpoints, detection-by-access. This
//! crate tests the *guarantees* those mechanisms are supposed to add up
//! to, by running whole workloads (BSP jobs, online traversals, a serving
//! slice) on a fabric whose interconnect misbehaves on a seeded schedule
//! (see `trinity_net::FaultPlan`), and checking invariants afterwards:
//!
//! 1. **Exactness under benign faults** — delays, duplicates, and bounded
//!    reordering must not change any result: BSP states, traversal
//!    neighborhoods, and query answers are byte-equal to a fault-free
//!    run.
//! 2. **Exactness under crashes** — a machine crash followed by the §6
//!    recovery protocol (reload trunks from TFS, resume the job from its
//!    checkpoint) still yields byte-equal results.
//! 3. **Conservation** — after quiescence the frame ledger balances
//!    (`entered + duplicated == consumed + swallowed`), no envelopes leak
//!    inside the injector, and the serving runtime accounts for every
//!    submitted query (`submitted == admitted + shed`,
//!    `admitted == completed + cancelled + expired`).
//! 4. **Replayability** — the same seed injects the same faults
//!    ([`trinity_net::FaultLog`]s are equal), and a failing schedule can
//!    be re-applied verbatim and *shrunk* to a minimal failing fault list
//!    ([`ChaosRunner::shrink`]).
//!
//! ```no_run
//! use trinity_chaos::{BspRingMax, ChaosRunner};
//! use trinity_net::FaultPlan;
//!
//! let runner = ChaosRunner::new(
//!     BspRingMax::small(),
//!     FaultPlan::new(0).with_delay(0.3, 300, 500),
//! );
//! let report = runner.run(0xC0FFEE);
//! assert!(report.passed(), "{:?}", report.failures);
//! // A failing schedule replays and shrinks:
//! let (minimal, _runs) = runner.shrink(&report.faulty.log, 64);
//! ```

mod runner;
mod workloads;

pub use runner::{ChaosReport, ChaosRun, ChaosRunner, ChaosWorkload};
pub use workloads::{
    BspRingMax, CachedRemoteReads, MigrationStorm, MutationStorm, PartitionHeal, ServeSlice,
    TraversalSearch,
};
