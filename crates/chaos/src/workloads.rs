//! Chaos workloads: whole Trinity scenarios the harness runs under
//! seeded fault plans.
//!
//! Each workload builds its own cluster per run, *disarms* the injector
//! while loading data (setup traffic must not perturb the seeded fault
//! decisions), arms it for the measured phase, and captures the
//! injector's accounting with [`ChaosRun::capture`] before shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trinity_core::checkpoint::{resume_from_checkpoint, run_with_checkpoints, CheckpointConfig};
use trinity_core::online::{explore_via, ExploreOptions};
use trinity_core::recovery::{RecoveryAgents, RecoveryConfig, RecoveryEvent};
use trinity_core::{
    BspConfig, BspRunner, Explorer, MessagingMode, TrinityCluster, TrinityConfig, VertexContext,
    VertexProgram,
};
use trinity_graph::{load_graph, Csr, LoadOptions};
use trinity_memcloud::{CloudConfig, MemoryCloud};
use trinity_net::{FaultPlan, MachineId};
use trinity_serve::{Priority, ServeConfig, ServeError, ServeRuntime};

use crate::runner::{ChaosRun, ChaosWorkload};

const CAPTURE_TIMEOUT: Duration = Duration::from_secs(10);

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Max-id propagation: the canonical deterministic BSP job. Every vertex
/// converges to the max id of its component, so the final states are a
/// pure function of the graph — any divergence under faults is a bug.
struct MaxValue;

impl VertexProgram for MaxValue {
    type State = u64;
    type Msg = u64;
    fn init(&self, id: u64, _view: &trinity_graph::NodeView<'_>) -> u64 {
        id
    }
    fn compute(&self, ctx: &mut VertexContext<'_, u64>, _id: u64, state: &mut u64, msgs: &[u64]) {
        let before = *state;
        for &m in msgs {
            *state = (*state).max(m);
        }
        if ctx.superstep() == 0 || *state > before {
            ctx.send_to_neighbors(*state);
        }
        ctx.vote_to_halt();
    }
    fn encode_msg(m: &u64) -> Vec<u8> {
        m.to_le_bytes().to_vec()
    }
    fn decode_msg(b: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
    fn encode_state(s: &u64) -> Vec<u8> {
        s.to_le_bytes().to_vec()
    }
    fn decode_state(b: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
}

fn ring(n: usize) -> Csr {
    let edges: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v + 1) % n as u64)).collect();
    Csr::undirected_from_edges(n, &edges, true)
}

fn bsp_cfg(limit: usize) -> BspConfig {
    BspConfig {
        messaging: MessagingMode::Packed,
        hub_threshold: None,
        combine: false,
        max_supersteps: limit,
    }
}

/// A checkpointed MaxValue BSP job on a ring, with the §6.2 recovery
/// choreography built in: the job runs `stop_at` supersteps (firing a
/// chaos mark at every checkpoint boundary, where crash schedules keyed
/// on `Trigger::Mark(superstep)` strike), recovers any machine the plan
/// crashed (reload trunks from TFS, revive, resync the addressing
/// table), then resumes from the last checkpoint to termination. The
/// final states must equal the fault-free run's exactly.
#[derive(Debug, Clone)]
pub struct BspRingMax {
    /// Cluster size.
    pub machines: usize,
    /// Ring size (the job needs ~n/2 supersteps, so keep `stop_at` well
    /// below that).
    pub n: usize,
    /// Checkpoint cadence, in supersteps.
    pub every: usize,
    /// Supersteps before the recovery barrier (a multiple of `every`).
    pub stop_at: usize,
    /// Total superstep budget for the resumed job.
    pub limit: usize,
}

impl BspRingMax {
    /// A small instance for tests: 3 machines, 30-vertex ring,
    /// checkpoints every 4 supersteps, recovery barrier at 8.
    pub fn small() -> Self {
        BspRingMax {
            machines: 3,
            n: 30,
            every: 4,
            stop_at: 8,
            limit: 64,
        }
    }
}

impl ChaosWorkload for BspRingMax {
    fn name(&self) -> &str {
        "bsp-ring-max"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        let graph = Arc::new(
            load_graph(Arc::clone(&cloud), &ring(self.n), &LoadOptions::default())
                .expect("load ring graph"),
        );
        cloud.backup_all().expect("backup trunks to TFS");
        fabric.chaos_arm(true);

        let mark_fabric = Arc::clone(&fabric);
        let ckpt = CheckpointConfig::new(self.every, "chaos-bsp")
            .with_on_segment(move |superstep| mark_fabric.chaos_mark(superstep as u64));
        let mut failures = Vec::new();
        let runner = BspRunner::new(Arc::clone(&graph), MaxValue, bsp_cfg(self.every));
        let partial = run_with_checkpoints(&runner, &bsp_cfg(self.stop_at), &ckpt)
            .expect("checkpointed BSP segment");
        drop(runner);

        // Recover whatever the schedule crashed: reload the dead
        // machine's trunks onto survivors from TFS (§6.1), revive it at
        // the fabric, and let it resync the new-epoch addressing table.
        let mut recovered = Vec::new();
        for m in 0..self.machines {
            if fabric.is_dead(MachineId(m as u16)) {
                cloud.recover(m).expect("recover crashed machine");
                fabric.revive(MachineId(m as u16));
                cloud.node(m).sync_table().expect("resync table");
                recovered.push(m as u16);
            }
        }

        let result = if partial.terminated {
            partial
        } else {
            let resumed = BspRunner::new(Arc::clone(&graph), MaxValue, bsp_cfg(self.every));
            resume_from_checkpoint(&resumed, &bsp_cfg(self.limit), &ckpt)
                .expect("resume from checkpoint")
        };
        if !result.terminated {
            failures.push("BSP job did not terminate within its budget".into());
        }
        let mut states: Vec<(u64, u64)> = result.states.iter().map(|(k, v)| (*k, *v)).collect();
        states.sort_unstable();
        let outcome = states
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(",");

        let mut run = ChaosRun::capture(&fabric, outcome, CAPTURE_TIMEOUT);
        run.recovered = recovered;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        let mut failures = Vec::new();
        if faulty.outcome != reference.outcome {
            failures.push("BSP final states diverged from the fault-free run".into());
        }
        let mut crashes = faulty.crashes();
        let mut recovered = faulty.recovered.clone();
        crashes.sort_unstable();
        recovered.sort_unstable();
        if crashes != recovered {
            failures.push(format!(
                "crashed machines {crashes:?} but recovered {recovered:?}"
            ));
        }
        failures
    }
}

/// Multi-hop neighborhood exploration from pinned start vertices on a
/// social graph. Benign faults (duplicates, delays, reordering) must not
/// change any per-hop frontier size: exploration handlers are
/// idempotent reads, and duplicate responses are discarded by
/// correlation matching.
#[derive(Debug, Clone)]
pub struct TraversalSearch {
    /// Cluster size.
    pub machines: usize,
    /// Social-graph vertex count.
    pub n: usize,
    /// Social-graph average degree.
    pub degree: usize,
    /// Hops per exploration.
    pub hops: usize,
    /// Start vertices (pinned, so runs are comparable).
    pub starts: Vec<u64>,
}

impl TraversalSearch {
    /// A small instance: 3 machines, 600 vertices, 2-hop explorations.
    pub fn small() -> Self {
        TraversalSearch {
            machines: 3,
            n: 600,
            degree: 6,
            hops: 2,
            starts: vec![1, 17, 101, 333],
        }
    }
}

impl ChaosWorkload for TraversalSearch {
    fn name(&self) -> &str {
        "traversal-search"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        let csr = trinity_graphgen::social(self.n, self.degree, 7);
        load_graph(Arc::clone(&cloud), &csr, &LoadOptions::default()).expect("load social graph");
        let explorer = Explorer::install(Arc::clone(&cloud));
        fabric.chaos_arm(true);

        let mut failures = Vec::new();
        let mut pieces = Vec::new();
        for &start in &self.starts {
            let r = explorer.explore(0, start, self.hops, b"");
            if r.deadline_exceeded || r.cancelled {
                failures.push(format!("exploration from {start} was cut short"));
            }
            pieces.push(format!("{start}:{:?}", r.per_hop));
        }
        let mut run = ChaosRun::capture(&fabric, pieces.join(";"), CAPTURE_TIMEOUT);
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec![format!(
                "traversal frontiers diverged: {} != {}",
                faulty.outcome, reference.outcome
            )]
        } else {
            Vec::new()
        }
    }
}

/// A slice of the serving workload: a proxy-tier [`ServeRuntime`] fed a
/// burst of deadline-bounded exploration queries while the plan drops
/// frames and crashes slaves at submission-indexed marks. The checked
/// invariants are conservation — every submitted query is admitted or
/// shed, and every admitted query completes, cancels, or expires in
/// queue — and that no query starts running after its deadline expired.
/// Timing makes the traffic nondeterministic, so no log equality is
/// asserted (`deterministic()` is false).
#[derive(Debug, Clone)]
pub struct ServeSlice {
    /// Slave count (plus one proxy and one client endpoint).
    pub slaves: usize,
    /// Social-graph vertex count.
    pub n: usize,
    /// Social-graph average degree.
    pub degree: usize,
    /// Queries to submit.
    pub queries: usize,
    /// Per-query deadline.
    pub deadline: Duration,
    /// Submission indices at which to fire `chaos_mark(1), (2), …` —
    /// where plans schedule `Trigger::Mark(k)` crashes.
    pub marks: Vec<usize>,
}

impl ServeSlice {
    /// A smoke-sized instance: 4 slaves, 2000 vertices, 120 queries,
    /// marks at 1/3 and 2/3 of the submission stream.
    pub fn small() -> Self {
        ServeSlice {
            slaves: 4,
            n: 2_000,
            degree: 8,
            queries: 120,
            deadline: Duration::from_millis(300),
            marks: vec![40, 80],
        }
    }
}

impl ChaosWorkload for ServeSlice {
    fn name(&self) -> &str {
        "serve-slice"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let mut cloud_cfg = CloudConfig::small(self.slaves);
        cloud_cfg.faults = faults;
        cloud_cfg.workers_per_machine = 2;
        let cluster = TrinityCluster::new(TrinityConfig {
            cloud: cloud_cfg,
            proxies: 1,
            clients: 1,
        });
        let fabric = Arc::clone(cluster.cloud().fabric());
        fabric.chaos_arm(false);
        let csr = trinity_graphgen::social(self.n, self.degree, 7);
        load_graph(Arc::clone(cluster.cloud()), &csr, &LoadOptions::default())
            .expect("load social graph");
        let _explorer = Explorer::install(Arc::clone(cluster.cloud()));
        fabric.chaos_arm(true);

        let proxy = cluster.proxy(0);
        let endpoint = Arc::clone(proxy.endpoint());
        let table = Arc::new(cluster.cloud().node(0).table());
        let slaves = cluster.slaves();
        let rt = ServeRuntime::start(
            proxy.endpoint(),
            ServeConfig {
                workers: 2,
                queue_capacity: [4, 6, 8],
                default_deadline: Some(self.deadline),
            },
        );

        let started_expired = Arc::new(AtomicU64::new(0));
        let mut rng = 0x5EED_u64 | 1;
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for i in 0..self.queries {
            if let Some(k) = self.marks.iter().position(|&at| at == i) {
                fabric.chaos_mark(k as u64 + 1);
            }
            let start = xorshift(&mut rng) % self.n as u64;
            let class = if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Normal
            };
            let endpoint = Arc::clone(&endpoint);
            let table = Arc::clone(&table);
            let started_expired = Arc::clone(&started_expired);
            match rt.submit(class, Some(self.deadline), move |ctx| {
                if trinity_net::deadline_expired() {
                    started_expired.fetch_add(1, Ordering::Relaxed);
                }
                explore_via(
                    &endpoint,
                    &table,
                    slaves,
                    start,
                    2,
                    b"",
                    &ExploreOptions {
                        cancel: Some(ctx.cancel.clone()),
                        ..ExploreOptions::default()
                    },
                )
                .visited()
            }) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut completed_ok = 0u64;
        for t in tickets {
            if t.wait().is_ok() {
                completed_ok += 1;
            }
        }

        // The counters lag ticket resolution by a few instructions; poll
        // until the books balance.
        let mut failures = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let conserved = loop {
            let c = rt.counts();
            if c.submitted == c.admitted + c.shed_total() && c.admitted == c.drained() {
                break true;
            }
            if std::time::Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let counts = rt.counts();
        if !conserved {
            failures.push(format!(
                "serve counters never conserved: {counts:?} (locally observed shed={shed})"
            ));
        }
        if counts.submitted != self.queries as u64 {
            failures.push(format!(
                "submitted {} != {} offered",
                counts.submitted, self.queries
            ));
        }
        if completed_ok != counts.completed {
            failures.push(format!(
                "{completed_ok} tickets resolved Ok but {} queries completed",
                counts.completed
            ));
        }
        let late_starts = started_expired.load(Ordering::Relaxed);
        if late_starts > 0 {
            failures.push(format!(
                "{late_starts} queries started running after their deadline expired"
            ));
        }
        rt.shutdown();
        let mut run = ChaosRun::capture(&fabric, "", CAPTURE_TIMEOUT);
        run.failures = failures;
        cluster.shutdown();
        run
    }

    fn check(&self, _reference: &ChaosRun, _faulty: &ChaosRun) -> Vec<String> {
        // The invariants are intra-run (conservation, deadline safety),
        // checked during `run`; timing makes cross-run equality moot.
        Vec::new()
    }

    fn deterministic(&self) -> bool {
        false
    }
}

/// Crash a machine while the recovery agents are running, with partition
/// windows swallowing protocol traffic mid-recovery, and require the §6
/// protocol to converge anyway: the victim's cells must come back
/// readable on survivors, with the exact values written before the
/// crash. Heartbeat pacing makes the traffic nondeterministic, so no log
/// equality is asserted.
#[derive(Debug, Clone)]
pub struct PartitionHeal {
    /// Cluster size.
    pub machines: usize,
    /// Cells written (and verified after recovery).
    pub cells: u64,
    /// Machine the plan's `Trigger::Mark(1)` crash targets.
    pub victim: u16,
}

impl PartitionHeal {
    /// A small instance: 4 machines, 120 cells, machine 2 crashes.
    pub fn small() -> Self {
        PartitionHeal {
            machines: 4,
            cells: 120,
            victim: 2,
        }
    }
}

impl ChaosWorkload for PartitionHeal {
    fn name(&self) -> &str {
        "partition-heal"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            call_timeout: Duration::from_millis(200),
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        for i in 0..self.cells {
            cloud
                .node(0)
                .put(i, format!("v{i}").as_bytes())
                .expect("seed cell");
        }
        cloud.backup_all().expect("backup trunks to TFS");
        fabric.chaos_arm(true);

        let mut failures = Vec::new();
        let mut recovered = Vec::new();
        let agents = RecoveryAgents::install(Arc::clone(&cloud), RecoveryConfig::default());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while RecoveryAgents::current_leader(&cloud).is_none() {
            if std::time::Instant::now() >= deadline {
                failures.push("no leader elected before the crash".into());
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Fire the crash (plans schedule `Mark(1)` → crash the victim);
        // the partition windows in the plan swallow protocol traffic on
        // survivor links while recovery runs.
        fabric.chaos_mark(1);
        if fabric.is_dead(MachineId(self.victim)) {
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                let done = agents.events().iter().any(|e| {
                    matches!(e, RecoveryEvent::MachineRecovered { failed, .. }
                             if *failed == MachineId(self.victim))
                });
                if done {
                    recovered.push(self.victim);
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    failures.push(format!(
                        "machine {} never recovered despite partitions healing",
                        self.victim
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        agents.stop();

        // All cells must eventually be readable from a survivor with
        // exact values: partition windows are finite (they heal once
        // their sequence range passes), so reads retry through them.
        let reader = (0..self.machines)
            .find(|&m| !fabric.is_dead(MachineId(m as u16)))
            .expect("at least one survivor");
        let mut digest = String::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        for i in 0..self.cells {
            loop {
                match cloud.node(reader).get(i) {
                    Ok(Some(v)) if v == format!("v{i}").into_bytes() => break,
                    other => {
                        if std::time::Instant::now() >= deadline {
                            failures.push(format!("cell {i} wrong after recovery: {other:?}"));
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            digest.push('.');
        }
        let mut run = ChaosRun::capture(&fabric, digest, CAPTURE_TIMEOUT);
        run.recovered = recovered;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec!["recovered data diverged from the fault-free run".into()]
        } else {
            Vec::new()
        }
    }

    fn deterministic(&self) -> bool {
        false
    }
}
