//! Chaos workloads: whole Trinity scenarios the harness runs under
//! seeded fault plans.
//!
//! Each workload builds its own cluster per run, *disarms* the injector
//! while loading data (setup traffic must not perturb the seeded fault
//! decisions), arms it for the measured phase, and captures the
//! injector's accounting with [`ChaosRun::capture`] before shutdown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use trinity_core::checkpoint::{resume_from_checkpoint, run_with_checkpoints, CheckpointConfig};
use trinity_core::online::{explore_via, ExploreOptions};
use trinity_core::recovery::{RecoveryAgents, RecoveryConfig, RecoveryEvent};
use trinity_core::{
    BspConfig, BspRunner, Explorer, IncrementalBsp, IncrementalConfig, MessagingMode, Mutation,
    MutationBatch, PageRankGather, StreamingIngest, Topology, TrinityCluster, TrinityConfig,
    VertexContext, VertexProgram,
};
use trinity_graph::{load_graph, Csr, LoadOptions};
use trinity_memcloud::{CloudConfig, MemoryCloud};
use trinity_net::{FaultPlan, MachineId};
use trinity_serve::{Priority, ServeConfig, ServeError, ServeRuntime};

use crate::runner::{ChaosRun, ChaosWorkload};

const CAPTURE_TIMEOUT: Duration = Duration::from_secs(10);

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Max-id propagation: the canonical deterministic BSP job. Every vertex
/// converges to the max id of its component, so the final states are a
/// pure function of the graph — any divergence under faults is a bug.
struct MaxValue;

impl VertexProgram for MaxValue {
    type State = u64;
    type Msg = u64;
    fn init(&self, id: u64, _view: &trinity_graph::NodeView<'_>) -> u64 {
        id
    }
    fn compute(&self, ctx: &mut VertexContext<'_, u64>, _id: u64, state: &mut u64, msgs: &[u64]) {
        let before = *state;
        for &m in msgs {
            *state = (*state).max(m);
        }
        if ctx.superstep() == 0 || *state > before {
            ctx.send_to_neighbors(*state);
        }
        ctx.vote_to_halt();
    }
    fn encode_msg(m: &u64) -> Vec<u8> {
        m.to_le_bytes().to_vec()
    }
    fn decode_msg(b: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
    fn encode_state(s: &u64) -> Vec<u8> {
        s.to_le_bytes().to_vec()
    }
    fn decode_state(b: &[u8]) -> Option<u64> {
        Some(u64::from_le_bytes(b.try_into().ok()?))
    }
}

fn ring(n: usize) -> Csr {
    let edges: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v + 1) % n as u64)).collect();
    Csr::undirected_from_edges(n, &edges, true)
}

fn bsp_cfg(limit: usize, compute_threads: usize) -> BspConfig {
    BspConfig {
        messaging: MessagingMode::Packed,
        hub_threshold: None,
        combine: false,
        max_supersteps: limit,
        compute_threads,
        ..BspConfig::default()
    }
}

/// A checkpointed MaxValue BSP job on a ring, with the §6.2 recovery
/// choreography built in: the job runs `stop_at` supersteps (firing a
/// chaos mark at every checkpoint boundary, where crash schedules keyed
/// on `Trigger::Mark(superstep)` strike), recovers any machine the plan
/// crashed (reload trunks from TFS, revive, resync the addressing
/// table), then resumes from the last checkpoint to termination. The
/// final states must equal the fault-free run's exactly.
#[derive(Debug, Clone)]
pub struct BspRingMax {
    /// Cluster size.
    pub machines: usize,
    /// Ring size (the job needs ~n/2 supersteps, so keep `stop_at` well
    /// below that).
    pub n: usize,
    /// Checkpoint cadence, in supersteps.
    pub every: usize,
    /// Supersteps before the recovery barrier (a multiple of `every`).
    pub stop_at: usize,
    /// Total superstep budget for the resumed job.
    pub limit: usize,
    /// Per-machine compute threads for the BSP pool (0 = default).
    pub compute_threads: usize,
}

impl BspRingMax {
    /// A small instance for tests: 3 machines, 30-vertex ring,
    /// checkpoints every 4 supersteps, recovery barrier at 8.
    pub fn small() -> Self {
        BspRingMax {
            machines: 3,
            n: 30,
            every: 4,
            stop_at: 8,
            limit: 64,
            compute_threads: 0,
        }
    }

    /// The small instance driven by an explicitly threaded pool, for
    /// showing fault injection still replays under the parallel driver.
    pub fn small_threaded(compute_threads: usize) -> Self {
        BspRingMax {
            compute_threads,
            ..Self::small()
        }
    }
}

impl ChaosWorkload for BspRingMax {
    fn name(&self) -> &str {
        "bsp-ring-max"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        let graph = Arc::new(
            load_graph(Arc::clone(&cloud), &ring(self.n), &LoadOptions::default())
                .expect("load ring graph"),
        );
        cloud.backup_all().expect("backup trunks to TFS");
        fabric.chaos_arm(true);

        let mark_fabric = Arc::clone(&fabric);
        let ckpt = CheckpointConfig::new(self.every, "chaos-bsp")
            .with_on_segment(move |superstep| mark_fabric.chaos_mark(superstep as u64));
        let mut failures = Vec::new();
        let runner = BspRunner::new(
            Arc::clone(&graph),
            MaxValue,
            bsp_cfg(self.every, self.compute_threads),
        );
        let partial =
            run_with_checkpoints(&runner, &bsp_cfg(self.stop_at, self.compute_threads), &ckpt)
                .expect("checkpointed BSP segment");
        drop(runner);

        // Recover whatever the schedule crashed: reload the dead
        // machine's trunks onto survivors from TFS (§6.1), revive it at
        // the fabric, and let it resync the new-epoch addressing table.
        let mut recovered = Vec::new();
        for m in 0..self.machines {
            if fabric.is_dead(MachineId(m as u16)) {
                cloud.recover(m).expect("recover crashed machine");
                fabric.revive(MachineId(m as u16));
                cloud.node(m).sync_table().expect("resync table");
                recovered.push(m as u16);
            }
        }

        let result = if partial.terminated {
            partial
        } else {
            let resumed = BspRunner::new(
                Arc::clone(&graph),
                MaxValue,
                bsp_cfg(self.every, self.compute_threads),
            );
            resume_from_checkpoint(&resumed, &bsp_cfg(self.limit, self.compute_threads), &ckpt)
                .expect("resume from checkpoint")
        };
        if !result.terminated {
            failures.push("BSP job did not terminate within its budget".into());
        }
        let mut states: Vec<(u64, u64)> = result.states.iter().map(|(k, v)| (*k, *v)).collect();
        states.sort_unstable();
        let outcome = states
            .iter()
            .map(|(k, v)| format!("{k}:{v}"))
            .collect::<Vec<_>>()
            .join(",");

        let mut run = ChaosRun::capture(&fabric, outcome, CAPTURE_TIMEOUT);
        run.recovered = recovered;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        let mut failures = Vec::new();
        if faulty.outcome != reference.outcome {
            failures.push("BSP final states diverged from the fault-free run".into());
        }
        let mut crashes = faulty.crashes();
        let mut recovered = faulty.recovered.clone();
        crashes.sort_unstable();
        recovered.sort_unstable();
        if crashes != recovered {
            failures.push(format!(
                "crashed machines {crashes:?} but recovered {recovered:?}"
            ));
        }
        failures
    }
}

/// Multi-hop neighborhood exploration from pinned start vertices on a
/// social graph. Benign faults (duplicates, delays, reordering) must not
/// change any per-hop frontier size: exploration handlers are
/// idempotent reads, and duplicate responses are discarded by
/// correlation matching.
#[derive(Debug, Clone)]
pub struct TraversalSearch {
    /// Cluster size.
    pub machines: usize,
    /// Social-graph vertex count.
    pub n: usize,
    /// Social-graph average degree.
    pub degree: usize,
    /// Hops per exploration.
    pub hops: usize,
    /// Start vertices (pinned, so runs are comparable).
    pub starts: Vec<u64>,
}

impl TraversalSearch {
    /// A small instance: 3 machines, 600 vertices, 2-hop explorations.
    pub fn small() -> Self {
        TraversalSearch {
            machines: 3,
            n: 600,
            degree: 6,
            hops: 2,
            starts: vec![1, 17, 101, 333],
        }
    }
}

impl ChaosWorkload for TraversalSearch {
    fn name(&self) -> &str {
        "traversal-search"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        let csr = trinity_graphgen::social(self.n, self.degree, 7);
        load_graph(Arc::clone(&cloud), &csr, &LoadOptions::default()).expect("load social graph");
        let explorer = Explorer::install(Arc::clone(&cloud));
        fabric.chaos_arm(true);

        let mut failures = Vec::new();
        let mut pieces = Vec::new();
        for &start in &self.starts {
            let r = explorer.explore(0, start, self.hops, b"");
            if r.deadline_exceeded || r.cancelled {
                failures.push(format!("exploration from {start} was cut short"));
            }
            pieces.push(format!("{start}:{:?}", r.per_hop));
        }
        let mut run = ChaosRun::capture(&fabric, pieces.join(";"), CAPTURE_TIMEOUT);
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec![format!(
                "traversal frontiers diverged: {} != {}",
                faulty.outcome, reference.outcome
            )]
        } else {
            Vec::new()
        }
    }
}

/// A slice of the serving workload: a proxy-tier [`ServeRuntime`] fed a
/// burst of deadline-bounded exploration queries while the plan drops
/// frames and crashes slaves at submission-indexed marks. The checked
/// invariants are conservation — every submitted query is admitted or
/// shed, and every admitted query completes, cancels, or expires in
/// queue — and that no query starts running after its deadline expired.
/// Timing makes the traffic nondeterministic, so no log equality is
/// asserted (`deterministic()` is false).
#[derive(Debug, Clone)]
pub struct ServeSlice {
    /// Slave count (plus one proxy and one client endpoint).
    pub slaves: usize,
    /// Social-graph vertex count.
    pub n: usize,
    /// Social-graph average degree.
    pub degree: usize,
    /// Queries to submit.
    pub queries: usize,
    /// Per-query deadline.
    pub deadline: Duration,
    /// Submission indices at which to fire `chaos_mark(1), (2), …` —
    /// where plans schedule `Trigger::Mark(k)` crashes.
    pub marks: Vec<usize>,
}

impl ServeSlice {
    /// A smoke-sized instance: 4 slaves, 2000 vertices, 120 queries,
    /// marks at 1/3 and 2/3 of the submission stream.
    pub fn small() -> Self {
        ServeSlice {
            slaves: 4,
            n: 2_000,
            degree: 8,
            queries: 120,
            deadline: Duration::from_millis(300),
            marks: vec![40, 80],
        }
    }
}

impl ChaosWorkload for ServeSlice {
    fn name(&self) -> &str {
        "serve-slice"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let mut cloud_cfg = CloudConfig::small(self.slaves);
        cloud_cfg.faults = faults;
        cloud_cfg.workers_per_machine = 2;
        let cluster = TrinityCluster::new(TrinityConfig {
            cloud: cloud_cfg,
            proxies: 1,
            clients: 1,
        });
        let fabric = Arc::clone(cluster.cloud().fabric());
        fabric.chaos_arm(false);
        let csr = trinity_graphgen::social(self.n, self.degree, 7);
        load_graph(Arc::clone(cluster.cloud()), &csr, &LoadOptions::default())
            .expect("load social graph");
        let _explorer = Explorer::install(Arc::clone(cluster.cloud()));
        fabric.chaos_arm(true);

        let proxy = cluster.proxy(0);
        let endpoint = Arc::clone(proxy.endpoint());
        let table = Arc::new(cluster.cloud().node(0).table());
        let slaves = cluster.slaves();
        let rt = ServeRuntime::start(
            proxy.endpoint(),
            ServeConfig {
                workers: 2,
                queue_capacity: [4, 6, 6, 8],
                default_deadline: Some(self.deadline),
            },
        );

        let started_expired = Arc::new(AtomicU64::new(0));
        let mut rng = 0x5EED_u64 | 1;
        let mut tickets = Vec::new();
        let mut shed = 0u64;
        for i in 0..self.queries {
            if let Some(k) = self.marks.iter().position(|&at| at == i) {
                fabric.chaos_mark(k as u64 + 1);
            }
            let start = xorshift(&mut rng) % self.n as u64;
            let class = if i % 2 == 0 {
                Priority::Interactive
            } else {
                Priority::Normal
            };
            let endpoint = Arc::clone(&endpoint);
            let table = Arc::clone(&table);
            let started_expired = Arc::clone(&started_expired);
            match rt.submit(class, Some(self.deadline), move |ctx| {
                if trinity_net::deadline_expired() {
                    started_expired.fetch_add(1, Ordering::Relaxed);
                }
                explore_via(
                    &endpoint,
                    &table,
                    slaves,
                    start,
                    2,
                    b"",
                    &ExploreOptions {
                        cancel: Some(ctx.cancel.clone()),
                        ..ExploreOptions::default()
                    },
                )
                .visited()
            }) {
                Ok(t) => tickets.push(t),
                Err(ServeError::Overloaded { .. }) => shed += 1,
                Err(e) => panic!("unexpected submit error: {e}"),
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let mut completed_ok = 0u64;
        for t in tickets {
            if t.wait().is_ok() {
                completed_ok += 1;
            }
        }

        // The counters lag ticket resolution by a few instructions; poll
        // until the books balance.
        let mut failures = Vec::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let conserved = loop {
            let c = rt.counts();
            if c.submitted == c.admitted + c.shed_total() && c.admitted == c.drained() {
                break true;
            }
            if std::time::Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        let counts = rt.counts();
        if !conserved {
            failures.push(format!(
                "serve counters never conserved: {counts:?} (locally observed shed={shed})"
            ));
        }
        if counts.submitted != self.queries as u64 {
            failures.push(format!(
                "submitted {} != {} offered",
                counts.submitted, self.queries
            ));
        }
        if completed_ok != counts.completed {
            failures.push(format!(
                "{completed_ok} tickets resolved Ok but {} queries completed",
                counts.completed
            ));
        }
        let late_starts = started_expired.load(Ordering::Relaxed);
        if late_starts > 0 {
            failures.push(format!(
                "{late_starts} queries started running after their deadline expired"
            ));
        }
        rt.shutdown();
        let mut run = ChaosRun::capture(&fabric, "", CAPTURE_TIMEOUT);
        run.failures = failures;
        cluster.shutdown();
        run
    }

    fn check(&self, _reference: &ChaosRun, _faulty: &ChaosRun) -> Vec<String> {
        // The invariants are intra-run (conservation, deadline safety),
        // checked during `run`; timing makes cross-run equality moot.
        Vec::new()
    }

    fn deterministic(&self) -> bool {
        false
    }
}

/// The remote-cell read cache under chaos: readers hammer cached remote
/// cells through non-owner nodes (both the single-cell and the batched
/// `multi_get` path) while a writer bumps versions, the plan drops
/// frames, and a victim machine crashes mid-storm and is recovered.
///
/// Dropped `INVALIDATE` traffic is allowed to leave *bounded* staleness
/// during the storm (the protocol degrades to version floors when an
/// invalidation times out), so in-storm checks are validity only: every
/// read must be a value the writer actually wrote to that exact cell.
/// After recovery the cluster must converge: a final write round with
/// the injector disarmed, caches cleared everywhere (a revived machine
/// has missed invalidations), and then every node must read the final
/// value of every cell. Timing makes the traffic nondeterministic, so no
/// fault-log equality is asserted.
#[derive(Debug, Clone)]
pub struct CachedRemoteReads {
    /// Cluster size.
    pub machines: usize,
    /// Cells written and read (spread across all machines).
    pub cells: u64,
    /// Write rounds per storm phase (one put per cell per round).
    pub rounds: u64,
    /// Machine the plan's `Trigger::Mark(1)` crash targets.
    pub victim: u16,
}

impl CachedRemoteReads {
    /// A small instance: 3 machines, 12 cells, machine 2 crashes between
    /// the two storm phases.
    pub fn small() -> Self {
        CachedRemoteReads {
            machines: 3,
            cells: 10,
            rounds: 5,
            victim: 2,
        }
    }

    fn value(id: u64, seq: u64) -> Vec<u8> {
        format!("c{id}s{seq}").into_bytes()
    }

    /// Validity: the bytes must be exactly one of the values ever written
    /// to `id` (seed `s0` through storm `s{max_seq}`).
    fn valid(id: u64, max_seq: u64, bytes: &[u8]) -> bool {
        let Ok(s) = std::str::from_utf8(bytes) else {
            return false;
        };
        let Some(rest) = s.strip_prefix(&format!("c{id}s")) else {
            return false;
        };
        rest.parse::<u64>().is_ok_and(|seq| seq <= max_seq)
    }
}

impl ChaosWorkload for CachedRemoteReads {
    fn name(&self) -> &str {
        "cached-remote-reads"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        use std::sync::atomic::AtomicBool;

        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            call_timeout: Duration::from_millis(100),
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        for i in 0..self.cells {
            cloud.node(0).put(i, &Self::value(i, 0)).expect("seed cell");
        }
        cloud.backup_all().expect("backup trunks to TFS");
        fabric.chaos_arm(true);

        let max_seq = 2 * self.rounds;
        let failures: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let mut recovered = Vec::new();
        std::thread::scope(|scope| {
            // Readers on every machine: most cells are remote to each, so
            // the traffic is cache hits, misses, and invalidations under
            // drops. Errors and misses are expected mid-storm (timeouts,
            // the crashed owner); only *invalid values* are failures.
            for r in 0..self.machines {
                let cloud = Arc::clone(&cloud);
                let stop = Arc::clone(&stop);
                let failures = Arc::clone(&failures);
                let cells = self.cells;
                scope.spawn(move || {
                    let mut round = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        round += 1;
                        if round.is_multiple_of(2) {
                            let ids: Vec<u64> = (0..cells).collect();
                            if let Ok(got) = cloud.node(r).multi_get(&ids) {
                                for (i, bytes) in got.into_iter().enumerate() {
                                    if let Some(b) = bytes {
                                        if !Self::valid(i as u64, max_seq, &b) {
                                            failures.lock().push(format!(
                                                "reader {r} multi_get cell {i}: invalid {b:?}"
                                            ));
                                        }
                                    }
                                }
                            }
                        } else {
                            for i in 0..cells {
                                if let Ok(Some(b)) = cloud.node(r).get(i) {
                                    if !Self::valid(i, max_seq, &b) {
                                        failures.lock().push(format!(
                                            "reader {r} get cell {i}: invalid value {b:?}"
                                        ));
                                    }
                                }
                            }
                        }
                    }
                });
            }
            // Storm phase 1: version churn under drops/delays.
            let writer = (self.victim as usize + 1) % self.machines;
            for round in 1..=self.rounds {
                for i in 0..self.cells {
                    // Timeouts are expected under a lossy plan; a put
                    // whose reply was dropped may still have committed —
                    // both outcomes are valid values for readers.
                    let _ = cloud.node(writer).put(i, &Self::value(i, round));
                }
            }
            // Crash the victim (plans schedule `Mark(1)`), keep the storm
            // running against the dead owner, then recover it (§6.1).
            fabric.chaos_mark(1);
            for round in self.rounds + 1..=max_seq {
                for i in 0..self.cells {
                    let _ = cloud.node(writer).put(i, &Self::value(i, round));
                }
            }
            for m in 0..self.machines {
                if fabric.is_dead(MachineId(m as u16)) {
                    cloud.recover(m).expect("recover crashed machine");
                    fabric.revive(MachineId(m as u16));
                    cloud.node(m).sync_table().expect("resync table");
                    recovered.push(m as u16);
                }
            }
            stop.store(true, Ordering::Relaxed);
        });
        let mut failures = Arc::try_unwrap(failures)
            .expect("reader threads joined")
            .into_inner();

        // Convergence: disarm, write one final round, drop every cached
        // copy (the revived machine missed invalidations; recovery
        // reloaded trunks with fresh version stamps), and require every
        // node to read the final values exactly.
        fabric.chaos_arm(false);
        let final_seq = max_seq + 1;
        for i in 0..self.cells {
            // Recovery may leave the victim's old trunks reloaded from
            // the seed backup; the final write must still land.
            if let Err(e) = cloud.node(0).put(i, &Self::value(i, final_seq)) {
                failures.push(format!("final write of cell {i} failed: {e}"));
            }
        }
        for m in 0..self.machines {
            cloud.node(m).clear_cache();
        }
        let mut digest = String::new();
        for i in 0..self.cells {
            let expect = Self::value(i, final_seq);
            let mut ok = true;
            for m in 0..self.machines {
                match cloud.node(m).get(i) {
                    Ok(Some(ref b)) if *b == expect => {}
                    other => {
                        ok = false;
                        failures.push(format!("node {m} cell {i} did not converge: {other:?}"));
                    }
                }
            }
            digest.push(if ok { '.' } else { 'X' });
        }
        let stats = cloud.cache_stats();
        if stats.hits == 0 {
            failures.push(format!("storm never exercised the cache: {stats:?}"));
        }
        let mut run = ChaosRun::capture(&fabric, digest, CAPTURE_TIMEOUT);
        run.recovered = recovered;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec![format!(
                "converged state diverged: {} != {}",
                faulty.outcome, reference.outcome
            )]
        } else {
            Vec::new()
        }
    }

    fn deterministic(&self) -> bool {
        false
    }
}

/// Crash a machine while the recovery agents are running, with partition
/// windows swallowing protocol traffic mid-recovery, and require the §6
/// protocol to converge anyway: the victim's cells must come back
/// readable on survivors, with the exact values written before the
/// crash. Heartbeat pacing makes the traffic nondeterministic, so no log
/// equality is asserted.
#[derive(Debug, Clone)]
pub struct PartitionHeal {
    /// Cluster size.
    pub machines: usize,
    /// Cells written (and verified after recovery).
    pub cells: u64,
    /// Machine the plan's `Trigger::Mark(1)` crash targets.
    pub victim: u16,
}

impl PartitionHeal {
    /// A small instance: 4 machines, 120 cells, machine 2 crashes.
    pub fn small() -> Self {
        PartitionHeal {
            machines: 4,
            cells: 120,
            victim: 2,
        }
    }
}

impl ChaosWorkload for PartitionHeal {
    fn name(&self) -> &str {
        "partition-heal"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            call_timeout: Duration::from_millis(200),
            ..CloudConfig::small(self.machines)
        }));
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        for i in 0..self.cells {
            cloud
                .node(0)
                .put(i, format!("v{i}").as_bytes())
                .expect("seed cell");
        }
        cloud.backup_all().expect("backup trunks to TFS");
        fabric.chaos_arm(true);

        let mut failures = Vec::new();
        let mut recovered = Vec::new();
        let agents = RecoveryAgents::install(Arc::clone(&cloud), RecoveryConfig::default());
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while RecoveryAgents::current_leader(&cloud).is_none() {
            if std::time::Instant::now() >= deadline {
                failures.push("no leader elected before the crash".into());
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }

        // Fire the crash (plans schedule `Mark(1)` → crash the victim);
        // the partition windows in the plan swallow protocol traffic on
        // survivor links while recovery runs.
        fabric.chaos_mark(1);
        if fabric.is_dead(MachineId(self.victim)) {
            let deadline = std::time::Instant::now() + Duration::from_secs(30);
            loop {
                let done = agents.events().iter().any(|e| {
                    matches!(e, RecoveryEvent::MachineRecovered { failed, .. }
                             if *failed == MachineId(self.victim))
                });
                if done {
                    recovered.push(self.victim);
                    break;
                }
                if std::time::Instant::now() >= deadline {
                    failures.push(format!(
                        "machine {} never recovered despite partitions healing",
                        self.victim
                    ));
                    break;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
        agents.stop();

        // All cells must eventually be readable from a survivor with
        // exact values: partition windows are finite (they heal once
        // their sequence range passes), so reads retry through them.
        let reader = (0..self.machines)
            .find(|&m| !fabric.is_dead(MachineId(m as u16)))
            .expect("at least one survivor");
        let mut digest = String::new();
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        for i in 0..self.cells {
            loop {
                match cloud.node(reader).get(i) {
                    Ok(Some(v)) if v == format!("v{i}").into_bytes() => break,
                    other => {
                        if std::time::Instant::now() >= deadline {
                            failures.push(format!("cell {i} wrong after recovery: {other:?}"));
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(5));
                    }
                }
            }
            digest.push('.');
        }
        let mut run = ChaosRun::capture(&fabric, digest, CAPTURE_TIMEOUT);
        run.recovered = recovered;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec!["recovered data diverged from the fault-free run".into()]
        } else {
            Vec::new()
        }
    }

    fn deterministic(&self) -> bool {
        false
    }
}

/// Online trunk migration under chaos: a trunk streams from its donor to
/// a standby recipient while writers hammer its cells and readers check
/// every value they see, and the plan crashes the donor, the recipient,
/// or the coordinator at a protocol phase (the engine's phase hook fires
/// `Trigger::Mark(phase)`, codes 1–6 = Begin..Flip).
///
/// Invariants, whatever the crash schedule:
///
/// * every value a reader observes was actually written to that cell
///   (no torn, cross-cell, or fabricated bytes — validity, not
///   freshness, mid-storm);
/// * if no machine died, no acknowledged write may be lost — the value
///   of every stormed cell is at least the writer's last ack, whether
///   the migration committed or aborted;
/// * the cluster agrees on the trunk's owner afterwards: every replica
///   routes it exactly where the TFS primary does (a stale-epoch server
///   would diverge here), and that owner is the donor (clean abort) or
///   the recipient (commit) — nothing else;
/// * after recovering any scheduled crash, a final disarmed write round
///   converges exactly on every machine.
///
/// Timing makes the traffic nondeterministic, so no fault-log equality
/// is asserted.
#[derive(Debug, Clone)]
pub struct MigrationStorm {
    /// Initially live machines (a standby recipient is added on top).
    pub machines: usize,
    /// Cells seeded across the whole cloud (stormed cells come on top).
    pub cells: u64,
    /// Machine whose first trunk migrates.
    pub donor: u16,
    /// Migration target (the standby machine).
    pub recipient: u16,
    /// Machine driving the protocol (`MigrationConfig::coordinator`).
    pub coordinator: u16,
}

impl MigrationStorm {
    /// A small instance: 3 live machines plus a standby; machine 0
    /// donates a trunk to machine 3, machine 1 coordinates.
    pub fn small() -> Self {
        MigrationStorm {
            machines: 3,
            cells: 18,
            donor: 0,
            recipient: 3,
            coordinator: 1,
        }
    }

    fn value(id: u64, seq: u64) -> Vec<u8> {
        format!("c{id}s{seq}").into_bytes()
    }

    /// Validity: the bytes must be *some* value written to exactly this
    /// cell (the storm length is open-ended, so any sequence parses).
    fn valid(id: u64, bytes: &[u8]) -> bool {
        std::str::from_utf8(bytes)
            .ok()
            .and_then(|s| s.strip_prefix(&format!("c{id}s")))
            .is_some_and(|rest| rest.parse::<u64>().is_ok())
    }

    fn seq_of(id: u64, bytes: &[u8]) -> Option<u64> {
        std::str::from_utf8(bytes)
            .ok()
            .and_then(|s| s.strip_prefix(&format!("c{id}s")))
            .and_then(|rest| rest.parse().ok())
    }
}

impl ChaosWorkload for MigrationStorm {
    fn name(&self) -> &str {
        "migration-storm"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        use std::collections::{BTreeSet, HashMap};
        use std::sync::atomic::AtomicBool;

        use trinity_elastic::{MigrationConfig, MigrationEngine};

        let fault_free = faults.is_none();
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            standby_machines: 1,
            call_timeout: Duration::from_millis(100),
            ..CloudConfig::small(self.machines)
        }));
        let total = cloud.machines();
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);
        let table = cloud.node(0).table();
        let trunk = table.trunks_of(MachineId(self.donor))[0];
        // The stormed cells all live in the migrating trunk; the rest of
        // the seed is spread over the cloud as background state.
        let mig_ids: Vec<u64> = (0u64..)
            .filter(|&i| table.trunk_of(i) == trunk)
            .take(8)
            .collect();
        let all_ids: Vec<u64> = {
            let mut s: BTreeSet<u64> = (0..self.cells).collect();
            s.extend(&mig_ids);
            s.into_iter().collect()
        };
        for &i in &all_ids {
            cloud.node(0).put(i, &Self::value(i, 0)).expect("seed cell");
        }
        cloud.backup_all().expect("backup trunks to TFS");
        fabric.chaos_arm(true);

        let failures: Arc<parking_lot::Mutex<Vec<String>>> = Arc::default();
        let stop = Arc::new(AtomicBool::new(false));
        let acked: Arc<parking_lot::Mutex<HashMap<u64, u64>>> = Arc::default();
        let mut recovered = Vec::new();
        let mut mig_ok = false;
        std::thread::scope(|scope| {
            // Readers on every machine (standby included): errors and
            // misses are expected mid-storm; only invalid bytes fail.
            for r in 0..total {
                let cloud = Arc::clone(&cloud);
                let fabric = Arc::clone(&fabric);
                let stop = Arc::clone(&stop);
                let failures = Arc::clone(&failures);
                let all_ids = all_ids.clone();
                scope.spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        if fabric.is_dead(MachineId(r as u16)) {
                            std::thread::sleep(Duration::from_millis(5));
                            continue;
                        }
                        for &i in &all_ids {
                            if let Ok(Some(b)) = cloud.node(r).get(i) {
                                if !Self::valid(i, &b) {
                                    failures
                                        .lock()
                                        .push(format!("reader {r} cell {i}: invalid {b:?}"));
                                }
                            }
                        }
                    }
                });
            }
            // One writer hammers the migrating trunk through whichever
            // machine is currently alive, recording the last acknowledged
            // sequence per cell. Failed puts are expected under crashes
            // and timeouts; an *acked* put must never be lost.
            let writer = {
                let cloud = Arc::clone(&cloud);
                let fabric = Arc::clone(&fabric);
                let stop = Arc::clone(&stop);
                let acked = Arc::clone(&acked);
                let mig_ids = mig_ids.clone();
                scope.spawn(move || {
                    let mut seq = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        seq += 1;
                        let Some(via) = (0..total).find(|&m| !fabric.is_dead(MachineId(m as u16)))
                        else {
                            continue;
                        };
                        for &i in &mig_ids {
                            if cloud.node(via).put(i, &Self::value(i, seq)).is_ok() {
                                acked.lock().insert(i, seq);
                            }
                        }
                    }
                    seq
                })
            };
            // The migration itself, phase-marked so plans can crash the
            // donor/recipient/coordinator at any protocol step.
            let engine = MigrationEngine::new(MigrationConfig {
                chunk_cells: 4,
                coordinator: Some(self.coordinator),
                ..MigrationConfig::default()
            })
            .with_phase_hook({
                let fabric = Arc::clone(&fabric);
                move |phase, _| fabric.chaos_mark(phase.mark())
            });
            let res = engine.migrate_trunk(&cloud, trunk, MachineId(self.recipient));
            // Let the storm keep running against the post-migration (or
            // post-abort) cloud for a moment before recovery.
            std::thread::sleep(Duration::from_millis(50));
            for m in 0..total {
                if fabric.is_dead(MachineId(m as u16)) {
                    cloud.recover(m).expect("recover crashed machine");
                    cloud.revive_machine(m).expect("revive crashed machine");
                    recovered.push(m as u16);
                }
            }
            stop.store(true, Ordering::Relaxed);
            let _ = writer.join().expect("writer thread");
            match res {
                Ok(report) => {
                    mig_ok = true;
                    if fault_free && report.cells_moved == 0 {
                        failures
                            .lock()
                            .push("fault-free migration moved no cells".into());
                    }
                }
                Err(e) => {
                    if fault_free {
                        failures
                            .lock()
                            .push(format!("fault-free migration failed: {e}"));
                    }
                }
            }
        });
        let mut failures = Arc::try_unwrap(failures)
            .expect("storm threads joined")
            .into_inner();
        fabric.chaos_arm(false);

        // Epoch agreement: every replica must route the trunk exactly
        // where the TFS primary does, and the owner must be the donor
        // (abort) or the recipient (commit) — a stale-epoch server or a
        // half-committed flip shows up here.
        let primary = cloud
            .tfs()
            .read(trinity_memcloud::TFS_TABLE_PATH)
            .ok()
            .and_then(|b| trinity_memcloud::AddressingTable::decode(&b))
            .expect("TFS primary table");
        let owner = primary.machine_for(trunk);
        if owner != MachineId(self.donor) && owner != MachineId(self.recipient) {
            failures.push(format!("trunk {trunk} owned by third party {owner:?}"));
        }
        if mig_ok && owner != MachineId(self.recipient) && recovered.is_empty() {
            failures.push(format!(
                "migration reported success but the primary routes trunk {trunk} to {owner:?}"
            ));
        }
        for m in 0..total {
            let _ = cloud.node(m).sync_table();
            let routed = cloud.node(m).table().machine_for(trunk);
            if routed != owner {
                failures.push(format!(
                    "machine {m} routes trunk {trunk} to {routed:?}, primary says {owner:?}"
                ));
            }
        }

        // No machine died → no excuse: every stormed cell must hold at
        // least the writer's last acknowledged sequence, wherever the
        // trunk ended up.
        if recovered.is_empty() {
            for m in 0..total {
                cloud.node(m).clear_cache();
            }
            let acked = acked.lock();
            for &i in &mig_ids {
                let Some(&floor) = acked.get(&i) else {
                    continue;
                };
                match cloud.node(0).get(i) {
                    Ok(Some(ref b)) => match Self::seq_of(i, b) {
                        Some(seq) if seq >= floor => {}
                        got => failures.push(format!(
                            "cell {i}: acked s{floor} but the cloud holds {got:?} — lost write"
                        )),
                    },
                    other => failures.push(format!(
                        "cell {i}: acked s{floor} but the read came back {other:?}"
                    )),
                }
            }
        }

        // Convergence: one disarmed write round, caches dropped, every
        // node must read the final value of every cell exactly.
        let final_seq = u64::MAX;
        for &i in &all_ids {
            if let Err(e) = cloud.node(0).put(i, &Self::value(i, final_seq)) {
                failures.push(format!("final write of cell {i} failed: {e}"));
            }
        }
        for m in 0..total {
            cloud.node(m).clear_cache();
        }
        let mut digest = String::new();
        for &i in &all_ids {
            let expect = Self::value(i, final_seq);
            let mut ok = true;
            for m in 0..total {
                match cloud.node(m).get(i) {
                    Ok(Some(ref b)) if *b == expect => {}
                    other => {
                        ok = false;
                        failures.push(format!("node {m} cell {i} did not converge: {other:?}"));
                    }
                }
            }
            digest.push(if ok { '.' } else { 'X' });
        }
        let mut run = ChaosRun::capture(&fabric, digest, CAPTURE_TIMEOUT);
        run.recovered = recovered;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec![format!(
                "converged state diverged: {} != {}",
                faulty.outcome, reference.outcome
            )]
        } else {
            Vec::new()
        }
    }

    fn deterministic(&self) -> bool {
        false
    }
}

/// A streaming writer commits a deterministic stream of mutation batches
/// through the mini-transaction ingest while the fault plan crashes and
/// revives machines mid-batch — the submitting machine, the owner of a
/// touched trunk, or the leader (machine 0, which answers table syncs)
/// at any `Trigger::Mark(batch_index)` point. An [`IncrementalBsp`]
/// engine consumes every committed batch as it lands.
///
/// A crash here is a *network* death (the fabric stops routing; memory
/// is frozen, not lost), so an acked batch must never be rolled back.
/// The storm retries each batch until it commits, reviving casualties
/// itself when a dead owner would otherwise block the stream forever.
///
/// Invariants, checked after a final disarmed batch:
///
/// * the incremental engine's values are **bit-identical**, layer by
///   layer, to a from-scratch recompute on the same topology — chaos
///   delivery (aborts, duplicate no-op retries, crashes between
///   batches) must never desynchronize incremental state;
/// * the mutation log replayed over the seed graph equals the engine's
///   topology mirror *and* the store read back cell by cell — every
///   acked commit is durable and nothing half-applied is visible;
/// * a fault-free run commits every batch without reviving anyone.
///
/// Timing makes the traffic nondeterministic, so no fault-log equality
/// is asserted.
#[derive(Debug, Clone)]
pub struct MutationStorm {
    /// Live machines in the cloud.
    pub machines: usize,
    /// Seed ring size (vertex ids `0..vertices`; batches may add ids up
    /// to `vertices + 8`).
    pub vertices: u64,
    /// Mutation batches in the storm (chaos mark `k` fires before batch
    /// `k` commits).
    pub batches: u64,
    /// Mutations per batch.
    pub batch_size: usize,
    /// Preferred submission machine (plans crash it to exercise the
    /// writer path; the storm fails over to the next live machine).
    pub writer: u16,
    /// Seed for the deterministic mutation stream (independent of the
    /// fault plan's seed).
    pub seed: u64,
}

impl MutationStorm {
    /// A small instance: 3 machines, a 12-vertex seed ring, 10 batches
    /// of 4 mutations submitted through machine 1.
    pub fn small() -> Self {
        MutationStorm {
            machines: 3,
            vertices: 12,
            batches: 10,
            batch_size: 4,
            writer: 1,
            seed: 0x5EED_CA57,
        }
    }

    fn gen_batch(&self, rng: &mut u64) -> MutationBatch {
        let n = self.vertices;
        let mut muts = Vec::with_capacity(self.batch_size);
        for _ in 0..self.batch_size {
            let kind = xorshift(rng) % 10;
            let a = xorshift(rng) % (n + 8);
            let b = xorshift(rng) % (n + 8);
            muts.push(match kind {
                0 => Mutation::AddVertex(n + xorshift(rng) % 8),
                1 => Mutation::RemoveVertex(a),
                2 | 3 => Mutation::RemoveEdge(a, b),
                _ => Mutation::AddEdge(a, b),
            });
        }
        MutationBatch::new(muts)
    }
}

impl ChaosWorkload for MutationStorm {
    fn name(&self) -> &str {
        "mutation-storm"
    }

    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
        use trinity_core::minitx::TxService;
        use trinity_graph::NodeRecord;

        let fault_free = faults.is_none();
        let cloud = Arc::new(MemoryCloud::new(CloudConfig {
            faults,
            call_timeout: Duration::from_millis(100),
            ..CloudConfig::small(self.machines)
        }));
        let total = cloud.machines();
        let fabric = Arc::clone(cloud.fabric());
        fabric.chaos_arm(false);

        // Seed: a directed ring with in-links, written disarmed.
        let n = self.vertices;
        let mut seed_topo = Topology::new();
        for v in 0..n {
            let rec = NodeRecord {
                attrs: Vec::new(),
                outs: vec![(v + 1) % n],
                ins: Some(vec![(v + n - 1) % n]),
            };
            cloud.node(0).put(v, &rec.encode()).expect("seed vertex");
            seed_topo.add_edge(v, (v + 1) % n);
        }
        cloud.backup_all().expect("backup trunks to TFS");
        let svc = TxService::install(Arc::clone(&cloud));
        let ingest = StreamingIngest::new(Arc::clone(&cloud), svc, self.writer as usize);
        let mut engine = IncrementalBsp::new(
            PageRankGather::default(),
            seed_topo.clone(),
            IncrementalConfig::default(),
        );

        let mut failures: Vec<String> = Vec::new();
        let mut revived: Vec<u16> = Vec::new();
        fabric.chaos_arm(true);
        let mut rng = self.seed | 1;
        'storm: for k in 0..self.batches {
            fabric.chaos_mark(k);
            let batch = self.gen_batch(&mut rng);
            let mut attempts = 0usize;
            let committed = loop {
                let via = (0..total)
                    .map(|i| (self.writer as usize + i) % total)
                    .find(|&m| !fabric.is_dead(MachineId(m as u16)));
                match via.map(|v| ingest.commit_batch(v, &batch)) {
                    Some(Ok(c)) => break c,
                    Some(Err(e)) if attempts >= 400 => {
                        failures.push(format!("batch {k} never committed: {e}"));
                        break 'storm;
                    }
                    _ => {}
                }
                attempts += 1;
                // A dead trunk owner blocks commits, and a stalled
                // writer can never reach the plan's later revive marks;
                // bring casualties back (network death froze their
                // memory — revival is legitimate, not a restore).
                if attempts.is_multiple_of(40) {
                    for m in 0..total {
                        if fabric.is_dead(MachineId(m as u16)) && cloud.revive_machine(m).is_ok() {
                            revived.push(m as u16);
                        }
                    }
                }
                std::thread::sleep(Duration::from_millis(2));
            };
            engine.apply_batch(&committed);
        }
        // Revive remaining casualties, then prove the pipeline is still
        // live with one disarmed batch.
        for m in 0..total {
            if fabric.is_dead(MachineId(m as u16)) {
                cloud.revive_machine(m).expect("revive casualty");
                revived.push(m as u16);
            }
        }
        fabric.chaos_arm(false);
        let fin = MutationBatch::new(vec![
            Mutation::AddEdge(0, n / 2),
            Mutation::AddVertex(n + 7),
        ]);
        match ingest.commit_batch(self.writer as usize, &fin) {
            Ok(c) => {
                engine.apply_batch(&c);
            }
            Err(e) => failures.push(format!("disarmed final batch failed: {e}")),
        }
        if fault_free && !revived.is_empty() {
            failures.push(format!("fault-free run revived machines {revived:?}"));
        }

        // Incremental must equal a from-scratch recompute bit for bit,
        // every layer.
        let fresh = IncrementalBsp::new(
            PageRankGather::default(),
            engine.topology().clone(),
            IncrementalConfig::default(),
        );
        if fresh.num_layers() != engine.num_layers() {
            failures.push(format!(
                "layer count diverged: incremental {} vs fresh {}",
                engine.num_layers(),
                fresh.num_layers()
            ));
        } else {
            for l in 0..fresh.num_layers() {
                let (a, b) = (
                    engine.layer_values(l).expect("incremental layer"),
                    fresh.layer_values(l).expect("fresh layer"),
                );
                if a.len() != b.len() || a.iter().zip(b).any(|(x, y)| x.to_bits() != y.to_bits()) {
                    failures.push(format!(
                        "incremental layer {l} diverges from full recompute"
                    ));
                }
            }
        }

        // Durability and atomicity: log replay over the seed equals the
        // engine's mirror and the store read-back, cell by cell.
        let replayed = ingest.log().replay_onto(seed_topo);
        if &replayed != engine.topology() {
            failures.push("engine topology mirror != mutation-log replay".into());
        }
        for m in 0..total {
            cloud.node(m).clear_cache();
        }
        let mut store_topo = Topology::new();
        for v in 0..n + 8 {
            match cloud.node(0).get(v) {
                Ok(Some(bytes)) => match NodeRecord::decode(&bytes) {
                    Ok(rec) => {
                        store_topo.add_vertex(v);
                        for w in rec.outs {
                            store_topo.add_edge(v, w);
                        }
                    }
                    Err(e) => failures.push(format!("cell {v}: undecodable record: {e}")),
                },
                Ok(None) => {}
                Err(e) => failures.push(format!("cell {v}: post-storm read failed: {e}")),
            }
        }
        if store_topo != replayed {
            failures.push(format!(
                "store read-back != log replay ({} vs {} vertices) — lost or split batch",
                store_topo.len(),
                replayed.len()
            ));
        }

        // Outcome digest: the converged values and topology. The batch
        // stream is deterministic and every batch must commit, so this
        // matches the fault-free run even though timing does not.
        fn fnv(h: &mut u64, x: u64) {
            *h ^= x;
            *h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (id, v) in engine.values() {
            fnv(&mut h, id);
            fnv(&mut h, v.to_bits());
        }
        let ids: Vec<u64> = engine.topology().ids().collect();
        for v in ids {
            fnv(&mut h, v);
            for &w in engine.topology().outs(v) {
                fnv(&mut h, w);
            }
        }
        let digest = format!("{h:016x}");
        let mut run = ChaosRun::capture(&fabric, digest, CAPTURE_TIMEOUT);
        run.recovered = revived;
        run.failures = failures;
        cloud.shutdown();
        run
    }

    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        if faulty.outcome != reference.outcome {
            vec![format!(
                "converged values diverged: {} != {}",
                faulty.outcome, reference.outcome
            )]
        } else {
            Vec::new()
        }
    }

    fn deterministic(&self) -> bool {
        false
    }
}
