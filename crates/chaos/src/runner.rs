//! The chaos harness: run a workload under a seeded fault plan, judge
//! the result against a fault-free reference, replay recorded schedules,
//! and shrink failing ones.

use std::time::Duration;

use trinity_net::{Fabric, FaultKind, FaultLog, FaultPlan, FaultRecord};

/// What one execution of a workload produced, plus the injector's
/// post-quiescence accounting.
#[derive(Debug, Clone)]
pub struct ChaosRun {
    /// Workload-defined result fingerprint (e.g. sorted BSP states).
    /// Deterministic workloads must produce the same outcome for the
    /// same inputs regardless of benign faults.
    pub outcome: String,
    /// Every fault the injector recorded during the run.
    pub log: FaultLog,
    /// Envelopes still parked inside the injector after quiescence
    /// (must be 0: nothing may leak in delay timers or reorder slots).
    pub leaked: u64,
    /// Frame-ledger imbalance after quiescence:
    /// `(entered + duplicated) - (consumed + swallowed)`. Must be 0.
    pub imbalance: i64,
    /// Machines the workload recovered (§6 protocol) after scheduled
    /// crashes. Every entry must correspond to a crash in `log`.
    pub recovered: Vec<u16>,
    /// Invariant violations the workload itself observed while running
    /// (e.g. serve-counter conservation, a query returning success past
    /// its deadline).
    pub failures: Vec<String>,
    /// Serialized flight-recorder dump captured from the fabric's
    /// registry before shutdown. Stashed here (not dumped lazily)
    /// because the fabric is gone by the time the run is judged; the
    /// runner writes it to disk only when the run fails.
    pub flight: Option<String>,
}

impl ChaosRun {
    /// Capture a run's accounting from its fabric: quiesce the injector,
    /// wait for the frame ledger to balance, and snapshot the fault log.
    /// Call after the workload's traffic is finished, before shutdown.
    pub fn capture(fabric: &Fabric, outcome: impl Into<String>, timeout: Duration) -> ChaosRun {
        let quiesced = fabric.chaos_quiesce(timeout);
        let deadline = std::time::Instant::now() + timeout;
        let mut imbalance;
        loop {
            let (dup, swallowed) = match fabric.chaos() {
                Some(c) => (c.duplicated_frames(), c.swallowed_frames()),
                None => (0, 0),
            };
            let total = fabric.total_stats();
            imbalance = (total.entered_frames() + dup) as i64
                - (total.consumed_frames() + swallowed) as i64;
            if imbalance == 0 || std::time::Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        let leaked = if quiesced {
            0
        } else {
            fabric.chaos().map_or(0, |c| c.pending())
        };
        // Close out the final flight window and serialize the dump while
        // the registry is still reachable.
        fabric.obs().flight_tick();
        let flight = Some(fabric.obs().flight_dump("chaos run capture").to_string());
        ChaosRun {
            outcome: outcome.into(),
            log: fabric.fault_log(),
            leaked,
            imbalance,
            recovered: Vec::new(),
            failures: Vec::new(),
            flight,
        }
    }

    /// Crash records in this run's log, as `(machine, index)` pairs.
    pub fn crashes(&self) -> Vec<u16> {
        self.log
            .records
            .iter()
            .filter(|r| matches!(r.kind, FaultKind::Crash(_)))
            .map(|r| r.src)
            .collect()
    }
}

/// A workload the chaos harness can execute under an arbitrary fault
/// plan. Implementations build their own cluster per run (so runs are
/// independent), disarm the injector during setup, and arm it for the
/// measured phase.
pub trait ChaosWorkload {
    /// Short name for reports.
    fn name(&self) -> &str;

    /// Execute once. `faults: None` is the fault-free reference run.
    fn run(&self, faults: Option<FaultPlan>) -> ChaosRun;

    /// Workload-specific invariants comparing the faulty run to the
    /// reference (e.g. result equality). Return one message per
    /// violation; empty means the run passed.
    fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String>;

    /// Whether this workload's fault log is expected to be identical
    /// across same-seed runs (false for timing-driven workloads such as
    /// the serving slice or heartbeat-paced recovery).
    fn deterministic(&self) -> bool {
        true
    }
}

/// One judged chaos execution.
#[derive(Debug)]
pub struct ChaosReport {
    /// Seed the plan ran with (0 for replays).
    pub seed: u64,
    /// The fault-free reference run.
    pub reference: ChaosRun,
    /// The run under faults.
    pub faulty: ChaosRun,
    /// Every violated invariant; empty means the run passed.
    pub failures: Vec<String>,
    /// Where the faulty run's flight-recorder dump was written, when the
    /// run failed and a dump was captured.
    pub flight_path: Option<std::path::PathBuf>,
}

impl ChaosReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Destination for a failing run's flight dump:
/// `$TRINITY_FLIGHT_DIR` (default `results/flight`) /
/// `<workload>-seed<seed>.flight.json`.
fn flight_artifact_path(workload: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::var("TRINITY_FLIGHT_DIR").unwrap_or_else(|_| "results/flight".to_string());
    std::path::PathBuf::from(dir).join(format!("{workload}-seed{seed}.flight.json"))
}

/// Write a failing run's stashed flight dump to its artifact path.
/// Best-effort: a failed write is reported on stderr, never panics —
/// the postmortem artifact must not mask the original failure.
fn write_flight_artifact(
    workload: &str,
    seed: u64,
    faulty: &ChaosRun,
) -> Option<std::path::PathBuf> {
    let text = faulty.flight.as_ref()?;
    let path = flight_artifact_path(workload, seed);
    if let Some(parent) = path.parent() {
        let _ = std::fs::create_dir_all(parent);
    }
    match std::fs::write(&path, text) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!(
                "trinity-chaos: flight dump to {} failed: {e}",
                path.display()
            );
            None
        }
    }
}

/// Drives a [`ChaosWorkload`] under seeded instances of a template
/// [`FaultPlan`], judges each run, replays recorded logs, and shrinks
/// failing schedules to minimal fault lists.
pub struct ChaosRunner<W: ChaosWorkload> {
    workload: W,
    template: FaultPlan,
}

impl<W: ChaosWorkload> ChaosRunner<W> {
    /// A runner applying `template` (reseeded per run) to `workload`.
    pub fn new(workload: W, template: FaultPlan) -> Self {
        ChaosRunner { workload, template }
    }

    /// The workload under test.
    pub fn workload(&self) -> &W {
        &self.workload
    }

    /// Run the workload fault-free and under `template` seeded with
    /// `seed`, and judge the faulty run.
    pub fn run(&self, seed: u64) -> ChaosReport {
        let reference = self.workload.run(None);
        let plan = self.template.clone().with_seed(seed);
        let faulty = self.workload.run(Some(plan.clone()));
        let failures = self.judge(&plan, &reference, &faulty);
        let flight_path = if failures.is_empty() {
            None
        } else {
            write_flight_artifact(self.workload.name(), seed, &faulty)
        };
        ChaosReport {
            seed,
            reference,
            faulty,
            failures,
            flight_path,
        }
    }

    /// Re-apply a recorded fault log verbatim and judge the result. A
    /// failing seed's log must fail the same way when replayed.
    pub fn replay(&self, log: &FaultLog) -> ChaosReport {
        let reference = self.workload.run(None);
        let plan = FaultPlan::replay(log);
        let faulty = self.workload.run(Some(plan.clone()));
        let failures = self.judge(&plan, &reference, &faulty);
        let flight_path = if failures.is_empty() {
            None
        } else {
            write_flight_artifact(self.workload.name(), 0, &faulty)
        };
        ChaosReport {
            seed: 0,
            reference,
            faulty,
            failures,
            flight_path,
        }
    }

    /// Shrink a failing fault log to a smaller list that still fails, by
    /// delta-debugging over the record list (repeatedly replaying
    /// complements of ever-finer chunks). Returns the shrunk log and the
    /// number of replays spent; `max_runs` caps the search. If `log`
    /// does not actually fail, it is returned unchanged.
    pub fn shrink(&self, log: &FaultLog, max_runs: usize) -> (FaultLog, usize) {
        let reference = self.workload.run(None);
        let mut runs = 0usize;
        let still_fails = |records: &[FaultRecord]| -> bool {
            let sub = FaultLog {
                records: records.to_vec(),
            };
            let plan = FaultPlan::replay(&sub);
            let faulty = self.workload.run(Some(plan.clone()));
            !self.judge(&plan, &reference, &faulty).is_empty()
        };
        let mut current = log.canonical();
        runs += 1;
        if current.is_empty() || !still_fails(&current) {
            return (FaultLog { records: current }, runs);
        }
        let mut n = 2usize;
        while current.len() >= 2 && runs < max_runs {
            let chunk = current.len().div_ceil(n);
            let mut reduced = false;
            let mut at = 0usize;
            while at < current.len() && runs < max_runs {
                // Try the complement of the chunk starting at `at`.
                let end = (at + chunk).min(current.len());
                let mut candidate = current[..at].to_vec();
                candidate.extend_from_slice(&current[end..]);
                runs += 1;
                if !candidate.is_empty() && still_fails(&candidate) {
                    current = candidate;
                    n = n.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                at = end;
            }
            if !reduced {
                if n >= current.len() {
                    break;
                }
                n = (n * 2).min(current.len());
            }
        }
        (FaultLog { records: current }, runs)
    }

    /// The harness-level invariants, plus the workload's own checks.
    fn judge(&self, plan: &FaultPlan, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
        let mut failures = Vec::new();
        if faulty.leaked != 0 {
            failures.push(format!(
                "{} envelopes leaked inside the injector after quiescence",
                faulty.leaked
            ));
        }
        if faulty.imbalance != 0 {
            failures.push(format!(
                "frame ledger off by {} after quiescence",
                faulty.imbalance
            ));
        }
        // Crash/revive records must correspond to scheduled events (for
        // replays, `FaultPlan::replay` reconstructed the schedule from
        // the log, so this also validates replayed records).
        let scheduled = plan.schedule.len();
        let recorded = faulty
            .log
            .records
            .iter()
            .filter(|r| matches!(r.kind, FaultKind::Crash(_) | FaultKind::Revive(_)))
            .count();
        if recorded > scheduled {
            failures.push(format!(
                "{recorded} crash/revive faults recorded but only {scheduled} were scheduled"
            ));
        }
        // Machines the workload recovered must have actually crashed.
        let crashes = faulty.crashes();
        for m in &faulty.recovered {
            if !crashes.contains(m) {
                failures.push(format!("machine {m} recovered without a recorded crash"));
            }
        }
        failures.extend(faulty.failures.iter().cloned());
        failures.extend(self.workload.check(reference, faulty));
        failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_net::FaultKind;

    fn rec(src: u16, dst: u16, seq: u64) -> FaultRecord {
        FaultRecord {
            src,
            dst,
            seq,
            kind: FaultKind::Drop,
        }
    }

    /// A workload that "fails" exactly when every needle record is in
    /// the injected set — the shrink target is the needle set itself.
    struct Synthetic {
        needles: Vec<FaultRecord>,
    }

    impl ChaosWorkload for Synthetic {
        fn name(&self) -> &str {
            "synthetic"
        }

        fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
            let injected: Vec<FaultRecord> = faults
                .as_ref()
                .and_then(|p| p.replay_records())
                .map(|r| r.to_vec())
                .unwrap_or_default();
            let bad = self.needles.iter().all(|n| injected.contains(n));
            ChaosRun {
                outcome: if bad { "corrupt" } else { "ok" }.into(),
                log: FaultLog { records: injected },
                leaked: 0,
                imbalance: 0,
                recovered: Vec::new(),
                failures: Vec::new(),
                flight: None,
            }
        }

        fn check(&self, reference: &ChaosRun, faulty: &ChaosRun) -> Vec<String> {
            if faulty.outcome != reference.outcome {
                vec!["outcome diverged".into()]
            } else {
                Vec::new()
            }
        }
    }

    #[test]
    fn shrink_reduces_to_the_failing_records() {
        let needles = vec![rec(0, 1, 7), rec(2, 1, 3)];
        let runner = ChaosRunner::new(
            Synthetic {
                needles: needles.clone(),
            },
            FaultPlan::new(0),
        );
        // 40 irrelevant records around the two needles.
        let mut records: Vec<FaultRecord> = (0..40).map(|i| rec(1, 2, 100 + i)).collect();
        records.insert(13, needles[0]);
        records.insert(29, needles[1]);
        let log = FaultLog { records };
        let report = runner.replay(&log);
        assert!(!report.passed(), "the full log must fail");
        let (minimal, runs) = runner.shrink(&log, 200);
        assert!(runs <= 200);
        let mut got = minimal.records.clone();
        let mut want = needles.clone();
        got.sort_by_key(|r| (r.src, r.dst, r.seq));
        want.sort_by_key(|r| (r.src, r.dst, r.seq));
        assert_eq!(got, want, "shrink must isolate exactly the needles");
    }

    #[test]
    fn shrink_returns_passing_logs_unchanged() {
        let runner = ChaosRunner::new(
            Synthetic {
                needles: vec![rec(9, 9, 9)],
            },
            FaultPlan::new(0),
        );
        let log = FaultLog {
            records: (0..10).map(|i| rec(0, 1, i)).collect(),
        };
        assert!(runner.replay(&log).passed());
        let (same, _) = runner.shrink(&log, 50);
        assert_eq!(same.canonical(), log.canonical());
    }

    #[test]
    fn judge_flags_leaks_imbalance_and_phantom_recovery() {
        struct Leaky;
        impl ChaosWorkload for Leaky {
            fn name(&self) -> &str {
                "leaky"
            }
            fn run(&self, faults: Option<FaultPlan>) -> ChaosRun {
                ChaosRun {
                    outcome: String::new(),
                    log: FaultLog {
                        records: Vec::new(),
                    },
                    leaked: u64::from(faults.is_some()),
                    imbalance: i64::from(faults.is_some()),
                    recovered: if faults.is_some() { vec![3] } else { vec![] },
                    failures: Vec::new(),
                    flight: None,
                }
            }
            fn check(&self, _: &ChaosRun, _: &ChaosRun) -> Vec<String> {
                Vec::new()
            }
        }
        let report = ChaosRunner::new(Leaky, FaultPlan::new(0)).run(1);
        assert_eq!(report.failures.len(), 3, "{:?}", report.failures);
    }
}
