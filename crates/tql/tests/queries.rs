//! TQL integration tests: queries over a TSL-typed distributed graph.

use std::sync::Arc;

use trinity_memcloud::{CloudConfig, MemoryCloud};
use trinity_tql::{Catalog, TqlEngine, TqlError};
use trinity_tsl::{compile, parse, Value};

const SCHEMA: &str = "
    [CellType: NodeCell]
    cell struct Movie {
        string Name;
        int Year;
        double Rating;
        [EdgeType: SimpleEdge, ReferencedCell: Actor]
        List<long> Cast;
    }
    [CellType: NodeCell]
    cell struct Actor {
        string Name;
        int Born;
        [EdgeType: SimpleEdge, ReferencedCell: Movie]
        List<long> ActedIn;
    }
";

/// A little movie graph:
///   Heat(1995) -> DeNiro, Pacino
///   Ronin(1998) -> DeNiro
///   Serpico(1973) -> Pacino
/// with reverse ActedIn edges.
fn movie_cloud(machines: usize) -> (Arc<MemoryCloud>, TqlEngine) {
    let schema = compile(&parse(SCHEMA).unwrap()).unwrap();
    let catalog =
        Catalog::from_schema(&schema, &[("Movie", "Cast"), ("Actor", "ActedIn")]).unwrap();
    let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(machines)));
    const HEAT: u64 = 1;
    const RONIN: u64 = 2;
    const SERPICO: u64 = 3;
    const DENIRO: u64 = 10;
    const PACINO: u64 = 11;
    let movie = |id, name: &str, year: i32, rating: f64, cast: &[u64]| {
        catalog
            .new_node(
                &cloud,
                id,
                "Movie",
                &[
                    ("Name", name.into()),
                    ("Year", Value::Int(year)),
                    ("Rating", Value::Double(rating)),
                ],
                cast,
            )
            .unwrap();
    };
    movie(HEAT, "Heat", 1995, 8.3, &[DENIRO, PACINO]);
    movie(RONIN, "Ronin", 1998, 7.2, &[DENIRO]);
    movie(SERPICO, "Serpico", 1973, 7.7, &[PACINO]);
    let actor = |id, name: &str, born: i32, acted: &[u64]| {
        catalog
            .new_node(
                &cloud,
                id,
                "Actor",
                &[("Name", name.into()), ("Born", Value::Int(born))],
                acted,
            )
            .unwrap();
    };
    actor(DENIRO, "Robert De Niro", 1943, &[HEAT, RONIN]);
    actor(PACINO, "Al Pacino", 1940, &[HEAT, SERPICO]);
    let engine = TqlEngine::new(Arc::clone(&cloud), catalog);
    (cloud, engine)
}

fn names(rows: &[trinity_tql::Row]) -> Vec<String> {
    let mut v: Vec<String> = rows
        .iter()
        .map(|r| r.values[0].as_str().unwrap_or("<id>").to_string())
        .collect();
    v.sort();
    v
}

#[test]
fn single_hop_with_equality_filter() {
    let (cloud, engine) = movie_cloud(3);
    let rows = engine
        .query(r#"MATCH (m:Movie)-->(a:Actor) WHERE m.Name = "Heat" RETURN a.Name"#)
        .unwrap();
    assert_eq!(names(&rows), vec!["Al Pacino", "Robert De Niro"]);
    cloud.shutdown();
}

#[test]
fn label_filters_restrict_candidates() {
    let (cloud, engine) = movie_cloud(2);
    // Every Movie->Actor edge.
    let all = engine
        .query("MATCH (m:Movie)-->(a:Actor) RETURN m, a")
        .unwrap();
    assert_eq!(all.len(), 4);
    // Unlabeled start matches actors too (Actor->Movie edges).
    let any = engine.query("MATCH (x)-->(y) RETURN x, y").unwrap();
    assert_eq!(any.len(), 8);
    cloud.shutdown();
}

#[test]
fn two_hop_co_star_query() {
    let (cloud, engine) = movie_cloud(3);
    // Actors reachable from De Niro in 2 hops (movie then cast):
    // co-stars including himself via Heat and Ronin.
    let rows = engine
        .query(r#"MATCH (a:Actor)-[2]->(b:Actor) WHERE a.Name CONTAINS "De Niro" RETURN b.Name"#)
        .unwrap();
    // b != a is enforced by injective bindings, so only Pacino remains.
    assert_eq!(names(&rows), vec!["Al Pacino"]);
    cloud.shutdown();
}

#[test]
fn variable_length_paths_reach_the_whole_component() {
    let (cloud, engine) = movie_cloud(2);
    let rows = engine
        .query(r#"MATCH (m:Movie)-[1..4]->(x:Movie) WHERE m.Name = "Ronin" RETURN x.Name"#)
        .unwrap();
    // Ronin -> DeNiro -> Heat -> Pacino -> Serpico.
    assert_eq!(names(&rows), vec!["Heat", "Serpico"]);
    cloud.shutdown();
}

#[test]
fn numeric_predicates_and_residual_filters() {
    let (cloud, engine) = movie_cloud(3);
    let rows = engine
        .query("MATCH (m:Movie) WHERE m.Year >= 1990 AND m.Rating > 8.0 RETURN m.Name")
        .unwrap();
    assert_eq!(names(&rows), vec!["Heat"]);
    // Cross-variable residual: actor older than the movie is new.
    let rows = engine
        .query(
            "MATCH (m:Movie)-->(a:Actor) WHERE m.Year < 1990 AND a.Born < 1941 RETURN m.Name, a.Name",
        )
        .unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[0], Value::Str("Serpico".into()));
    assert_eq!(rows[0].values[1], Value::Str("Al Pacino".into()));
    cloud.shutdown();
}

#[test]
fn or_not_and_contains() {
    let (cloud, engine) = movie_cloud(2);
    let rows = engine
        .query(r#"MATCH (m:Movie) WHERE m.Year = 1973 OR m.Name CONTAINS "nin" RETURN m.Name"#)
        .unwrap();
    assert_eq!(names(&rows), vec!["Ronin", "Serpico"]);
    let rows = engine
        .query(r#"MATCH (m:Movie) WHERE NOT m.Name = "Heat" RETURN m.Name"#)
        .unwrap();
    assert_eq!(names(&rows), vec!["Ronin", "Serpico"]);
    cloud.shutdown();
}

#[test]
fn limit_caps_rows_and_bare_var_returns_ids() {
    let (cloud, engine) = movie_cloud(2);
    let rows = engine.query("MATCH (m:Movie) RETURN m LIMIT 2").unwrap();
    assert_eq!(rows.len(), 2);
    assert!(matches!(rows[0].values[0], Value::Long(_)));
    cloud.shutdown();
}

#[test]
fn results_are_identical_across_machine_counts() {
    let mut per_count = Vec::new();
    for machines in [1usize, 2, 4] {
        let (cloud, engine) = movie_cloud(machines);
        let rows = engine
            .query("MATCH (a:Actor)-->(m:Movie) WHERE m.Rating >= 7.5 RETURN a.Name, m.Name")
            .unwrap();
        per_count.push(rows);
        cloud.shutdown();
    }
    assert_eq!(per_count[0], per_count[1]);
    assert_eq!(per_count[1], per_count[2]);
}

#[test]
fn error_paths_are_reported_not_panicked() {
    let (cloud, engine) = movie_cloud(2);
    assert!(matches!(
        engine.query("MATCH (m:Film) RETURN m"),
        Err(TqlError::UnknownLabel(_))
    ));
    assert!(matches!(
        engine.query("MATCH (m:Movie) RETURN z"),
        Err(TqlError::UnknownVariable(_))
    ));
    assert!(matches!(
        engine.query("MATCH (m:Movie) WHERE m.Name > 5 RETURN m"),
        Err(TqlError::TypeMismatch(_))
    ));
    assert!(matches!(
        engine.query("MATCH (m:Movie) WHERE m.Budget = 1 RETURN m"),
        Err(TqlError::UnknownField { .. })
    ));
    assert!(matches!(
        engine.query("MATCH RETURN"),
        Err(TqlError::Parse { .. })
    ));
    cloud.shutdown();
}

#[test]
fn people_search_in_tql_on_a_generated_social_graph() {
    // The David problem, phrased in TQL over a labeled social graph.
    let schema = compile(
        &parse("[CellType: NodeCell] cell struct Person { string Name; [EdgeType: SimpleEdge, ReferencedCell: Person] List<long> Friends; }")
            .unwrap(),
    )
    .unwrap();
    let catalog = Catalog::from_schema(&schema, &[("Person", "Friends")]).unwrap();
    let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(4)));
    let csr = trinity_graphgen::social(400, 10, 3);
    for v in 0..400u64 {
        catalog
            .new_node(
                &cloud,
                v,
                "Person",
                &[("Name", trinity_graphgen::names::name_for(7, v).into())],
                csr.neighbors(v),
            )
            .unwrap();
    }
    let engine = TqlEngine::new(Arc::clone(&cloud), catalog);
    let rows = engine
        .query(
            r#"MATCH (me:Person)-[1..3]->(friend:Person)
               WHERE me.Name = "David" AND friend.Name = "David"
               RETURN me, friend"#,
        )
        .unwrap();
    // Reference: for each David, BFS 3 hops, count other Davids.
    let davids: Vec<u64> = (0..400u64)
        .filter(|&v| trinity_graphgen::names::name_for(7, v) == "David")
        .collect();
    let mut expect = 0usize;
    for &s in &davids {
        let mut dist = vec![u32::MAX; 400];
        dist[s as usize] = 0;
        let mut q = std::collections::VecDeque::from([s]);
        while let Some(v) = q.pop_front() {
            if dist[v as usize] >= 3 {
                continue;
            }
            for &t in csr.neighbors(v) {
                if dist[t as usize] == u32::MAX {
                    dist[t as usize] = dist[v as usize] + 1;
                    q.push_back(t);
                }
            }
        }
        expect += davids
            .iter()
            .filter(|&&d| d != s && dist[d as usize] <= 3)
            .count();
    }
    assert!(expect > 0, "test graph needs at least one David pair");
    assert_eq!(rows.len(), expect);
    cloud.shutdown();
}
