//! The TQL catalog: label registry over TSL cell types.
//!
//! TQL labels are TSL `cell struct`s. A labeled node cell's attribute
//! bytes are `[label id: u8][TSL-encoded struct]`, so the engine can
//! dispatch on the label with one byte and then map fields through the
//! zero-copy accessor. SimpleEdge list fields are materialized into the
//! node record's adjacency section (what the TSL compiler does for
//! `[EdgeType: SimpleEdge]` fields), so traversal never decodes the
//! struct.

use std::collections::HashMap;
use std::sync::Arc;

use trinity_graph::NodeRecord;
use trinity_memcloud::{CellId, MemoryCloud};
use trinity_tsl::{CellAccessor, Schema, StructLayout, Value};

use crate::error::TqlError;

/// One registered label.
#[derive(Debug, Clone)]
pub struct LabelInfo {
    pub name: String,
    pub id: u8,
    pub layout: Arc<StructLayout>,
    /// The `List<long>` field holding SimpleEdge adjacency, if declared.
    pub edge_field: Option<String>,
}

/// Label registry for a TQL-queryable graph.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    labels: Vec<LabelInfo>,
    by_name: HashMap<String, usize>,
}

impl Catalog {
    /// Build a catalog from a compiled TSL schema. Every `cell struct`
    /// becomes a label; `edge_fields` names each label's SimpleEdge list
    /// (labels without one are leaf-only).
    pub fn from_schema(schema: &Schema, edge_fields: &[(&str, &str)]) -> Result<Catalog, TqlError> {
        let mut catalog = Catalog::default();
        let edge_map: HashMap<&str, &str> = edge_fields.iter().copied().collect();
        for (i, name) in schema.cell_struct_names().into_iter().enumerate() {
            let layout = schema
                .struct_layout(name)
                .map_err(|e| TqlError::Storage(e.to_string()))?;
            let edge_field = edge_map.get(name).map(|s| s.to_string());
            if let Some(field) = &edge_field {
                layout.field(field).map_err(|_| TqlError::UnknownField {
                    label: name.to_string(),
                    field: field.clone(),
                })?;
            }
            catalog.by_name.insert(name.to_string(), i);
            catalog.labels.push(LabelInfo {
                name: name.to_string(),
                id: i as u8,
                layout: Arc::clone(layout),
                edge_field,
            });
        }
        Ok(catalog)
    }

    /// Look a label up by name.
    pub fn label(&self, name: &str) -> Result<&LabelInfo, TqlError> {
        self.by_name
            .get(name)
            .map(|&i| &self.labels[i])
            .ok_or_else(|| TqlError::UnknownLabel(name.to_string()))
    }

    /// All registered labels.
    pub fn labels(&self) -> &[LabelInfo] {
        &self.labels
    }

    /// The label of a stored attribute blob.
    pub fn label_of<'a>(&'a self, attrs: &[u8]) -> Option<&'a LabelInfo> {
        self.labels.get(*attrs.first()? as usize)
    }

    /// Encode a labeled attribute blob from named field values. The edge
    /// field (if any) is filled from `outs`.
    pub fn encode_attrs(
        &self,
        label: &str,
        fields: &[(&str, Value)],
        outs: &[CellId],
    ) -> Result<Vec<u8>, TqlError> {
        let info = self.label(label)?;
        let mut builder = info.layout.build();
        for (name, value) in fields {
            info.layout
                .field(name)
                .map_err(|_| TqlError::UnknownField {
                    label: label.into(),
                    field: (*name).into(),
                })?;
            builder = builder.set(name, value.clone());
        }
        if let Some(edge_field) = &info.edge_field {
            builder = builder.set(
                edge_field,
                Value::List(outs.iter().map(|&o| Value::Long(o as i64)).collect()),
            );
        }
        let blob = builder
            .encode()
            .map_err(|e| TqlError::Storage(e.to_string()))?;
        let mut out = Vec::with_capacity(1 + blob.len());
        out.push(info.id);
        out.extend_from_slice(&blob);
        Ok(out)
    }

    /// Create a labeled node cell in the memory cloud (routed to its
    /// owner). Returns the id for chaining.
    pub fn new_node(
        &self,
        cloud: &Arc<MemoryCloud>,
        id: CellId,
        label: &str,
        fields: &[(&str, Value)],
        outs: &[CellId],
    ) -> Result<CellId, TqlError> {
        let attrs = self.encode_attrs(label, fields, outs)?;
        let record = NodeRecord {
            attrs,
            outs: outs.to_vec(),
            ins: None,
        };
        cloud
            .node(0)
            .put(id, &record.encode())
            .map_err(|e| TqlError::Storage(e.to_string()))?;
        Ok(id)
    }

    /// Read one field out of a labeled attribute blob (zero-copy walk).
    pub fn field_value(&self, attrs: &[u8], field: &str) -> Result<Value, TqlError> {
        let info = self
            .label_of(attrs)
            .ok_or_else(|| TqlError::Storage("unlabeled or empty attribute blob".into()))?;
        let acc = CellAccessor::new(&info.layout, &attrs[1..]);
        acc.get_value(field).map_err(|_| TqlError::UnknownField {
            label: info.name.clone(),
            field: field.to_string(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_tsl::{compile, parse};

    fn movie_schema() -> Schema {
        compile(
            &parse(
                "[CellType: NodeCell] cell struct Movie { string Name; int Year; \
                 [EdgeType: SimpleEdge, ReferencedCell: Actor] List<long> Actors; } \
                 [CellType: NodeCell] cell struct Actor { string Name; }",
            )
            .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn catalog_registers_cell_structs_with_stable_ids() {
        let c = Catalog::from_schema(&movie_schema(), &[("Movie", "Actors")]).unwrap();
        assert_eq!(c.labels().len(), 2);
        assert_eq!(c.label("Movie").unwrap().id, 0);
        assert_eq!(c.label("Actor").unwrap().id, 1);
        assert_eq!(
            c.label("Movie").unwrap().edge_field.as_deref(),
            Some("Actors")
        );
        assert_eq!(c.label("Actor").unwrap().edge_field, None);
        assert!(matches!(c.label("Nope"), Err(TqlError::UnknownLabel(_))));
    }

    #[test]
    fn bad_edge_field_is_rejected() {
        assert!(matches!(
            Catalog::from_schema(&movie_schema(), &[("Movie", "Cast")]),
            Err(TqlError::UnknownField { .. })
        ));
    }

    #[test]
    fn attrs_roundtrip_with_label_byte() {
        let c = Catalog::from_schema(&movie_schema(), &[("Movie", "Actors")]).unwrap();
        let attrs = c
            .encode_attrs(
                "Movie",
                &[("Name", "Heat".into()), ("Year", Value::Int(1995))],
                &[7, 8],
            )
            .unwrap();
        let info = c.label_of(&attrs).unwrap();
        assert_eq!(info.name, "Movie");
        assert_eq!(
            c.field_value(&attrs, "Name").unwrap(),
            Value::Str("Heat".into())
        );
        assert_eq!(c.field_value(&attrs, "Year").unwrap(), Value::Int(1995));
        assert_eq!(
            c.field_value(&attrs, "Actors").unwrap(),
            Value::List(vec![Value::Long(7), Value::Long(8)])
        );
        assert!(c.field_value(&attrs, "Budget").is_err());
    }
}
