use std::fmt;

/// Errors from TQL parsing, planning, and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum TqlError {
    /// Lexical or syntactic error with source position.
    Parse { at: usize, msg: String },
    /// A label is not registered in the catalog.
    UnknownLabel(String),
    /// A variable is referenced but not bound by the MATCH pattern.
    UnknownVariable(String),
    /// A field is not part of the variable's TSL layout.
    UnknownField { label: String, field: String },
    /// Operands of a comparison have incomparable types.
    TypeMismatch(String),
    /// The underlying storage failed.
    Storage(String),
}

impl fmt::Display for TqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TqlError::Parse { at, msg } => write!(f, "TQL parse error at byte {at}: {msg}"),
            TqlError::UnknownLabel(l) => write!(f, "unknown label :{l}"),
            TqlError::UnknownVariable(v) => write!(f, "unbound variable {v}"),
            TqlError::UnknownField { label, field } => {
                write!(f, "label {label} has no field {field}")
            }
            TqlError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            TqlError::Storage(m) => write!(f, "storage error: {m}"),
        }
    }
}

impl std::error::Error for TqlError {}
