//! TQL — the Trinity Query Language.
//!
//! The paper presents TSL as the foundation "advanced system modules" are
//! built on: "For example, we implemented a sophisticated graph query
//! language (TQL) within this framework" (§4.2). This crate is that
//! module: a declarative path-query language over TSL-typed graph cells,
//! executed by the same distributed-exploration machinery that powers the
//! paper's online queries — no indexes, just parallel random access.
//!
//! # The language
//!
//! ```text
//! MATCH (m:Movie)-->(a:Actor)
//! WHERE m.Name = "The Matrix" AND a.Name CONTAINS "Reeves"
//! RETURN a.Name
//! LIMIT 10
//! ```
//!
//! * **node patterns** `(var:Label)` bind a variable, optionally
//!   constrained to a TSL cell type (the label);
//! * **edge patterns** `-->`, `-[2]->`, `-[1..3]->` traverse SimpleEdge
//!   adjacency one hop, exactly `k` hops, or any length in a range;
//! * **WHERE** applies comparisons (`=`, `!=`, `<`, `<=`, `>`, `>=`,
//!   `CONTAINS`) over TSL fields, combined with `AND` / `OR` / `NOT`;
//! * **RETURN** projects bound variables (`a`, yielding the cell id) or
//!   fields (`a.Name`), with optional `LIMIT`.
//!
//! Per-variable predicates are pushed into the matching steps, so a
//! selective `WHERE` prunes the exploration frontier instead of filtering
//! at the end.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use trinity_memcloud::{CloudConfig, MemoryCloud};
//! use trinity_tsl::{compile, parse};
//! use trinity_tql::{Catalog, TqlEngine};
//!
//! let schema = compile(&parse(
//!     "[CellType: NodeCell] cell struct City { string Name; List<long> Roads; }",
//! ).unwrap()).unwrap();
//! let catalog = Catalog::from_schema(&schema, &[("City", "Roads")]).unwrap();
//!
//! let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(2)));
//! // Two cities connected by a road.
//! let a = catalog.new_node(&cloud, 1, "City", &[("Name", "Ambridge".into())], &[2]).unwrap();
//! let b = catalog.new_node(&cloud, 2, "City", &[("Name", "Borchester".into())], &[1]).unwrap();
//! assert_eq!((a, b), (1, 2));
//!
//! let engine = TqlEngine::new(Arc::clone(&cloud), catalog);
//! let rows = engine
//!     .query("MATCH (x:City)-->(y:City) WHERE x.Name = \"Ambridge\" RETURN y.Name")
//!     .unwrap();
//! assert_eq!(rows.len(), 1);
//! assert_eq!(rows[0].values[0].as_str(), Some("Borchester"));
//! cloud.shutdown();
//! ```

mod ast;
mod catalog;
mod error;
mod executor;
mod lexer;
mod parser;

pub use ast::{Comparison, EdgePattern, Expr, Literal, NodePattern, Query, ReturnItem};
pub use catalog::Catalog;
pub use error::TqlError;
pub use executor::{Row, TqlEngine};

/// Parse a TQL query string into its AST.
pub fn parse_query(src: &str) -> Result<Query, TqlError> {
    parser::parse(src)
}
