//! TQL abstract syntax.

/// A parsed query: `MATCH pattern [WHERE expr] RETURN items [LIMIT n]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Node patterns, in chain order.
    pub nodes: Vec<NodePattern>,
    /// Edge patterns; `edges[i]` connects `nodes[i]` to `nodes[i + 1]`.
    pub edges: Vec<EdgePattern>,
    /// The WHERE clause, if any.
    pub filter: Option<Expr>,
    /// RETURN projection.
    pub returns: Vec<ReturnItem>,
    /// LIMIT, if any.
    pub limit: Option<usize>,
}

/// `(var:Label)` or `(var)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePattern {
    pub var: String,
    pub label: Option<String>,
}

/// An edge step between consecutive node patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgePattern {
    /// Minimum hops (1 for `-->`).
    pub min_hops: usize,
    /// Maximum hops (1 for `-->`; `min..=max` for `-[min..max]->`).
    pub max_hops: usize,
}

impl EdgePattern {
    /// A plain single-hop edge.
    pub fn single() -> Self {
        EdgePattern {
            min_hops: 1,
            max_hops: 1,
        }
    }
}

/// A projected output: `var` (the cell id) or `var.Field`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReturnItem {
    pub var: String,
    pub field: Option<String>,
}

/// Boolean expressions over bound variables.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Cmp(Comparison),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
}

impl Expr {
    /// The set of variables this expression reads.
    pub fn variables(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_vars<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Cmp(c) => out.push(&c.var),
            Expr::And(a, b) | Expr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(e) => e.collect_vars(out),
        }
    }
}

/// `var.Field <op> literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    pub var: String,
    pub field: String,
    pub op: CmpOp,
    pub rhs: Literal,
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    /// Substring containment on strings.
    Contains,
}

/// Literal operand values.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Str(String),
    Int(i64),
    Float(f64),
    Bool(bool),
}

impl std::fmt::Display for Literal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_variable_collection() {
        let e = Expr::And(
            Box::new(Expr::Cmp(Comparison {
                var: "a".into(),
                field: "X".into(),
                op: CmpOp::Eq,
                rhs: Literal::Int(1),
            })),
            Box::new(Expr::Not(Box::new(Expr::Cmp(Comparison {
                var: "b".into(),
                field: "Y".into(),
                op: CmpOp::Gt,
                rhs: Literal::Int(2),
            })))),
        );
        assert_eq!(e.variables(), vec!["a", "b"]);
    }
}
