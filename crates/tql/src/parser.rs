//! Recursive-descent parser for TQL.

use crate::ast::*;
use crate::error::TqlError;
use crate::lexer::{tokenize, Spanned, Tok};

pub fn parse(src: &str) -> Result<Query, TqlError> {
    let toks = tokenize(src)?;
    let mut p = Parser { toks, at: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

struct Parser {
    toks: Vec<Spanned>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Spanned {
        &self.toks[self.at]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.at].clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, TqlError> {
        Err(TqlError::Parse {
            at: self.peek().at,
            msg: msg.into(),
        })
    }

    fn expect(&mut self, tok: Tok) -> Result<(), TqlError> {
        if self.peek().tok == tok {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {tok:?}, found {:?}", self.peek().tok))
        }
    }

    fn expect_eof(&self) -> Result<(), TqlError> {
        if self.peek().tok == Tok::Eof {
            Ok(())
        } else {
            self.err(format!("trailing input: {:?}", self.peek().tok))
        }
    }

    /// Consume an identifier, returning it.
    fn ident(&mut self) -> Result<String, TqlError> {
        match &self.peek().tok {
            Tok::Ident(_) => match self.next().tok {
                Tok::Ident(s) => Ok(s),
                _ => unreachable!(),
            },
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consume a specific case-insensitive keyword.
    fn keyword(&mut self, kw: &str) -> Result<(), TqlError> {
        match &self.peek().tok {
            Tok::Ident(s) if s.eq_ignore_ascii_case(kw) => {
                self.next();
                Ok(())
            }
            other => self.err(format!("expected {kw}, found {other:?}")),
        }
    }

    fn at_keyword(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    fn query(&mut self) -> Result<Query, TqlError> {
        self.keyword("MATCH")?;
        let mut nodes = vec![self.node_pattern()?];
        let mut edges = Vec::new();
        while self.peek().tok == Tok::Dash || self.peek().tok == Tok::Arrow {
            edges.push(self.edge_pattern()?);
            nodes.push(self.node_pattern()?);
        }
        let filter = if self.at_keyword("WHERE") {
            self.next();
            Some(self.expr()?)
        } else {
            None
        };
        self.keyword("RETURN")?;
        let mut returns = vec![self.return_item()?];
        while self.peek().tok == Tok::Comma {
            self.next();
            returns.push(self.return_item()?);
        }
        let limit = if self.at_keyword("LIMIT") {
            self.next();
            match self.next().tok {
                Tok::Int(n) if n >= 0 => Some(n as usize),
                _ => return self.err("LIMIT expects a non-negative integer"),
            }
        } else {
            None
        };
        Ok(Query {
            nodes,
            edges,
            filter,
            returns,
            limit,
        })
    }

    /// `(var)` or `(var:Label)`.
    fn node_pattern(&mut self) -> Result<NodePattern, TqlError> {
        self.expect(Tok::LParen)?;
        let var = self.ident()?;
        let label = if self.peek().tok == Tok::Colon {
            self.next();
            Some(self.ident()?)
        } else {
            None
        };
        self.expect(Tok::RParen)?;
        Ok(NodePattern { var, label })
    }

    /// `-->` | `-[k]->` | `-[a..b]->`.
    fn edge_pattern(&mut self) -> Result<EdgePattern, TqlError> {
        self.expect(Tok::Dash)?;
        // `-->` lexes as Dash, Dash, Arrow... no: `-->` is '-' then "->".
        if self.peek().tok == Tok::Arrow {
            self.next();
            return Ok(EdgePattern::single());
        }
        self.expect(Tok::LBracket)?;
        let min = match self.next().tok {
            Tok::Int(n) if n >= 1 => n as usize,
            other => return self.err(format!("hop counts start at 1, found {other:?}")),
        };
        let max = if self.peek().tok == Tok::DotDot {
            self.next();
            match self.next().tok {
                Tok::Int(n) if n as usize >= min => n as usize,
                other => return self.err(format!("range end must be >= start, found {other:?}")),
            }
        } else {
            min
        };
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Arrow)?;
        Ok(EdgePattern {
            min_hops: min,
            max_hops: max,
        })
    }

    /// `var` or `var.Field`.
    fn return_item(&mut self) -> Result<ReturnItem, TqlError> {
        let var = self.ident()?;
        let field = if self.peek().tok == Tok::Dot {
            self.next();
            Some(self.ident()?)
        } else {
            None
        };
        Ok(ReturnItem { var, field })
    }

    // expr := or_term; or := and (OR and)*; and := unary (AND unary)*;
    // unary := NOT unary | '(' expr ')' | comparison
    fn expr(&mut self) -> Result<Expr, TqlError> {
        let mut left = self.and_expr()?;
        while self.at_keyword("OR") {
            self.next();
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, TqlError> {
        let mut left = self.unary_expr()?;
        while self.at_keyword("AND") {
            self.next();
            let right = self.unary_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn unary_expr(&mut self) -> Result<Expr, TqlError> {
        if self.at_keyword("NOT") {
            self.next();
            return Ok(Expr::Not(Box::new(self.unary_expr()?)));
        }
        if self.peek().tok == Tok::LParen {
            self.next();
            let e = self.expr()?;
            self.expect(Tok::RParen)?;
            return Ok(e);
        }
        self.comparison().map(Expr::Cmp)
    }

    /// `var.Field <op> literal`.
    fn comparison(&mut self) -> Result<Comparison, TqlError> {
        let var = self.ident()?;
        self.expect(Tok::Dot)?;
        let field = self.ident()?;
        let op = if self.at_keyword("CONTAINS") {
            self.next();
            CmpOp::Contains
        } else {
            match self.next().tok {
                Tok::Eq => CmpOp::Eq,
                Tok::Ne => CmpOp::Ne,
                Tok::Lt => CmpOp::Lt,
                Tok::Le => CmpOp::Le,
                Tok::Gt => CmpOp::Gt,
                Tok::Ge => CmpOp::Ge,
                other => {
                    return self.err(format!("expected a comparison operator, found {other:?}"))
                }
            }
        };
        let rhs = match self.next().tok {
            Tok::Str(s) => Literal::Str(s),
            Tok::Int(n) => Literal::Int(n),
            Tok::Float(x) => Literal::Float(x),
            Tok::Ident(s) if s.eq_ignore_ascii_case("true") => Literal::Bool(true),
            Tok::Ident(s) if s.eq_ignore_ascii_case("false") => Literal::Bool(false),
            other => return self.err(format!("expected a literal, found {other:?}")),
        };
        Ok(Comparison {
            var,
            field,
            op,
            rhs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::CmpOp;

    #[test]
    fn parses_the_movie_query() {
        let q = parse(
            r#"MATCH (m:Movie)-->(a:Actor) WHERE m.Name = "The Matrix" AND a.Name CONTAINS "Reeves" RETURN a.Name LIMIT 10"#,
        )
        .unwrap();
        assert_eq!(q.nodes.len(), 2);
        assert_eq!(
            q.nodes[0],
            NodePattern {
                var: "m".into(),
                label: Some("Movie".into())
            }
        );
        assert_eq!(q.edges, vec![EdgePattern::single()]);
        assert_eq!(q.limit, Some(10));
        assert_eq!(
            q.returns,
            vec![ReturnItem {
                var: "a".into(),
                field: Some("Name".into())
            }]
        );
        match q.filter.unwrap() {
            Expr::And(l, r) => {
                assert!(matches!(*l, Expr::Cmp(Comparison { op: CmpOp::Eq, .. })));
                assert!(matches!(
                    *r,
                    Expr::Cmp(Comparison {
                        op: CmpOp::Contains,
                        ..
                    })
                ));
            }
            other => panic!("expected AND, got {other:?}"),
        }
    }

    #[test]
    fn parses_variable_length_paths() {
        let q = parse("MATCH (a)-[2..4]->(b) RETURN b").unwrap();
        assert_eq!(
            q.edges,
            vec![EdgePattern {
                min_hops: 2,
                max_hops: 4
            }]
        );
        let q = parse("MATCH (a)-[3]->(b) RETURN b").unwrap();
        assert_eq!(
            q.edges,
            vec![EdgePattern {
                min_hops: 3,
                max_hops: 3
            }]
        );
    }

    #[test]
    fn parses_long_chains_and_boolean_structure() {
        let q = parse(
            "MATCH (a)-->(b)-[1..2]->(c)-->(d) WHERE NOT a.X = 1 OR (b.Y > 2 AND c.Z != 3) RETURN a, b.F, d",
        )
        .unwrap();
        assert_eq!(q.nodes.len(), 4);
        assert_eq!(q.edges.len(), 3);
        assert_eq!(q.returns.len(), 3);
        assert!(matches!(q.filter.unwrap(), Expr::Or(_, _)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("match (a) return a").is_ok());
        assert!(parse("MATCH (a) WHERE a.X >= 1.5 RETURN a LIMIT 1").is_ok());
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse("MATCH a RETURN a").is_err(), "nodes need parentheses");
        assert!(parse("MATCH (a)-->(b)").is_err(), "RETURN is mandatory");
        assert!(parse("MATCH (a)-[0]->(b) RETURN b").is_err(), "zero hops");
        assert!(
            parse("MATCH (a)-[3..1]->(b) RETURN b").is_err(),
            "inverted range"
        );
        assert!(
            parse("MATCH (a) WHERE a.X = RETURN a").is_err(),
            "missing literal"
        );
        assert!(parse("MATCH (a) RETURN a LIMIT x").is_err(), "bad limit");
        assert!(
            parse("MATCH (a) RETURN a extra").is_err(),
            "trailing tokens"
        );
    }
}
