//! TQL tokenizer.

use crate::error::TqlError;

#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword or identifier (keywords recognized case-insensitively by
    /// the parser).
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    Comma,
    Dot,
    DotDot,
    /// `-->` / `-[` start: the plain dash.
    Dash,
    /// `->` arrow head.
    Arrow,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Eof,
}

/// A token plus its byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    pub tok: Tok,
    pub at: usize,
}

pub fn tokenize(src: &str) -> Result<Vec<Spanned>, TqlError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let at = i;
        let c = bytes[i] as char;
        if !c.is_ascii() {
            return Err(TqlError::Parse {
                at,
                msg: "TQL source must be ASCII outside string literals".into(),
            });
        }
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                out.push(Spanned {
                    tok: Tok::LParen,
                    at,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    tok: Tok::RParen,
                    at,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    tok: Tok::LBracket,
                    at,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    tok: Tok::RBracket,
                    at,
                });
                i += 1;
            }
            ':' => {
                out.push(Spanned {
                    tok: Tok::Colon,
                    at,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    tok: Tok::Comma,
                    at,
                });
                i += 1;
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    out.push(Spanned {
                        tok: Tok::DotDot,
                        at,
                    });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Dot, at });
                    i += 1;
                }
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Spanned {
                        tok: Tok::Arrow,
                        at,
                    });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Dash, at });
                    i += 1;
                }
            }
            '=' => {
                out.push(Spanned { tok: Tok::Eq, at });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Ne, at });
                    i += 2;
                } else {
                    return Err(TqlError::Parse {
                        at,
                        msg: "expected `!=`".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Le, at });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Lt, at });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned { tok: Tok::Ge, at });
                    i += 2;
                } else {
                    out.push(Spanned { tok: Tok::Gt, at });
                    i += 1;
                }
            }
            '"' => {
                let mut raw: Vec<u8> = Vec::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(TqlError::Parse {
                                at,
                                msg: "unterminated string".into(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            match bytes.get(i + 1) {
                                Some(b'"') => raw.push(b'"'),
                                Some(b'\\') => raw.push(b'\\'),
                                Some(b'n') => raw.push(b'\n'),
                                _ => {
                                    return Err(TqlError::Parse {
                                        at: i,
                                        msg: "bad escape".into(),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            raw.push(b);
                            i += 1;
                        }
                    }
                }
                let s = String::from_utf8(raw).map_err(|_| TqlError::Parse {
                    at,
                    msg: "invalid UTF-8 in string literal".into(),
                })?;
                out.push(Spanned {
                    tok: Tok::Str(s),
                    at,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                // A float has a single dot followed by digits (not `..`).
                if bytes.get(i) == Some(&b'.')
                    && bytes
                        .get(i + 1)
                        .is_some_and(|b| (*b as char).is_ascii_digit())
                {
                    i += 1;
                    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                        i += 1;
                    }
                    let text = &src[start..i];
                    let v = text.parse().map_err(|_| TqlError::Parse {
                        at,
                        msg: "bad float".into(),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Float(v),
                        at,
                    });
                } else {
                    let text = &src[start..i];
                    let v = text.parse().map_err(|_| TqlError::Parse {
                        at,
                        msg: "bad integer".into(),
                    })?;
                    out.push(Spanned {
                        tok: Tok::Int(v),
                        at,
                    });
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    tok: Tok::Ident(src[start..i].to_string()),
                    at,
                });
            }
            other => {
                return Err(TqlError::Parse {
                    at,
                    msg: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        at: src.len(),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn tokenizes_a_full_query() {
        let t = toks(r#"MATCH (a:Movie)-[1..3]->(b) WHERE a.Name = "X" RETURN b LIMIT 5"#);
        assert!(t.contains(&Tok::Ident("MATCH".into())));
        assert!(t.contains(&Tok::LBracket));
        assert!(t.contains(&Tok::DotDot));
        assert!(t.contains(&Tok::Arrow));
        assert!(t.contains(&Tok::Str("X".into())));
        assert!(t.contains(&Tok::Int(5)));
    }

    #[test]
    fn numbers_and_ranges_disambiguate() {
        assert_eq!(
            toks("1..3"),
            vec![Tok::Int(1), Tok::DotDot, Tok::Int(3), Tok::Eof]
        );
        assert_eq!(toks("1.5"), vec![Tok::Float(1.5), Tok::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("= != < <= > >="),
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn string_escapes_and_errors() {
        assert_eq!(toks(r#""a\"b""#), vec![Tok::Str("a\"b".into()), Tok::Eof]);
        assert!(tokenize("\"unterminated").is_err());
        assert!(tokenize("a ! b").is_err());
        assert!(tokenize("€").is_err());
    }
}
