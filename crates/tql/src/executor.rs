//! The TQL executor: distributed exploration with predicate pushdown.
//!
//! Execution follows the paper's online-query paradigm (§5.2): no graph
//! index exists; the first node pattern is resolved by a parallel scan of
//! every machine's partition, and each edge pattern extends partial
//! bindings by (possibly remote) neighborhood exploration. Per-variable
//! predicates from the `WHERE` clause are *pushed down* into the matching
//! steps, so a selective filter prunes the frontier instead of
//! post-filtering full rows; only cross-variable residue is evaluated on
//! complete bindings.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use trinity_graph::GraphHandle;
use trinity_memcloud::{CellId, MemoryCloud};
use trinity_tsl::Value;

use crate::ast::{CmpOp, Comparison, Expr, Query};
use crate::catalog::Catalog;
use crate::error::TqlError;

/// One result row: the variable bindings and the projected values
/// (parallel to the query's RETURN items; a bare `var` projects
/// `Value::Long(cell id)`).
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    pub bindings: Vec<(String, CellId)>,
    pub values: Vec<Value>,
}

/// A TQL query engine over one memory cloud.
pub struct TqlEngine {
    catalog: Catalog,
    handles: Vec<GraphHandle>,
}

impl std::fmt::Debug for TqlEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TqlEngine")
            .field("machines", &self.handles.len())
            .finish()
    }
}

/// Cached per-cell data fetched during a query.
#[derive(Clone)]
struct CellData {
    attrs: Arc<Vec<u8>>,
    outs: Arc<Vec<CellId>>,
}

impl TqlEngine {
    /// Attach an engine to a cloud.
    pub fn new(cloud: Arc<MemoryCloud>, catalog: Catalog) -> Self {
        let handles = (0..cloud.machines())
            .map(|m| GraphHandle::new(Arc::clone(cloud.node(m))))
            .collect();
        TqlEngine { catalog, handles }
    }

    /// The engine's catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parse and run a query, returning rows sorted by bindings (stable
    /// across machine counts).
    pub fn query(&self, src: &str) -> Result<Vec<Row>, TqlError> {
        let query = crate::parse_query(src)?;
        self.run(&query)
    }

    /// Run a pre-parsed query.
    pub fn run(&self, query: &Query) -> Result<Vec<Row>, TqlError> {
        // --- Validation & planning ------------------------------------
        let mut var_index: HashMap<&str, usize> = HashMap::new();
        for (i, n) in query.nodes.iter().enumerate() {
            if var_index.insert(&n.var, i).is_some() {
                return Err(TqlError::Parse {
                    at: 0,
                    msg: format!("variable {} bound twice", n.var),
                });
            }
            if let Some(label) = &n.label {
                self.catalog.label(label)?;
            }
        }
        for item in &query.returns {
            if !var_index.contains_key(item.var.as_str()) {
                return Err(TqlError::UnknownVariable(item.var.clone()));
            }
        }
        // Split the filter into per-variable pushdowns and a residual.
        let (pushed, residual) = plan_filter(query, &var_index)?;
        let limit = query.limit.unwrap_or(usize::MAX);

        // --- Anchor scan (parallel over machines) ----------------------
        let found: Mutex<Vec<Vec<(String, CellId)>>> = Mutex::new(Vec::new());
        let hit_count = AtomicUsize::new(0);
        let error: Mutex<Option<TqlError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for m in 0..self.handles.len() {
                let handle = self.handles[m].clone();
                let found = &found;
                let hit_count = &hit_count;
                let error = &error;
                let pushed = &pushed;
                let residual = &residual;
                scope.spawn(move || {
                    let mut cache: HashMap<CellId, Option<CellData>> = HashMap::new();
                    let mut anchors = Vec::new();
                    handle.for_each_local_node(|id, view| {
                        anchors.push((id, view.attrs().to_vec(), view.outs().collect::<Vec<_>>()));
                    });
                    for (id, attrs, outs) in anchors {
                        if hit_count.load(Ordering::Relaxed) >= limit {
                            break;
                        }
                        let data = CellData {
                            attrs: Arc::new(attrs),
                            outs: Arc::new(outs),
                        };
                        cache.insert(id, Some(data.clone()));
                        match self.admissible(&data, &query.nodes[0].label, pushed.first()) {
                            Ok(true) => {}
                            Ok(false) => continue,
                            Err(e) => {
                                error.lock().get_or_insert(e);
                                return;
                            }
                        }
                        let mut binding = vec![id];
                        if let Err(e) = self.extend(
                            &handle,
                            query,
                            pushed,
                            residual,
                            1,
                            &mut binding,
                            &mut cache,
                            found,
                            hit_count,
                            limit,
                        ) {
                            error.lock().get_or_insert(e);
                            return;
                        }
                        binding.pop();
                    }
                });
            }
        });
        if let Some(e) = error.lock().take() {
            return Err(e);
        }

        // --- Projection -------------------------------------------------
        let mut bindings = found.into_inner();
        bindings.sort();
        bindings.truncate(limit);
        let mut rows = Vec::with_capacity(bindings.len());
        for binding in bindings {
            let mut values = Vec::with_capacity(query.returns.len());
            for item in &query.returns {
                let (_, id) = binding
                    .iter()
                    .find(|(v, _)| v == &item.var)
                    .expect("validated variable");
                match &item.field {
                    None => values.push(Value::Long(*id as i64)),
                    Some(field) => {
                        let attrs = self.handles[0]
                            .attrs(*id)
                            .map_err(|e| TqlError::Storage(e.to_string()))?
                            .ok_or_else(|| TqlError::Storage(format!("cell {id} vanished")))?;
                        values.push(self.catalog.field_value(&attrs, field)?);
                    }
                }
            }
            rows.push(Row {
                bindings: binding,
                values,
            });
        }
        Ok(rows)
    }

    /// Does a cell satisfy a node pattern's label and pushed predicate?
    fn admissible(
        &self,
        data: &CellData,
        label: &Option<String>,
        pushed: Option<&Vec<Expr>>,
    ) -> Result<bool, TqlError> {
        if let Some(want) = label {
            match self.catalog.label_of(&data.attrs) {
                Some(info) if info.name == *want => {}
                _ => return Ok(false),
            }
        }
        if let Some(exprs) = pushed {
            for e in exprs {
                if !self.eval_single(e, &data.attrs)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Depth-first extension of a partial binding along the pattern chain.
    #[allow(clippy::too_many_arguments)]
    fn extend(
        &self,
        handle: &GraphHandle,
        query: &Query,
        pushed: &[Vec<Expr>],
        residual: &Option<Expr>,
        depth: usize,
        binding: &mut Vec<CellId>,
        cache: &mut HashMap<CellId, Option<CellData>>,
        found: &Mutex<Vec<Vec<(String, CellId)>>>,
        hit_count: &AtomicUsize,
        limit: usize,
    ) -> Result<(), TqlError> {
        if hit_count.load(Ordering::Relaxed) >= limit {
            return Ok(());
        }
        if depth == query.nodes.len() {
            // A complete binding: check the residual filter, then emit.
            let named: Vec<(String, CellId)> = query
                .nodes
                .iter()
                .zip(binding.iter())
                .map(|(n, &id)| (n.var.clone(), id))
                .collect();
            if let Some(expr) = residual {
                if !self.eval_residual(expr, &named, handle, cache)? {
                    return Ok(());
                }
            }
            hit_count.fetch_add(1, Ordering::Relaxed);
            found.lock().push(named);
            return Ok(());
        }
        let edge = &query.edges[depth - 1];
        let from = *binding.last().expect("nonempty binding");
        // Candidates: every node reachable from `from` by a path whose
        // length lies in [min_hops, max_hops].
        let mut layer: Vec<CellId> = vec![from];
        let mut candidates: Vec<CellId> = Vec::new();
        let mut seen: HashMap<CellId, ()> = HashMap::new();
        seen.insert(from, ());
        for hop in 1..=edge.max_hops {
            let mut next = Vec::new();
            for &v in &layer {
                let data = match self.fetch(handle, cache, v)? {
                    Some(d) => d,
                    None => continue,
                };
                for &t in data.outs.iter() {
                    if seen.insert(t, ()).is_none() {
                        next.push(t);
                    }
                }
            }
            if hop >= edge.min_hops {
                candidates.extend(next.iter().copied());
            }
            layer = next;
            if layer.is_empty() {
                break;
            }
        }
        for cand in candidates {
            if hit_count.load(Ordering::Relaxed) >= limit {
                return Ok(());
            }
            if binding.contains(&cand) {
                continue; // bindings are injective
            }
            let data = match self.fetch(handle, cache, cand)? {
                Some(d) => d,
                None => continue,
            };
            if !self.admissible(&data, &query.nodes[depth].label, pushed.get(depth))? {
                continue;
            }
            binding.push(cand);
            self.extend(
                handle,
                query,
                pushed,
                residual,
                depth + 1,
                binding,
                cache,
                found,
                hit_count,
                limit,
            )?;
            binding.pop();
        }
        Ok(())
    }

    fn fetch(
        &self,
        handle: &GraphHandle,
        cache: &mut HashMap<CellId, Option<CellData>>,
        id: CellId,
    ) -> Result<Option<CellData>, TqlError> {
        if let Some(hit) = cache.get(&id) {
            return Ok(hit.clone());
        }
        let data = handle
            .with_node(id, |view| CellData {
                attrs: Arc::new(view.attrs().to_vec()),
                outs: Arc::new(view.outs().collect()),
            })
            .map_err(|e| TqlError::Storage(e.to_string()))?;
        cache.insert(id, data.clone());
        Ok(data)
    }

    /// Evaluate a single-variable expression against one cell's attrs.
    fn eval_single(&self, expr: &Expr, attrs: &[u8]) -> Result<bool, TqlError> {
        match expr {
            Expr::Cmp(c) => self.eval_cmp(c, attrs),
            Expr::And(a, b) => Ok(self.eval_single(a, attrs)? && self.eval_single(b, attrs)?),
            Expr::Or(a, b) => Ok(self.eval_single(a, attrs)? || self.eval_single(b, attrs)?),
            Expr::Not(e) => Ok(!self.eval_single(e, attrs)?),
        }
    }

    /// Evaluate a cross-variable expression against a complete binding.
    fn eval_residual(
        &self,
        expr: &Expr,
        binding: &[(String, CellId)],
        handle: &GraphHandle,
        cache: &mut HashMap<CellId, Option<CellData>>,
    ) -> Result<bool, TqlError> {
        match expr {
            Expr::Cmp(c) => {
                let (_, id) = binding
                    .iter()
                    .find(|(v, _)| v == &c.var)
                    .ok_or_else(|| TqlError::UnknownVariable(c.var.clone()))?;
                let data = self
                    .fetch(handle, cache, *id)?
                    .ok_or_else(|| TqlError::Storage(format!("cell {id} vanished")))?;
                self.eval_cmp(c, &data.attrs)
            }
            Expr::And(a, b) => Ok(self.eval_residual(a, binding, handle, cache)?
                && self.eval_residual(b, binding, handle, cache)?),
            Expr::Or(a, b) => Ok(self.eval_residual(a, binding, handle, cache)?
                || self.eval_residual(b, binding, handle, cache)?),
            Expr::Not(e) => Ok(!self.eval_residual(e, binding, handle, cache)?),
        }
    }

    fn eval_cmp(&self, cmp: &Comparison, attrs: &[u8]) -> Result<bool, TqlError> {
        let value = self.catalog.field_value(attrs, &cmp.field)?;
        compare(&value, cmp.op, &cmp.rhs)
    }
}

/// Split the WHERE clause (viewed as a top-level AND chain) into
/// per-variable pushdown lists indexed by pattern position, plus the
/// residual of multi-variable conjuncts.
fn plan_filter(
    query: &Query,
    var_index: &HashMap<&str, usize>,
) -> Result<(Vec<Vec<Expr>>, Option<Expr>), TqlError> {
    let mut pushed: Vec<Vec<Expr>> = vec![Vec::new(); query.nodes.len()];
    let mut residual: Vec<Expr> = Vec::new();
    if let Some(filter) = &query.filter {
        let mut conjuncts = Vec::new();
        flatten_and(filter, &mut conjuncts);
        for c in conjuncts {
            let vars = c.variables();
            for v in &vars {
                if !var_index.contains_key(v) {
                    return Err(TqlError::UnknownVariable((*v).to_string()));
                }
            }
            if vars.len() == 1 {
                pushed[var_index[vars[0]]].push(c.clone());
            } else {
                residual.push(c.clone());
            }
        }
    }
    let residual = residual
        .into_iter()
        .reduce(|a, b| Expr::And(Box::new(a), Box::new(b)));
    Ok((pushed, residual))
}

fn flatten_and<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::And(a, b) => {
            flatten_and(a, out);
            flatten_and(b, out);
        }
        other => out.push(other),
    }
}

/// Compare a TSL value against a literal with numeric coercion.
fn compare(value: &Value, op: CmpOp, rhs: &crate::ast::Literal) -> Result<bool, TqlError> {
    use crate::ast::Literal;
    let ord = match (value, rhs) {
        (Value::Str(s), Literal::Str(r)) => {
            if op == CmpOp::Contains {
                return Ok(s.contains(r.as_str()));
            }
            s.as_str().cmp(r.as_str())
        }
        (Value::Bool(b), Literal::Bool(r)) => b.cmp(r),
        (v, Literal::Int(r)) => match as_i64(v) {
            Some(l) => l.cmp(r),
            None => match as_f64(v) {
                Some(l) => {
                    return float_cmp(l, *r as f64, op);
                }
                None => {
                    return Err(TqlError::TypeMismatch(format!(
                        "{} vs {rhs}",
                        v.kind_name()
                    )))
                }
            },
        },
        (v, Literal::Float(r)) => match as_f64(v) {
            Some(l) => return float_cmp(l, *r, op),
            None => {
                return Err(TqlError::TypeMismatch(format!(
                    "{} vs {rhs}",
                    v.kind_name()
                )))
            }
        },
        (v, r) => return Err(TqlError::TypeMismatch(format!("{} vs {r}", v.kind_name()))),
    };
    Ok(match op {
        CmpOp::Eq => ord.is_eq(),
        CmpOp::Ne => !ord.is_eq(),
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
        CmpOp::Contains => return Err(TqlError::TypeMismatch("CONTAINS needs strings".into())),
    })
}

fn float_cmp(l: f64, r: f64, op: CmpOp) -> Result<bool, TqlError> {
    Ok(match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        CmpOp::Lt => l < r,
        CmpOp::Le => l <= r,
        CmpOp::Gt => l > r,
        CmpOp::Ge => l >= r,
        CmpOp::Contains => return Err(TqlError::TypeMismatch("CONTAINS needs strings".into())),
    })
}

fn as_i64(v: &Value) -> Option<i64> {
    match v {
        Value::Byte(b) => Some(*b as i64),
        Value::Int(i) => Some(*i as i64),
        Value::Long(l) => Some(*l),
        _ => None,
    }
}

fn as_f64(v: &Value) -> Option<f64> {
    match v {
        Value::Float(f) => Some(*f as f64),
        Value::Double(d) => Some(*d),
        Value::Byte(b) => Some(*b as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Long(l) => Some(*l as f64),
        _ => None,
    }
}

// Integration-style tests live in tests/queries.rs; unit tests here cover
// the pure planning/comparison helpers.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;

    #[test]
    fn comparison_coercions() {
        assert!(compare(&Value::Int(5), CmpOp::Gt, &Literal::Int(4)).unwrap());
        assert!(compare(&Value::Long(5), CmpOp::Eq, &Literal::Int(5)).unwrap());
        assert!(compare(&Value::Byte(5), CmpOp::Le, &Literal::Int(5)).unwrap());
        assert!(compare(&Value::Double(1.5), CmpOp::Lt, &Literal::Float(2.0)).unwrap());
        assert!(compare(&Value::Float(1.5), CmpOp::Ge, &Literal::Int(1)).unwrap());
        assert!(compare(
            &Value::Str("abcdef".into()),
            CmpOp::Contains,
            &Literal::Str("cde".into())
        )
        .unwrap());
        assert!(compare(
            &Value::Str("b".into()),
            CmpOp::Gt,
            &Literal::Str("a".into())
        )
        .unwrap());
        assert!(compare(&Value::Bool(true), CmpOp::Eq, &Literal::Bool(true)).unwrap());
        assert!(compare(&Value::Str("x".into()), CmpOp::Eq, &Literal::Int(1)).is_err());
        assert!(compare(&Value::Int(1), CmpOp::Contains, &Literal::Int(1)).is_err());
    }

    #[test]
    fn filter_planning_splits_single_and_multi_variable_conjuncts() {
        let q = crate::parse_query(
            "MATCH (a)-->(b) WHERE a.X = 1 AND b.Y = 2 AND (a.Z = 3 OR b.W = 4) RETURN a",
        )
        .unwrap();
        let vars: HashMap<&str, usize> = [("a", 0), ("b", 1)].into_iter().collect();
        let (pushed, residual) = plan_filter(&q, &vars).unwrap();
        assert_eq!(pushed[0].len(), 1, "a.X=1 pushes to a");
        assert_eq!(pushed[1].len(), 1, "b.Y=2 pushes to b");
        assert!(residual.is_some(), "the OR spans both variables");
    }

    #[test]
    fn filter_planning_rejects_unknown_variables() {
        let q = crate::parse_query("MATCH (a) WHERE z.X = 1 RETURN a").unwrap();
        let vars: HashMap<&str, usize> = [("a", 0)].into_iter().collect();
        assert!(matches!(
            plan_filter(&q, &vars),
            Err(TqlError::UnknownVariable(_))
        ));
    }
}
