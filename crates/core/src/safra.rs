//! Safra's termination detection algorithm (paper §6.2, reference [16]).
//!
//! Asynchronous computation has no supersteps and therefore no natural
//! barrier at which to declare the job finished or to cut a snapshot.
//! Trinity "calls Safra's termination detection algorithm to check whether
//! the system ceases": a token circulates the machine ring accumulating
//! per-machine message balances; the ring is quiet exactly when the token
//! returns to the initiator white with a zero total and the initiator
//! itself is white and passive.
//!
//! The rules (Dijkstra's note on Shmuel Safra's version):
//!
//! * every machine keeps a running balance `c_i` (messages sent −
//!   messages received) and a color (black after receiving any message);
//! * machine 0 initiates a white token with value 0;
//! * a machine holds the token until it is passive, then forwards it to
//!   the next machine with `q += c_i`; the token turns black if the
//!   machine is black; the machine turns white;
//! * back at machine 0 (passive): termination iff the token and machine 0
//!   are white and `q + c_0 == 0`; otherwise machine 0 starts a new round.
//!
//! This module is the pure protocol logic; `crate::async_compute` wires it
//! to the fabric.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

/// Token colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Color {
    White,
    Black,
}

/// The circulating token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Accumulated message balance of machines already visited this round.
    pub q: i64,
    pub color: Color,
    /// What the detection round is checking for (forwarded opaquely; lets
    /// one ring serve both job termination and snapshot quiescence).
    pub purpose: u8,
}

impl Token {
    /// A fresh white token for a new round.
    pub fn fresh(purpose: u8) -> Self {
        Token {
            q: 0,
            color: Color::White,
            purpose,
        }
    }

    /// Serialize for the wire.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(10);
        out.extend_from_slice(&self.q.to_le_bytes());
        out.push(match self.color {
            Color::White => 0,
            Color::Black => 1,
        });
        out.push(self.purpose);
        out
    }

    /// Deserialize from the wire.
    pub fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 10 {
            return None;
        }
        Some(Token {
            q: i64::from_le_bytes(data[..8].try_into().unwrap()),
            color: if data[8] == 0 {
                Color::White
            } else {
                Color::Black
            },
            purpose: data[9],
        })
    }
}

/// Per-machine Safra state. All operations are lock-free so the message
/// hot path never blocks on detection bookkeeping.
#[derive(Debug, Default)]
pub struct SafraState {
    /// Messages sent minus messages received (running total, never reset).
    balance: AtomicI64,
    /// Black after receiving a message; whitened when forwarding the token.
    black: AtomicBool,
}

impl SafraState {
    pub fn new() -> Self {
        SafraState::default()
    }

    /// Record a message send.
    pub fn on_send(&self) {
        self.balance.fetch_add(1, Ordering::AcqRel);
    }

    /// Record a message receipt (the machine turns black).
    pub fn on_receive(&self) {
        self.balance.fetch_sub(1, Ordering::AcqRel);
        self.black.store(true, Ordering::Release);
    }

    /// Current balance.
    pub fn balance(&self) -> i64 {
        self.balance.load(Ordering::Acquire)
    }

    /// Fold this machine into a token being forwarded; whitens the
    /// machine (rule 3).
    pub fn forward(&self, mut token: Token) -> Token {
        token.q += self.balance();
        if self.black.swap(false, Ordering::AcqRel) {
            token.color = Color::Black;
        }
        token
    }

    /// Machine-0 evaluation when the token completes a round (the machine
    /// must be passive, which the caller guarantees). `true` means the
    /// system has ceased.
    pub fn evaluate(&self, token: &Token) -> bool {
        let self_black = self.black.load(Ordering::Acquire);
        token.color == Color::White && !self_black && token.q + self.balance() == 0
    }

    /// Whiten machine 0 before it launches a retry round.
    pub fn whiten(&self) {
        self.black.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_roundtrips_on_the_wire() {
        let t = Token {
            q: -42,
            color: Color::Black,
            purpose: 7,
        };
        assert_eq!(Token::decode(&t.encode()), Some(t));
        assert_eq!(Token::decode(&[1, 2, 3]), None);
    }

    /// Simulate a quiet 4-machine ring: one full white round must detect
    /// termination.
    #[test]
    fn quiet_ring_terminates_in_one_round() {
        let machines: Vec<SafraState> = (0..4).map(|_| SafraState::new()).collect();
        let mut token = Token::fresh(0);
        for m in machines.iter().skip(1) {
            token = m.forward(token);
        }
        assert!(machines[0].evaluate(&token));
    }

    /// A message in flight (sent but not yet received) must block
    /// detection; after receipt the blackness forces one extra round.
    #[test]
    fn in_flight_message_blocks_then_blackness_forces_retry() {
        let machines: Vec<SafraState> = (0..3).map(|_| SafraState::new()).collect();
        machines[1].on_send(); // message to machine 2, still in flight
        let mut token = Token::fresh(0);
        token = machines[1].forward(token);
        token = machines[2].forward(token);
        assert!(
            !machines[0].evaluate(&token),
            "nonzero balance must block termination"
        );
        // The message lands: machine 2 turns black.
        machines[2].on_receive();
        // Round 2: balances now sum to zero, but machine 2 is black.
        machines[0].whiten();
        let mut token = Token::fresh(0);
        token = machines[1].forward(token);
        token = machines[2].forward(token);
        assert!(
            !machines[0].evaluate(&token),
            "black token must force another round"
        );
        // Round 3: quiet and white everywhere.
        let mut token = Token::fresh(0);
        token = machines[1].forward(token);
        token = machines[2].forward(token);
        assert!(machines[0].evaluate(&token));
    }

    /// The classic false-positive scenario Safra's colors exist for: a
    /// machine already visited by the token sends a message backward to a
    /// not-yet-visited machine, which consumes it before its visit. The
    /// receive blackens the receiver, so the round is rejected.
    #[test]
    fn backward_message_cannot_fake_termination() {
        let machines: Vec<SafraState> = (0..3).map(|_| SafraState::new()).collect();
        let mut token = Token::fresh(0);
        token = machines[1].forward(token); // machine 1 visited, balance 0
                                            // Machine 1 now sends to machine 2 — after its visit.
        machines[1].on_send();
        machines[2].on_receive(); // machine 2 consumes it pre-visit
        token = machines[2].forward(token);
        // The receive blackened machine 2, so the token is black
        // regardless of the accumulated balance.
        assert_eq!(token.color, Color::Black);
        assert!(!machines[0].evaluate(&token));
    }

    #[test]
    fn initiator_activity_blocks_termination() {
        let machines: Vec<SafraState> = (0..2).map(|_| SafraState::new()).collect();
        machines[0].on_send();
        machines[1].on_receive();
        let mut token = Token::fresh(0);
        token = machines[1].forward(token);
        // q == -1, machine 0 balance == +1: sums to zero, but machine 1
        // was black → rejected.
        assert!(!machines[0].evaluate(&token));
        // Next round is genuinely quiet.
        machines[0].whiten();
        let mut token = Token::fresh(0);
        token = machines[1].forward(token);
        assert!(machines[0].evaluate(&token));
    }
}
