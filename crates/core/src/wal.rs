//! Buffered logging for online updates (paper §6.2).
//!
//! Memory trunks are periodically snapshotted to TFS, but an update
//! applied after the last snapshot would die with its machine. "For
//! online update queries, we use the buffered logging mechanism proposed
//! in RAMCloud... the key idea is to log operations to remote memory
//! buffers before committing them to the local memory."
//!
//! [`LoggedStore`] wraps a cloud node: every mutating operation is first
//! appended (sequenced) to a log buffer in the memory of `replicas` other
//! machines, then applied. After a failure, [`replay_for`] collects the
//! surviving buffers for the dead machine's trunks and reapplies the
//! operations on the recovered trunks, closing the snapshot-to-crash
//! window. Once trunks are re-snapshotted, [`LoggedStore::truncate`]
//! discards the now-covered log entries.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use trinity_memcloud::{CellId, CloudError, CloudNode, MemoryCloud};
use trinity_net::{FrameBuf, MachineId};

use crate::proto;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogOp {
    Put(CellId, Vec<u8>),
    Append(CellId, Vec<u8>),
    Remove(CellId),
}

/// A sequenced log record: the origin machine's sequence number orders
/// replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    pub seq: u64,
    pub op: LogOp,
}

impl LogRecord {
    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&self.seq.to_le_bytes());
        match &self.op {
            LogOp::Put(id, bytes) => {
                out.push(0);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(bytes);
            }
            LogOp::Append(id, bytes) => {
                out.push(1);
                out.extend_from_slice(&id.to_le_bytes());
                out.extend_from_slice(bytes);
            }
            LogOp::Remove(id) => {
                out.push(2);
                out.extend_from_slice(&id.to_le_bytes());
            }
        }
        out
    }

    fn decode(data: &[u8]) -> Option<Self> {
        if data.len() < 17 {
            return None;
        }
        let seq = u64::from_le_bytes(data[..8].try_into().unwrap());
        let id = u64::from_le_bytes(data[9..17].try_into().unwrap());
        let op = match data[8] {
            0 => LogOp::Put(id, data[17..].to_vec()),
            1 => LogOp::Append(id, data[17..].to_vec()),
            2 => LogOp::Remove(id),
            _ => return None,
        };
        Some(LogRecord { seq, op })
    }
}

/// Remote log buffers held *for* other machines, keyed by origin.
#[derive(Debug, Default)]
struct LogBuffers {
    by_origin: HashMap<u16, Vec<LogRecord>>,
}

/// A cloud node whose mutations are made durable through remote memory
/// buffers before being applied.
pub struct LoggedStore {
    node: Arc<CloudNode>,
    machines: usize,
    replicas: usize,
    seq: AtomicU64,
}

impl std::fmt::Debug for LoggedStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LoggedStore")
            .field("machine", &self.node.machine())
            .finish()
    }
}

impl LoggedStore {
    /// Wrap `node`, registering the log-buffer protocol handlers.
    /// `replicas` is how many other machines hold each record (RAMCloud
    /// uses 1 memory replica plus disk; we default callers to 1–2).
    pub fn install(cloud: &MemoryCloud, machine: usize, replicas: usize) -> Arc<Self> {
        let node = Arc::clone(cloud.node(machine));
        let buffers = Arc::new(Mutex::new(LogBuffers::default()));
        let store = Arc::new(LoggedStore {
            node,
            machines: cloud.machines(),
            replicas: replicas.max(1),
            seq: AtomicU64::new(1),
        });
        // WAL_APPEND: hold a record for the origin machine.
        {
            let buffers = Arc::clone(&buffers);
            store
                .node
                .endpoint()
                .register(proto::WAL_APPEND, move |src, data| {
                    if let Some(rec) = LogRecord::decode(data) {
                        buffers.lock().by_origin.entry(src.0).or_default().push(rec);
                    }
                    Some(Vec::new())
                });
        }
        // WAL_FETCH: return (and keep) everything held for an origin.
        {
            let buffers = Arc::clone(&buffers);
            store
                .node
                .endpoint()
                .register(proto::WAL_FETCH, move |_src, data| {
                    if data.len() < 2 {
                        return Some(Vec::new());
                    }
                    let origin = u16::from_le_bytes(data[..2].try_into().unwrap());
                    let truncate = data.get(2) == Some(&1);
                    let mut buffers = buffers.lock();
                    let records = if truncate {
                        buffers.by_origin.remove(&origin).unwrap_or_default()
                    } else {
                        buffers.by_origin.get(&origin).cloned().unwrap_or_default()
                    };
                    let mut out = Vec::new();
                    for rec in &records {
                        let bytes = rec.encode();
                        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
                        out.extend_from_slice(&bytes);
                    }
                    Some(out)
                });
        }
        store
    }

    /// The machines that hold this machine's log (the next `replicas`
    /// machines on the ring).
    fn backup_machines(&self) -> Vec<MachineId> {
        let me = self.node.machine().0 as usize;
        (1..=self.replicas.min(self.machines - 1))
            .map(|i| MachineId(((me + i) % self.machines) as u16))
            .collect()
    }

    fn log(&self, op: &LogOp) -> Result<u64, CloudError> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let rec = LogRecord {
            seq,
            op: clone_op(op),
        };
        let bytes = rec.encode();
        for backup in self.backup_machines() {
            self.node
                .endpoint()
                .call(backup, proto::WAL_APPEND, &bytes)
                .map_err(CloudError::Net)?;
        }
        Ok(seq)
    }

    /// Durable put: logged remotely, then applied.
    pub fn put(&self, id: CellId, bytes: &[u8]) -> Result<(), CloudError> {
        self.log(&LogOp::Put(id, bytes.to_vec()))?;
        self.node.put(id, bytes)
    }

    /// Durable append.
    pub fn append(&self, id: CellId, bytes: &[u8]) -> Result<bool, CloudError> {
        self.log(&LogOp::Append(id, bytes.to_vec()))?;
        self.node.append(id, bytes)
    }

    /// Durable remove.
    pub fn remove(&self, id: CellId) -> Result<bool, CloudError> {
        self.log(&LogOp::Remove(id))?;
        self.node.remove(id)
    }

    /// Read-through (reads need no logging).
    pub fn get(&self, id: CellId) -> Result<Option<FrameBuf>, CloudError> {
        self.node.get(id)
    }

    /// The wrapped node.
    pub fn node(&self) -> &Arc<CloudNode> {
        &self.node
    }

    /// Drop remote log entries for this machine — call right after a
    /// fresh trunk snapshot covers them.
    pub fn truncate(&self) -> Result<(), CloudError> {
        let mut req = self.node.machine().0.to_le_bytes().to_vec();
        req.push(1);
        for backup in self.backup_machines() {
            self.node
                .endpoint()
                .call(backup, proto::WAL_FETCH, &req)
                .map_err(CloudError::Net)?;
        }
        Ok(())
    }
}

fn clone_op(op: &LogOp) -> LogOp {
    match op {
        LogOp::Put(id, b) => LogOp::Put(*id, b.clone()),
        LogOp::Append(id, b) => LogOp::Append(*id, b.clone()),
        LogOp::Remove(id) => LogOp::Remove(*id),
    }
}

/// After a machine failure was recovered from (stale) TFS snapshots,
/// replay the buffered logs against the *lost* trunks only: the cells
/// whose trunks lived on the failed machine at crash time. Surviving
/// cells already reflect every logged operation, so replaying onto them
/// would double-apply non-idempotent ops (appends).
///
/// Records from every origin machine are collected from every surviving
/// buffer holder, deduplicated per `(origin, seq)`, ordered per origin,
/// filtered to the lost trunks, and reapplied through `via`. Returns the
/// number of operations replayed.
pub fn replay_lost(
    cloud: &MemoryCloud,
    lost_trunks: &std::collections::HashSet<u64>,
    via: usize,
) -> Result<usize, CloudError> {
    let node = cloud.node(via);
    let table = node.table();
    let mut records: Vec<(u16, LogRecord)> = Vec::new();
    for origin in 0..cloud.machines() as u16 {
        let mut req = origin.to_le_bytes().to_vec();
        req.push(0);
        for holder in 0..cloud.machines() {
            if cloud.fabric().is_dead(MachineId(holder as u16)) {
                continue;
            }
            let raw = node
                .endpoint()
                .call(MachineId(holder as u16), proto::WAL_FETCH, &req)
                .map_err(CloudError::Net)?;
            let mut at = 0usize;
            while at + 4 <= raw.len() {
                let len = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap()) as usize;
                at += 4;
                if let Some(rec) = LogRecord::decode(&raw[at..at + len]) {
                    records.push((origin, rec));
                }
                at += len;
            }
        }
    }
    records.sort_by_key(|(origin, r)| (*origin, r.seq));
    records.dedup_by_key(|(origin, r)| (*origin, r.seq));
    let mut replayed = 0usize;
    for (_, rec) in records {
        let id = match &rec.op {
            LogOp::Put(id, _) | LogOp::Append(id, _) | LogOp::Remove(id) => *id,
        };
        if !lost_trunks.contains(&table.trunk_of(id)) {
            continue;
        }
        replayed += 1;
        match rec.op {
            LogOp::Put(id, bytes) => node.put(id, &bytes)?,
            LogOp::Append(id, bytes) => {
                node.append(id, &bytes)?;
            }
            LogOp::Remove(id) => {
                let _ = node.remove(id);
            }
        }
    }
    Ok(replayed)
}

/// Full failure-recovery flow with buffered-logging replay: capture the
/// failed machine's trunk set, run the mechanical recovery (reassign +
/// reload from TFS), then replay the logs against the lost trunks.
pub fn recover_with_wal(cloud: &MemoryCloud, failed: usize) -> Result<usize, CloudError> {
    let via = (0..cloud.machines())
        .find(|&m| m != failed && !cloud.fabric().is_dead(MachineId(m as u16)))
        .expect("at least one survivor");
    let lost: std::collections::HashSet<u64> = cloud
        .node(via)
        .table()
        .trunks_of(MachineId(failed as u16))
        .into_iter()
        .collect();
    cloud.recover(failed)?;
    replay_lost(cloud, &lost, via)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_memcloud::CloudConfig;

    #[test]
    fn record_encoding_roundtrips() {
        for op in [
            LogOp::Put(7, b"abc".to_vec()),
            LogOp::Append(9, vec![]),
            LogOp::Remove(1),
        ] {
            let rec = LogRecord { seq: 42, op };
            assert_eq!(LogRecord::decode(&rec.encode()), Some(rec));
        }
        assert_eq!(LogRecord::decode(b"short"), None);
    }

    #[test]
    fn logged_updates_survive_a_crash_after_the_snapshot() {
        let cloud = MemoryCloud::new(CloudConfig::small(4));
        let stores: Vec<Arc<LoggedStore>> =
            (0..4).map(|m| LoggedStore::install(&cloud, m, 2)).collect();
        // Phase 1: some data, snapshotted.
        for i in 0..50u64 {
            stores[0].put(i, format!("base-{i}").as_bytes()).unwrap();
        }
        cloud.backup_all().unwrap();
        // Phase 2: updates after the snapshot — logged but not snapshotted.
        for i in 0..50u64 {
            stores[1]
                .put(100 + i, format!("fresh-{i}").as_bytes())
                .unwrap();
            if i % 2 == 0 {
                stores[1].put(i, format!("updated-{i}").as_bytes()).unwrap();
            }
        }
        stores[2].append(100, b"+tail").unwrap();
        stores[3].remove(49).unwrap();
        // Crash machine 2; recover trunks from the (stale) snapshots and
        // replay the buffered logs over the lost trunks.
        cloud.kill_machine(2);
        let replayed = recover_with_wal(&cloud, 2).unwrap();
        assert!(
            replayed > 0,
            "some operations must have targeted the lost trunks"
        );
        for i in 0..50u64 {
            let want: Option<Vec<u8>> = if i == 49 {
                None
            } else if i % 2 == 0 {
                Some(format!("updated-{i}").into_bytes())
            } else {
                Some(format!("base-{i}").into_bytes())
            };
            assert_eq!(
                cloud.node(0).get(i).unwrap().as_deref(),
                want.as_deref(),
                "cell {i}"
            );
        }
        for i in 0..50u64 {
            let mut want = format!("fresh-{i}").into_bytes();
            if i == 0 {
                want.extend_from_slice(b"+tail");
            }
            assert_eq!(
                cloud.node(0).get(100 + i).unwrap().as_deref(),
                Some(&want[..]),
                "cell {}",
                100 + i
            );
        }
        cloud.shutdown();
    }

    #[test]
    fn truncate_discards_covered_records() {
        let cloud = MemoryCloud::new(CloudConfig::small(3));
        // Install on every machine so each hosts the buffer protocol.
        let stores: Vec<_> = (0..3).map(|m| LoggedStore::install(&cloud, m, 1)).collect();
        let store = &stores[0];
        store.put(1, b"x").unwrap();
        store.put(2, b"y").unwrap();
        store.truncate().unwrap();
        store.put(3, b"z").unwrap();
        // Fetch machine 0's buffers: only the post-truncate record remains.
        let mut req = 0u16.to_le_bytes().to_vec();
        req.push(0);
        let raw = cloud
            .node(0)
            .endpoint()
            .call(MachineId(1), proto::WAL_FETCH, &req)
            .unwrap();
        let mut count = 0;
        let mut at = 0;
        while at + 4 <= raw.len() {
            let len = u32::from_le_bytes(raw[at..at + 4].try_into().unwrap()) as usize;
            at += 4 + len;
            count += 1;
        }
        assert_eq!(
            count, 1,
            "truncate should have dropped the first two records"
        );
        cloud.shutdown();
    }
}
