//! Asynchronous recursive exploration — the paper's literal §5.1
//! mechanism.
//!
//! "The algorithm simply sends asynchronous requests recursively to remote
//! machines, and the performance is achieved by efficient memory access
//! and optimization of network communication."
//!
//! Unlike the level-synchronous [`crate::online::Explorer`] (which the
//! coordinator drives hop by hop), the asynchronous explorer has **no
//! coordinator in the data path**: a machine receiving a frontier batch
//! expands it against its local cells and immediately forwards the
//! discovered neighbors to *their* owners, recursively, with the hop
//! budget decremented in flight. Three properties make it correct:
//!
//! * **owner-side deduplication** — every cell has exactly one owner, so
//!   each machine's local visited-set globally deduplicates its own
//!   cells, with no shared state;
//! * **monotone depth refinement** — asynchrony can deliver a long path
//!   before a short one; a node reached again at a *smaller* depth is
//!   re-expanded with the larger remaining budget, so final depths equal
//!   BFS distances;
//! * **distributed termination detection** — batches form a spawn tree
//!   and acknowledgments flow leaf-to-root (Dijkstra–Scholten): a batch
//!   acks its parent only after all the batches it spawned have acked it,
//!   so the seed batch's ack reaching the coordinator proves global
//!   quiescence even under arbitrary message reordering.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use trinity_graph::GraphHandle;
use trinity_memcloud::{CellId, MemoryCloud};
use trinity_net::MachineId;

use crate::online::ExplorationResult;
use crate::proto;

/// Per-query, per-machine exploration state.
#[derive(Default)]
struct QueryLocal {
    /// Best (smallest) depth at which each locally-owned node was seen.
    depth: HashMap<CellId, u32>,
    /// Locally-owned nodes whose attributes matched the pattern.
    matches: Vec<CellId>,
}

/// A batch awaiting acknowledgments from the batches it spawned.
struct PendingBatch {
    parent: MachineId,
    parent_batch: u64,
    remaining: usize,
}

struct MachineState {
    queries: Mutex<HashMap<u64, QueryLocal>>,
    /// (query, local batch id) → pending ack bookkeeping.
    pending: Mutex<HashMap<(u64, u64), PendingBatch>>,
    /// Coordinator side: queries whose seed batch has been fully acked.
    done: Mutex<HashMap<u64, bool>>,
    cv: Condvar,
    next_batch: AtomicU64,
}

/// Expansion pool tuning for the batch handler.
#[derive(Debug, Clone, Copy, Default)]
pub struct AsyncExplorerConfig {
    /// Worker threads per machine for child-batch expansion. `0` means
    /// trunk-aligned, like [`crate::BspConfig::compute_threads`].
    pub compute_threads: usize,
}

/// Batches below this size expand serially; see
/// [`crate::online`]'s identical threshold for rationale.
const PARALLEL_BATCH: usize = 256;

/// The asynchronous recursive exploration engine.
pub struct AsyncExplorer {
    cloud: Arc<MemoryCloud>,
    states: Vec<Arc<MachineState>>,
    /// Resolved expansion-pool width per machine.
    workers: Vec<usize>,
    next_query: AtomicU64,
}

impl std::fmt::Debug for AsyncExplorer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncExplorer")
            .field("machines", &self.states.len())
            .finish()
    }
}

// --- Wire formats ---------------------------------------------------------

/// EXPLORE_ASYNC: qid | parent machine | parent batch | depth | hops_left |
/// pattern | ids.
fn encode_batch(
    qid: u64,
    parent: MachineId,
    parent_batch: u64,
    depth: u32,
    hops_left: u32,
    pattern: &[u8],
    ids: &[CellId],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + pattern.len() + ids.len() * 8);
    out.extend_from_slice(&qid.to_le_bytes());
    out.extend_from_slice(&parent.0.to_le_bytes());
    out.extend_from_slice(&parent_batch.to_le_bytes());
    out.extend_from_slice(&depth.to_le_bytes());
    out.extend_from_slice(&hops_left.to_le_bytes());
    out.extend_from_slice(&(pattern.len() as u16).to_le_bytes());
    out.extend_from_slice(pattern);
    out.extend_from_slice(&(ids.len() as u32).to_le_bytes());
    for id in ids {
        out.extend_from_slice(&id.to_le_bytes());
    }
    out
}

struct Batch {
    qid: u64,
    parent: MachineId,
    parent_batch: u64,
    depth: u32,
    hops_left: u32,
    pattern: Vec<u8>,
    ids: Vec<CellId>,
}

fn decode_batch(data: &[u8]) -> Option<Batch> {
    if data.len() < 28 {
        return None;
    }
    let qid = u64::from_le_bytes(data[0..8].try_into().unwrap());
    let parent = MachineId(u16::from_le_bytes(data[8..10].try_into().unwrap()));
    let parent_batch = u64::from_le_bytes(data[10..18].try_into().unwrap());
    let depth = u32::from_le_bytes(data[18..22].try_into().unwrap());
    let hops_left = u32::from_le_bytes(data[22..26].try_into().unwrap());
    let plen = u16::from_le_bytes(data[26..28].try_into().unwrap()) as usize;
    let pattern = data.get(28..28 + plen)?.to_vec();
    let rest = &data[28 + plen..];
    if rest.len() < 4 {
        return None;
    }
    let n = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
    let ids = rest
        .get(4..4 + n * 8)?
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    Some(Batch {
        qid,
        parent,
        parent_batch,
        depth,
        hops_left,
        pattern,
        ids,
    })
}

/// EXPLORE_REPORT (ack): qid | acked batch id.
fn encode_ack(qid: u64, batch: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&qid.to_le_bytes());
    out.extend_from_slice(&batch.to_le_bytes());
    out
}

impl AsyncExplorer {
    /// Install the asynchronous exploration protocol on every slave.
    pub fn install(cloud: Arc<MemoryCloud>) -> Arc<Self> {
        Self::install_with(cloud, AsyncExplorerConfig::default())
    }

    /// [`AsyncExplorer::install`] with explicit expansion-pool tuning.
    pub fn install_with(cloud: Arc<MemoryCloud>, cfg: AsyncExplorerConfig) -> Arc<Self> {
        let workers: Vec<usize> = (0..cloud.machines())
            .map(|m| {
                let trunks = cloud.node(m).table().trunks_of(MachineId(m as u16)).len();
                crate::bsp::resolve_compute_threads(cfg.compute_threads, trunks)
            })
            .collect();
        let states: Vec<Arc<MachineState>> = (0..cloud.machines())
            .map(|_| {
                Arc::new(MachineState {
                    queries: Mutex::new(HashMap::new()),
                    pending: Mutex::new(HashMap::new()),
                    done: Mutex::new(HashMap::new()),
                    cv: Condvar::new(),
                    next_batch: AtomicU64::new(1),
                })
            })
            .collect();
        let explorer = Arc::new(AsyncExplorer {
            cloud: Arc::clone(&cloud),
            states,
            workers,
            next_query: AtomicU64::new(1),
        });
        for m in 0..cloud.machines() {
            let endpoint = cloud.node(m).endpoint();
            // Frontier batches.
            {
                let explorer = Arc::clone(&explorer);
                let handle = GraphHandle::new(Arc::clone(cloud.node(m)));
                endpoint.register(proto::EXPLORE_ASYNC, move |_src, data| {
                    if let Some(batch) = decode_batch(data) {
                        explorer.handle_batch(m, &handle, batch);
                    }
                    None
                });
            }
            // Acks: a child batch finished; maybe complete ours too.
            {
                let explorer = Arc::clone(&explorer);
                endpoint.register(proto::EXPLORE_REPORT, move |_src, data| {
                    if data.len() >= 16 {
                        let qid = u64::from_le_bytes(data[..8].try_into().unwrap());
                        let batch = u64::from_le_bytes(data[8..16].try_into().unwrap());
                        explorer.handle_ack(m, qid, batch);
                    }
                    None
                });
            }
            // Result collection: per-depth counts + matches, then cleanup.
            {
                let state = Arc::clone(&explorer.states[m]);
                endpoint.register(proto::EXPLORE_COLLECT, move |_src, data| {
                    if data.len() < 8 {
                        return Some(Vec::new());
                    }
                    let qid = u64::from_le_bytes(data[..8].try_into().unwrap());
                    let local = state.queries.lock().remove(&qid).unwrap_or_default();
                    let mut out = Vec::new();
                    out.extend_from_slice(&(local.depth.len() as u32).to_le_bytes());
                    for d in local.depth.values() {
                        out.extend_from_slice(&d.to_le_bytes());
                    }
                    out.extend_from_slice(&(local.matches.len() as u32).to_le_bytes());
                    for id in &local.matches {
                        out.extend_from_slice(&id.to_le_bytes());
                    }
                    Some(out)
                });
            }
        }
        explorer
    }

    /// Process one inbound frontier batch on machine `m`.
    fn handle_batch(&self, m: usize, handle: &GraphHandle, batch: Batch) {
        let endpoint = self.cloud.node(m).endpoint();
        // A lapsed deadline (carried in by the envelope and installed on
        // this worker by the fabric) prunes the whole subtree: ack the
        // parent without expanding, so Dijkstra–Scholten termination still
        // completes — with partial results — instead of burning CPU on a
        // query the client has abandoned. The ack must always flow; only
        // the expansion is skipped.
        if trinity_net::deadline_expired() {
            endpoint.send(
                batch.parent,
                proto::EXPLORE_REPORT,
                &encode_ack(batch.qid, batch.parent_batch),
            );
            endpoint.flush_to(batch.parent);
            return;
        }
        let table = self.cloud.node(m).table();
        // Batches are routed to owners, but the sender's table may be
        // stale: ids we no longer own fall back to remote reads inside
        // `with_node`. Batch-warm the read cache so those stragglers cost
        // one envelope per actual owner instead of one round-trip each.
        let me = MachineId(m as u16);
        let stragglers: Vec<CellId> = batch
            .ids
            .iter()
            .copied()
            .filter(|&id| table.machine_of(id) != me)
            .collect();
        if !stragglers.is_empty() {
            handle.prefetch(&stragglers);
        }
        // Phase 1: local dedup + match + depth refinement.
        let mut fresh: Vec<CellId> = Vec::new();
        {
            let mut queries = self.states[m].queries.lock();
            let local = queries.entry(batch.qid).or_default();
            for &id in &batch.ids {
                match local.depth.get(&id) {
                    Some(&best) if best <= batch.depth => continue,
                    seen => {
                        let first_visit = seen.is_none();
                        local.depth.insert(id, batch.depth);
                        if first_visit && !batch.pattern.is_empty() {
                            let matched = handle
                                .with_node(id, |view| {
                                    view.attrs()
                                        .windows(batch.pattern.len())
                                        .any(|w| w == &batch.pattern[..])
                                })
                                .ok()
                                .flatten()
                                .unwrap_or(false);
                            if matched {
                                local.matches.push(id);
                            }
                        }
                        if batch.hops_left > 0 {
                            fresh.push(id);
                        }
                    }
                }
            }
        }
        // Phase 2: build child batches grouped by owner. Large frontiers
        // split across a scoped pool, each chunk grouping into private
        // per-owner vectors merged afterwards; the sort + dedup below
        // makes the child batches identical to the serial grouping.
        let machines = self.cloud.machines();
        let pool = self.workers[m];
        let mut by_machine: Vec<Vec<CellId>> = vec![Vec::new(); machines];
        if pool > 1 && fresh.len() >= PARALLEL_BATCH {
            let chunk = fresh.len().div_ceil(pool);
            let parts: Vec<Vec<Vec<CellId>>> = std::thread::scope(|scope| {
                let joins: Vec<_> = fresh
                    .chunks(chunk)
                    .map(|part| {
                        let table = &table;
                        scope.spawn(move || {
                            let mut mine: Vec<Vec<CellId>> = vec![Vec::new(); machines];
                            for &id in part {
                                let _ = handle.with_node(id, |view| {
                                    for t in view.outs() {
                                        mine[table.machine_of(t).0 as usize].push(t);
                                    }
                                });
                            }
                            mine
                        })
                    })
                    .collect();
                joins
                    .into_iter()
                    .map(|j| j.join().expect("expand pool worker panicked"))
                    .collect()
            });
            for mine in parts {
                for (owner, mut ids) in mine.into_iter().enumerate() {
                    by_machine[owner].append(&mut ids);
                }
            }
        } else {
            for &id in &fresh {
                let _ = handle.with_node(id, |view| {
                    for t in view.outs() {
                        by_machine[table.machine_of(t).0 as usize].push(t);
                    }
                });
            }
        }
        let children: Vec<(MachineId, Vec<CellId>)> = by_machine
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .map(|(owner, mut b)| {
                b.sort_unstable();
                b.dedup();
                (MachineId(owner as u16), b)
            })
            .collect();
        if children.is_empty() {
            // Leaf: ack the parent immediately.
            endpoint.send(
                batch.parent,
                proto::EXPLORE_REPORT,
                &encode_ack(batch.qid, batch.parent_batch),
            );
            endpoint.flush_to(batch.parent);
            return;
        }
        // Register our pending record BEFORE any child can possibly ack.
        let my_batch = self.states[m].next_batch.fetch_add(1, Ordering::Relaxed);
        self.states[m].pending.lock().insert(
            (batch.qid, my_batch),
            PendingBatch {
                parent: batch.parent,
                parent_batch: batch.parent_batch,
                remaining: children.len(),
            },
        );
        for (owner, ids) in children {
            let payload = encode_batch(
                batch.qid,
                MachineId(m as u16),
                my_batch,
                batch.depth + 1,
                batch.hops_left - 1,
                &batch.pattern,
                &ids,
            );
            endpoint.send(owner, proto::EXPLORE_ASYNC, &payload);
            endpoint.flush_to(owner);
        }
    }

    /// Process an ack for one of machine `m`'s batches (or, for batch id
    /// 0, the seed ack completing a query this machine coordinates).
    fn handle_ack(&self, m: usize, qid: u64, batch: u64) {
        if batch == 0 {
            let state = &self.states[m];
            state.done.lock().insert(qid, true);
            state.cv.notify_all();
            return;
        }
        let completed = {
            let mut pending = self.states[m].pending.lock();
            match pending.get_mut(&(qid, batch)) {
                Some(p) => {
                    p.remaining -= 1;
                    if p.remaining == 0 {
                        pending.remove(&(qid, batch))
                    } else {
                        None
                    }
                }
                None => None,
            }
        };
        if let Some(p) = completed {
            let endpoint = self.cloud.node(m).endpoint();
            endpoint.send(
                p.parent,
                proto::EXPLORE_REPORT,
                &encode_ack(qid, p.parent_batch),
            );
            endpoint.flush_to(p.parent);
        }
    }

    /// Explore the `hops`-neighborhood of `start` from machine `from`,
    /// asynchronously and recursively. Semantics match
    /// [`crate::online::Explorer::explore`].
    pub fn explore(
        &self,
        from: usize,
        start: CellId,
        hops: usize,
        pattern: &[u8],
    ) -> ExplorationResult {
        let qid = self.next_query.fetch_add(1, Ordering::Relaxed);
        let endpoint = self.cloud.node(from).endpoint();
        self.states[from].done.lock().insert(qid, false);
        // Seed batch: parent = the coordinator, parent batch id 0.
        let seed = encode_batch(
            qid,
            MachineId(from as u16),
            0,
            0,
            hops as u32,
            pattern,
            &[start],
        );
        let owner = self.cloud.node(from).table().machine_of(start);
        endpoint.send(owner, proto::EXPLORE_ASYNC, &seed);
        endpoint.flush_to(owner);
        // Wait for the seed's ack.
        {
            let state = &self.states[from];
            let mut done = state.done.lock();
            let deadline = std::time::Instant::now() + Duration::from_secs(60);
            while !done.get(&qid).copied().unwrap_or(true) {
                if state.cv.wait_until(&mut done, deadline).timed_out() {
                    break;
                }
            }
            done.remove(&qid);
        }
        // Collect per-machine results.
        let mut per_hop = vec![0usize; hops + 1];
        let mut matches: Vec<CellId> = Vec::new();
        let mut machines_with_data = 0usize;
        for peer in 0..self.cloud.machines() as u16 {
            let Ok(reply) =
                endpoint.call(MachineId(peer), proto::EXPLORE_COLLECT, &qid.to_le_bytes())
            else {
                continue;
            };
            let mut at = 0usize;
            let n = u32::from_le_bytes(reply[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            if n > 0 {
                machines_with_data += 1;
            }
            for _ in 0..n {
                let d = u32::from_le_bytes(reply[at..at + 4].try_into().unwrap()) as usize;
                at += 4;
                if d < per_hop.len() {
                    per_hop[d] += 1;
                }
            }
            let nm = u32::from_le_bytes(reply[at..at + 4].try_into().unwrap()) as usize;
            at += 4;
            for _ in 0..nm {
                matches.push(u64::from_le_bytes(reply[at..at + 8].try_into().unwrap()));
                at += 8;
            }
        }
        matches.sort_unstable();
        matches.dedup();
        // Trim trailing empty hops (mirrors the synchronous explorer's
        // early stop on an exhausted frontier).
        while per_hop.len() > 1 && *per_hop.last().unwrap() == 0 {
            per_hop.pop();
        }
        ExplorationResult {
            per_hop,
            matches,
            batches: machines_with_data,
            deadline_exceeded: false,
            cancelled: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::Explorer;
    use trinity_graph::{load_graph, Csr, LoadOptions};
    use trinity_memcloud::CloudConfig;

    fn both_explorers(
        csr: &Csr,
        machines: usize,
        attrs: Option<Arc<dyn Fn(u64) -> Vec<u8> + Send + Sync>>,
    ) -> (Arc<MemoryCloud>, Arc<Explorer>, Arc<AsyncExplorer>) {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(machines)));
        load_graph(
            Arc::clone(&cloud),
            csr,
            &LoadOptions {
                with_in_links: false,
                attrs,
            },
        )
        .unwrap();
        let sync = Explorer::install(Arc::clone(&cloud));
        let asyn = AsyncExplorer::install(Arc::clone(&cloud));
        (cloud, sync, asyn)
    }

    #[test]
    fn async_matches_sync_on_a_path() {
        let edges: Vec<(u64, u64)> = (0..19u64).map(|v| (v, v + 1)).collect();
        let csr = Csr::undirected_from_edges(20, &edges, true);
        let (cloud, sync, asyn) = both_explorers(&csr, 3, None);
        for hops in 0..5 {
            let a = asyn.explore(0, 10, hops, b"");
            let s = sync.explore(0, 10, hops, b"");
            assert_eq!(a.per_hop, s.per_hop, "hops={hops}");
        }
        cloud.shutdown();
    }

    #[test]
    fn async_matches_sync_on_random_social_graphs() {
        for seed in [3u64, 7, 11] {
            let csr = trinity_graphgen::social(300, 8, seed);
            let (cloud, sync, asyn) = both_explorers(&csr, 4, None);
            for hops in [1usize, 2, 3, 5] {
                let a = asyn.explore(1, 5, hops, b"");
                let s = sync.explore(1, 5, hops, b"");
                assert_eq!(a.per_hop, s.per_hop, "seed={seed} hops={hops}");
                assert_eq!(a.visited(), s.visited());
            }
            cloud.shutdown();
        }
    }

    #[test]
    fn async_pattern_matching_agrees_with_sync() {
        let csr = trinity_graphgen::social(400, 10, 5);
        let seed = 13u64;
        let attrs: Arc<dyn Fn(u64) -> Vec<u8> + Send + Sync> =
            Arc::new(move |v| trinity_graphgen::names::name_for(seed, v).into_bytes());
        let (cloud, sync, asyn) = both_explorers(&csr, 3, Some(attrs));
        let a = asyn.explore(0, 9, 3, b"David");
        let s = sync.explore(0, 9, 3, b"David");
        assert_eq!(a.matches, s.matches);
        assert_eq!(a.per_hop, s.per_hop);
        cloud.shutdown();
    }

    #[test]
    fn concurrent_async_queries_do_not_interfere() {
        let csr = trinity_graphgen::social(400, 10, 9);
        let (cloud, sync, asyn) = both_explorers(&csr, 4, None);
        let expects: Vec<_> = (0..6u64)
            .map(|s| sync.explore(0, s * 50, 2, b"").per_hop)
            .collect();
        std::thread::scope(|scope| {
            for (i, expect) in expects.iter().enumerate() {
                let asyn = Arc::clone(&asyn);
                scope.spawn(move || {
                    let r = asyn.explore(i % 4, i as u64 * 50, 2, b"");
                    assert_eq!(&r.per_hop, expect, "query {i}");
                });
            }
        });
        cloud.shutdown();
    }

    #[test]
    fn zero_hops_and_isolated_starts() {
        let csr = Csr::undirected_from_edges(5, &[(0, 1)], true);
        let (cloud, _sync, asyn) = both_explorers(&csr, 2, None);
        let r = asyn.explore(0, 3, 4, b""); // node 3 is isolated
        assert_eq!(r.visited(), 1);
        let r = asyn.explore(1, 0, 0, b"");
        assert_eq!(r.visited(), 1);
        cloud.shutdown();
    }

    #[test]
    fn no_leaked_bookkeeping_after_queries() {
        let csr = trinity_graphgen::social(200, 8, 2);
        let (cloud, _sync, asyn) = both_explorers(&csr, 3, None);
        for q in 0..10u64 {
            asyn.explore((q % 3) as usize, q * 13, 3, b"");
        }
        for state in &asyn.states {
            assert!(
                state.pending.lock().is_empty(),
                "pending batch records leaked"
            );
            assert!(state.queries.lock().is_empty(), "query state not collected");
            assert!(state.done.lock().is_empty(), "coordinator state leaked");
        }
        cloud.shutdown();
    }
}
