//! The Trinity graph engine.
//!
//! This crate assembles the paper's system on top of the substrates:
//!
//! * [`cluster`] — the three component roles of Figure 1: *slaves* (store
//!   data, run computation), *proxies* (middle-tier aggregators that own
//!   no data), and *clients* (library handles into the cluster);
//! * [`online`] — traversal-based online query processing (§5.1): batched
//!   multi-hop exploration with per-machine fan-out, the engine under
//!   people search and subgraph matching;
//! * [`bsp`] — the vertex-centric offline runtime (§5.3) supporting both
//!   the *general* (Pregel-style, message any vertex) and *restrictive*
//!   (message a fixed set, usually neighbors) models;
//! * [`hub`] — the §5.4 message-passing optimization: hub-vertex messages
//!   are delivered once per machine per iteration and fanned out locally
//!   through a subscriber index;
//! * [`residency`] — the Type A / Type B memory-residency model of
//!   Figure 10, including the paper's memory-savings formula;
//! * [`prefetch`] — the bucket-schedule trunk prefetcher that pipelines
//!   TFS fault-ins against compute when trunks are tiered out-of-core;
//! * [`safra`] — Safra's termination-detection algorithm (§6.2);
//! * [`async_compute`] — asynchronous (superstep-free) vertex computation
//!   with periodic-interruption snapshots;
//! * [`checkpoint`] — BSP checkpointing to TFS and restart;
//! * [`wal`] — buffered logging for online update durability (RAMCloud
//!   style, §6.2);
//! * [`recovery`] — leader election over the TFS flag, heartbeat-driven
//!   failure detection, and addressing-table recovery.

pub mod async_compute;
pub mod bsp;
pub mod checkpoint;
pub mod cluster;
pub mod cputime;
pub mod hub;
pub mod incremental;
pub mod minitx;
pub mod online;
pub mod online_async;
pub mod prefetch;
pub mod recovery;
pub mod residency;
pub mod safra;
pub mod streaming;
pub mod wal;

pub use bsp::{
    resolve_compute_threads, BspConfig, BspResult, BspRunner, MessagingMode, ResumePoint,
    SuperstepHook, SuperstepReport, VertexContext, VertexProgram,
};
pub use cluster::{TrinityClient, TrinityCluster, TrinityConfig, TrinityProxy};
pub use incremental::{
    GatherCtx, GatherMode, GatherProgram, InContribution, IncrementalBsp, IncrementalConfig,
    MinLabel, PageRankGather, RefreshReport,
};
pub use online::{
    explore_via, CallHook, ExplorationResult, ExploreOptions, Explorer, ExplorerConfig,
};
pub use prefetch::BucketPrefetcher;
pub use streaming::{
    CommittedBatch, DirtySet, Mutation, MutationBatch, MutationLog, StreamingIngest, Topology,
};

/// Runtime protocol ids (range reserved by `trinity_net::proto`).
pub(crate) mod proto {
    use trinity_net::ProtoId;
    const BASE: ProtoId = trinity_net::proto::FIRST_RUNTIME;
    /// Online traversal: expand a batch of frontier nodes.
    pub const EXPAND: ProtoId = BASE;
    /// BSP: a packed batch of vertex messages.
    pub const BSP_MSG: ProtoId = BASE + 1;
    /// BSP: end-of-superstep control record (message counts).
    pub const BSP_FENCE: ProtoId = BASE + 2;
    /// Hub optimization: a hub broadcast value.
    pub const BSP_HUB: ProtoId = BASE + 3;
    /// Async compute: a vertex message.
    pub const ASYNC_MSG: ProtoId = BASE + 4;
    /// Safra: the termination-detection token.
    pub const SAFRA_TOKEN: ProtoId = BASE + 5;
    /// Async compute: pause/resume interruption signal.
    pub const ASYNC_INTERRUPT: ProtoId = BASE + 6;
    /// Recovery: leader announces a new addressing table epoch.
    pub const TABLE_BCAST: ProtoId = BASE + 7;
    /// Recovery: a machine reports a peer failure to the leader.
    pub const REPORT_FAILURE: ProtoId = BASE + 8;
    /// Buffered logging: replicate a log record to a remote buffer.
    pub const WAL_APPEND: ProtoId = BASE + 9;
    /// Buffered logging: fetch a failed machine's remote buffer.
    pub const WAL_FETCH: ProtoId = BASE + 10;
    /// Hub optimization: hub-subscription discovery at job setup.
    pub const BSP_HUB_SETUP: ProtoId = BASE + 11;
    /// Mini-transactions: prepare (lock + validate + read).
    pub const MTX_PREPARE: ProtoId = BASE + 12;
    /// Mini-transactions: commit (apply writes, release locks).
    pub const MTX_COMMIT: ProtoId = BASE + 13;
    /// Mini-transactions: abort (release locks).
    pub const MTX_ABORT: ProtoId = BASE + 14;
    /// Asynchronous exploration: a frontier batch.
    pub const EXPLORE_ASYNC: ProtoId = BASE + 15;
    /// Asynchronous exploration: progress report to the coordinator.
    pub const EXPLORE_REPORT: ProtoId = BASE + 16;
    /// Asynchronous exploration: collect per-machine results.
    pub const EXPLORE_COLLECT: ProtoId = BASE + 17;
}
