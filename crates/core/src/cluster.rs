//! Trinity cluster roles (paper §2, Figure 1).
//!
//! A Trinity system consists of *slaves* (each stores a portion of the
//! data and processes messages), optional *proxies* (middle tier — they
//! handle messages but own no data, e.g. dispatching a query to all
//! slaves and aggregating partial results), and *clients* (user-side
//! library handles that talk to slaves and proxies through the Trinity
//! APIs).
//!
//! In this reproduction all roles share one fabric: slaves occupy machine
//! ids `[0, slaves)`, proxies `[slaves, slaves + proxies)`, and clients
//! attach to dedicated endpoints after those.

use std::sync::Arc;

use trinity_graph::GraphHandle;
use trinity_memcloud::{CloudConfig, CloudError, MemoryCloud};
use trinity_net::{Endpoint, FrameBuf, MachineId, ProtoId};

/// Cluster deployment shape.
#[derive(Debug, Clone)]
pub struct TrinityConfig {
    /// Memory-cloud (slave) configuration.
    pub cloud: CloudConfig,
    /// Number of proxy endpoints.
    pub proxies: usize,
    /// Number of client endpoints.
    pub clients: usize,
}

impl TrinityConfig {
    /// `slaves` slaves, no proxies, one client; small trunks (tests).
    pub fn small(slaves: usize) -> Self {
        TrinityConfig {
            cloud: CloudConfig::small(slaves),
            proxies: 0,
            clients: 1,
        }
        .finalize()
    }

    /// `slaves` slaves, `proxies` proxies, one client; small trunks.
    pub fn with_proxies(slaves: usize, proxies: usize) -> Self {
        TrinityConfig {
            cloud: CloudConfig::small(slaves),
            proxies,
            clients: 1,
        }
        .finalize()
    }

    fn finalize(mut self) -> Self {
        self.cloud.extra_machines = self.proxies + self.clients;
        self
    }
}

/// A running Trinity cluster.
pub struct TrinityCluster {
    cloud: Arc<MemoryCloud>,
    slaves: usize,
    proxies: Vec<TrinityProxy>,
    clients: Vec<TrinityClient>,
}

impl std::fmt::Debug for TrinityCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrinityCluster")
            .field("slaves", &self.slaves)
            .field("proxies", &self.proxies.len())
            .field("clients", &self.clients.len())
            .finish()
    }
}

impl TrinityCluster {
    /// Bring up the cluster.
    pub fn new(mut cfg: TrinityConfig) -> Self {
        cfg.cloud.extra_machines = cfg.proxies + cfg.clients;
        let slaves = cfg.cloud.machines;
        let cloud = Arc::new(MemoryCloud::new(cfg.cloud));
        let proxies = (0..cfg.proxies)
            .map(|i| TrinityProxy {
                endpoint: cloud.fabric().endpoint(MachineId((slaves + i) as u16)),
                slaves,
            })
            .collect();
        let clients = (0..cfg.clients)
            .map(|i| TrinityClient {
                endpoint: cloud
                    .fabric()
                    .endpoint(MachineId((slaves + cfg.proxies + i) as u16)),
                cloud: Arc::clone(&cloud),
                slaves,
                proxies: cfg.proxies,
            })
            .collect();
        TrinityCluster {
            cloud,
            slaves,
            proxies,
            clients,
        }
    }

    /// The memory cloud (slave tier).
    pub fn cloud(&self) -> &Arc<MemoryCloud> {
        &self.cloud
    }

    /// Number of slaves.
    pub fn slaves(&self) -> usize {
        self.slaves
    }

    /// Graph handle bound to slave `m`.
    pub fn graph(&self, m: usize) -> GraphHandle {
        GraphHandle::new(Arc::clone(self.cloud.node(m)))
    }

    /// The `i`-th proxy.
    pub fn proxy(&self, i: usize) -> &TrinityProxy {
        &self.proxies[i]
    }

    /// The `i`-th client.
    pub fn client(&self, i: usize) -> &TrinityClient {
        &self.clients[i]
    }

    /// Stop the cluster.
    pub fn shutdown(&self) {
        self.cloud.shutdown();
    }
}

/// A Trinity proxy: handles messages, owns no data. Typical use is the
/// aggregator pattern — register a protocol handler that fans a request
/// out to all slaves and combines the partial results.
pub struct TrinityProxy {
    endpoint: Arc<Endpoint>,
    slaves: usize,
}

impl std::fmt::Debug for TrinityProxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrinityProxy")
            .field("machine", &self.endpoint.machine())
            .finish()
    }
}

impl TrinityProxy {
    /// The proxy's endpoint (for handler registration).
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// This proxy's machine id.
    pub fn machine(&self) -> MachineId {
        self.endpoint.machine()
    }

    /// Register an aggregating protocol: on each request, `per_slave` is
    /// called against every slave and the partial replies are folded with
    /// `combine`.
    pub fn register_aggregator<F, G>(
        &self,
        proto: ProtoId,
        slave_proto: ProtoId,
        prepare: F,
        combine: G,
    ) where
        F: Fn(&[u8]) -> Vec<u8> + Send + Sync + 'static,
        G: Fn(Vec<Vec<u8>>) -> Vec<u8> + Send + Sync + 'static,
    {
        let endpoint = Arc::clone(&self.endpoint);
        let slaves = self.slaves;
        self.endpoint.register(proto, move |_src, payload| {
            let slave_req = prepare(payload);
            let mut parts = Vec::with_capacity(slaves);
            for m in 0..slaves as u16 {
                if let Ok(reply) = endpoint.call(MachineId(m), slave_proto, &slave_req) {
                    parts.push(reply.into_vec());
                }
            }
            Some(combine(parts))
        });
    }
}

/// A Trinity client: the user-interface tier. Applications link the
/// Trinity library and reach the cluster through these APIs.
pub struct TrinityClient {
    endpoint: Arc<Endpoint>,
    cloud: Arc<MemoryCloud>,
    slaves: usize,
    proxies: usize,
}

impl std::fmt::Debug for TrinityClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrinityClient")
            .field("machine", &self.endpoint.machine())
            .finish()
    }
}

impl TrinityClient {
    /// The client's endpoint.
    pub fn endpoint(&self) -> &Arc<Endpoint> {
        &self.endpoint
    }

    /// Call a protocol on slave `m`.
    pub fn call_slave(
        &self,
        m: usize,
        proto: ProtoId,
        payload: &[u8],
    ) -> trinity_net::Result<FrameBuf> {
        self.endpoint.call(MachineId(m as u16), proto, payload)
    }

    /// Call a protocol on proxy `i`.
    pub fn call_proxy(
        &self,
        i: usize,
        proto: ProtoId,
        payload: &[u8],
    ) -> trinity_net::Result<FrameBuf> {
        self.endpoint
            .call(MachineId((self.slaves + i) as u16), proto, payload)
    }

    /// Read a cell through the slave tier (routed to the owner).
    pub fn get_cell(&self, id: u64) -> Result<Option<FrameBuf>, CloudError> {
        // Clients are not cloud nodes; route through the owner slave.
        let owner = self.cloud.node(0).table().machine_of(id);
        let raw = self
            .endpoint
            .call(owner, trinity_net::proto::FIRST_MEMCLOUD, &{
                let mut req = Vec::with_capacity(8);
                req.extend_from_slice(&id.to_le_bytes());
                req
            })
            .map_err(CloudError::Net)?;
        match raw.first() {
            // OK replies carry the cell's 8-byte version stamp after the
            // status; the client tier only wants the payload.
            // Zero-copy: the payload is a subslice of the reply frame.
            Some(0) if raw.len() >= 9 => Ok(Some(raw.slice(9..raw.len()))),
            Some(1) => Ok(None),
            _ => Err(CloudError::BadReply),
        }
    }

    /// Number of proxies configured.
    pub fn proxy_count(&self) -> usize {
        self.proxies
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roles_come_up_and_client_reads_cells() {
        let cluster = TrinityCluster::new(TrinityConfig::small(3));
        let node = cluster.cloud().node(0);
        let id = node.alloc_id();
        node.put(id, b"visible to the client tier").unwrap();
        let got = cluster.client(0).get_cell(id).unwrap();
        assert_eq!(got.as_deref(), Some(&b"visible to the client tier"[..]));
        assert_eq!(cluster.client(0).get_cell(0xABCDEF).unwrap(), None);
        cluster.shutdown();
    }

    #[test]
    fn proxy_aggregates_across_slaves() {
        let cluster = TrinityCluster::new(TrinityConfig::with_proxies(4, 1));
        const SLAVE_COUNT: u16 = 40;
        const PROXY_SUM: u16 = 41;
        // Each slave exposes its local cell count.
        for m in 0..4 {
            let node = Arc::clone(cluster.cloud().node(m));
            cluster
                .cloud()
                .node(m)
                .endpoint()
                .register(SLAVE_COUNT, move |_src, _p| {
                    Some((node.store().cell_count() as u64).to_le_bytes().to_vec())
                });
        }
        // The proxy sums the per-slave counts.
        cluster.proxy(0).register_aggregator(
            PROXY_SUM,
            SLAVE_COUNT,
            |req| req.to_vec(),
            |parts| {
                let total: u64 = parts
                    .iter()
                    .map(|p| u64::from_le_bytes(p[..8].try_into().unwrap()))
                    .sum();
                total.to_le_bytes().to_vec()
            },
        );
        for i in 0..25u64 {
            cluster.cloud().node(0).put(i, b"x").unwrap();
        }
        let reply = cluster.client(0).call_proxy(0, PROXY_SUM, b"").unwrap();
        assert_eq!(u64::from_le_bytes(reply[..8].try_into().unwrap()), 25);
        cluster.shutdown();
    }
}
