//! The vertex-centric BSP runtime (paper §5.3–5.4).
//!
//! A computation is expressed as iterative supersteps; in each superstep
//! every vertex acts as an independent agent: it receives the messages
//! sent to it in the previous superstep, computes, sends messages, and may
//! vote to halt (a halted vertex is reawakened by an incoming message).
//!
//! Two models are supported, mirroring the paper's comparison:
//!
//! * the **general model** (Pregel): a vertex may message *any* vertex —
//!   use [`VertexContext::send`];
//! * the **restrictive model** (Trinity): a vertex messages a fixed set,
//!   usually its neighbors — use [`VertexContext::send_to_neighbors`].
//!   The fixed, predictable communication pattern is what enables the
//!   §5.4 optimizations.
//!
//! Optimizations (all measurable, all switchable for the ablation
//! benchmarks):
//!
//! * **transparent packing** ([`MessagingMode::Packed`]): vertex messages
//!   ride the fabric's per-destination pack buffers; `Unpacked` flushes
//!   every message as its own transfer — the naive cost the paper's
//!   packing exists to avoid;
//! * **hub buffering** ([`BspConfig::hub_threshold`]): a high-degree
//!   vertex broadcasting the same value to its neighbors sends *one*
//!   frame per remote machine per iteration; the receiving machine fans
//!   it out locally through a subscriber index built at job setup. On a
//!   power-law graph with `γ = 2.16`, buffering the top few percent of
//!   vertices covers most message deliveries (paper: 2% of hubs reach 80%
//!   of vertices);
//! * **sender-side combining** ([`BspConfig::combine`]): commutative
//!   messages to the same destination vertex are merged before leaving
//!   the machine (Pregel's combiner).
//!
//! Superstep synchronization uses message fences: after computing, each
//! machine tells every peer how many data frames it sent; a machine
//! enters the barrier only once it has received every announced frame, so
//! no message of superstep `s` can leak into superstep `s + 1`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};

use parking_lot::{Condvar, Mutex};

use trinity_graph::{DistributedGraph, GraphHandle};
use trinity_memcloud::CellId;
use trinity_net::{
    current_deadline, deadline_expired, DeadlineGuard, Endpoint, MachineId, StatsDelta,
};
use trinity_obs::{next_trace_id, Counter, Histogram, TraceGuard};

use crate::proto;

/// How vertex messages travel between machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MessagingMode {
    /// Small messages are transparently packed per destination (§4.2).
    Packed,
    /// Every message is its own transfer — the naive baseline.
    Unpacked,
}

/// BSP job configuration.
#[derive(Debug, Clone)]
pub struct BspConfig {
    pub messaging: MessagingMode,
    /// Out-degree at or above which a broadcasting vertex is treated as a
    /// hub (None disables hub buffering).
    pub hub_threshold: Option<usize>,
    /// Merge combinable messages sender-side.
    pub combine: bool,
    /// Hard superstep limit.
    pub max_supersteps: usize,
}

impl Default for BspConfig {
    fn default() -> Self {
        BspConfig {
            messaging: MessagingMode::Packed,
            hub_threshold: Some(128),
            combine: false,
            max_supersteps: 64,
        }
    }
}

/// A vertex-centric program.
pub trait VertexProgram: Send + Sync + 'static {
    /// Per-vertex state carried across supersteps.
    type State: Send + 'static;
    /// The message type.
    type Msg: Send + Clone + 'static;

    /// Initialize a vertex's state before superstep 0, with zero-copy
    /// access to the vertex's cell (adjacency, attributes).
    fn init(&self, id: CellId, view: &trinity_graph::NodeView<'_>) -> Self::State;

    /// One superstep for one vertex.
    fn compute(
        &self,
        ctx: &mut VertexContext<'_, Self::Msg>,
        id: CellId,
        state: &mut Self::State,
        msgs: &[Self::Msg],
    );

    /// Serialize a message.
    fn encode_msg(msg: &Self::Msg) -> Vec<u8>;
    /// Deserialize a message.
    fn decode_msg(bytes: &[u8]) -> Option<Self::Msg>;

    /// Serialize a vertex state (checkpointing, paper §6.2).
    fn encode_state(state: &Self::State) -> Vec<u8>;
    /// Deserialize a vertex state.
    fn decode_state(bytes: &[u8]) -> Option<Self::State>;

    /// Merge `b` into `a` when messages to the same vertex are combinable
    /// (return false to keep them separate). Default: not combinable.
    fn combine(_a: &mut Self::Msg, _b: &Self::Msg) -> bool {
        false
    }
}

/// Per-vertex compute context.
pub struct VertexContext<'a, M> {
    superstep: usize,
    outs: &'a [CellId],
    sends: Vec<(CellId, M)>,
    broadcast: Option<M>,
    halt: bool,
}

impl<'a, M> VertexContext<'a, M> {
    /// Current superstep (0-based).
    pub fn superstep(&self) -> usize {
        self.superstep
    }

    /// The vertex's out-neighbors.
    pub fn out_neighbors(&self) -> &'a [CellId] {
        self.outs
    }

    /// General model: message any vertex.
    pub fn send(&mut self, dst: CellId, msg: M) {
        self.sends.push((dst, msg));
    }

    /// Restrictive model: send the same message to every out-neighbor.
    /// Eligible for hub buffering.
    pub fn send_to_neighbors(&mut self, msg: M) {
        self.broadcast = Some(msg);
    }

    /// Halt until reawakened by a message.
    pub fn vote_to_halt(&mut self) {
        self.halt = true;
    }
}

/// Outcome of a BSP run (or one checkpointed segment of a run).
pub struct BspResult<P: VertexProgram> {
    /// Final state of every vertex.
    pub states: HashMap<CellId, P::State>,
    /// Per-superstep measurements.
    pub reports: Vec<SuperstepReport>,
    /// True if the job reached quiescence (all halted, no messages);
    /// false if it stopped at the superstep limit.
    pub terminated: bool,
    /// Messages pending for the next superstep (empty when terminated).
    pub pending: HashMap<CellId, Vec<P::Msg>>,
    /// Vertices still active (empty when terminated).
    pub active: std::collections::HashSet<CellId>,
}

impl<P: VertexProgram> BspResult<P> {
    /// Number of supersteps executed.
    pub fn supersteps(&self) -> usize {
        self.reports.len()
    }

    /// Total modeled cluster seconds (compute + network + barriers).
    pub fn modeled_seconds(&self) -> f64 {
        self.reports.iter().map(|r| r.modeled_seconds).sum()
    }

    /// Turn this (non-terminated) result into the resume point for the
    /// next segment.
    pub fn into_resume(self) -> ResumePoint<P> {
        ResumePoint {
            states: self.states,
            pending: self.pending,
            active: self.active,
        }
    }
}

/// State needed to continue a BSP job from a superstep boundary.
pub struct ResumePoint<P: VertexProgram> {
    pub states: HashMap<CellId, P::State>,
    pub pending: HashMap<CellId, Vec<P::Msg>>,
    pub active: std::collections::HashSet<CellId>,
}

/// Measurements for one superstep.
#[derive(Debug, Clone, Default)]
pub struct SuperstepReport {
    pub superstep: usize,
    /// Vertices computed this superstep.
    pub computed: usize,
    /// Vertices still active after the superstep.
    pub active_after: usize,
    /// Remote data frames sent (vertex messages + hub broadcasts).
    pub remote_messages: u64,
    /// Machine-local message deliveries (free).
    pub local_messages: u64,
    /// Wall-clock compute time, max over machines. On an oversubscribed
    /// simulation host this includes scheduler interference; prefer
    /// [`SuperstepReport::compute_parallel_seconds`] for modeled time.
    pub compute_seconds: f64,
    /// Aggregate compute work divided by the machine count — the compute
    /// time an actual cluster (one real CPU per machine) would take,
    /// assuming even progress.
    pub compute_parallel_seconds: f64,
    /// Network traffic delta, max over machines (the bottleneck link).
    pub max_machine_net: StatsDelta,
    /// Modeled cluster seconds: parallel compute + priced bottleneck
    /// traffic + barrier.
    pub modeled_seconds: f64,
}

// ---------------------------------------------------------------------
// Wire formats
// ---------------------------------------------------------------------

fn encode_data_frame(superstep: u32, dst: CellId, msg: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + msg.len());
    out.extend_from_slice(&superstep.to_le_bytes());
    out.extend_from_slice(&dst.to_le_bytes());
    out.extend_from_slice(msg);
    out
}

fn decode_data_frame(data: &[u8]) -> Option<(u32, CellId, &[u8])> {
    if data.len() < 12 {
        return None;
    }
    Some((
        u32::from_le_bytes(data[..4].try_into().unwrap()),
        u64::from_le_bytes(data[4..12].try_into().unwrap()),
        &data[12..],
    ))
}

// ---------------------------------------------------------------------
// Per-machine runtime
// ---------------------------------------------------------------------

struct FenceState {
    /// Per-peer announced frame count for the current superstep.
    expected: Vec<Option<u64>>,
    /// Per-peer frames received so far for the current superstep.
    got: Vec<u64>,
}

/// Cached `bsp.*` metric handles for one machine's runtime (resolved once
/// per job; superstep hot paths touch only relaxed atomics).
struct BspMetrics {
    /// Supersteps this machine drove (`bsp.supersteps`).
    supersteps: Arc<Counter>,
    /// Vertices computed (`bsp.computed`).
    computed: Arc<Counter>,
    /// Remote data frames sent, messages + hub broadcasts (`bsp.frames.remote`).
    frames_remote: Arc<Counter>,
    /// Machine-local deliveries (`bsp.frames.local`).
    frames_local: Arc<Counter>,
    /// Hub broadcast frames sent, one per subscribed machine (`bsp.hub.broadcasts`).
    hub_broadcasts: Arc<Counter>,
    /// Vertices fanned out to by incoming hub broadcasts (`bsp.hub.fanout`).
    hub_fanout: Arc<Counter>,
    /// Per-superstep compute CPU time, µs (`bsp.compute.us`).
    compute_us: Arc<Histogram>,
    /// Per-superstep wall time including the fence, µs (`bsp.superstep.us`).
    superstep_us: Arc<Histogram>,
}

impl BspMetrics {
    fn new(endpoint: &Endpoint) -> Self {
        let obs = endpoint.obs();
        BspMetrics {
            supersteps: obs.counter("bsp.supersteps"),
            computed: obs.counter("bsp.computed"),
            frames_remote: obs.counter("bsp.frames.remote"),
            frames_local: obs.counter("bsp.frames.local"),
            hub_broadcasts: obs.counter("bsp.hub.broadcasts"),
            hub_fanout: obs.counter("bsp.hub.fanout"),
            compute_us: obs.histogram("bsp.compute.us"),
            superstep_us: obs.histogram("bsp.superstep.us"),
        }
    }
}

struct MachineRt<P: VertexProgram> {
    endpoint: Arc<Endpoint>,
    machines: usize,
    /// Inbox for the *next* superstep (handlers write, driver swaps out).
    inbox_next: Mutex<HashMap<CellId, Vec<P::Msg>>>,
    local_deliveries: AtomicU64,
    fence: Mutex<FenceState>,
    fence_cv: Condvar,
    /// Hub subscriber index: remote hub id → local vertices that list it
    /// as an (in-)neighbor.
    subs: Mutex<HashMap<CellId, Vec<CellId>>>,
    metrics: BspMetrics,
}

impl<P: VertexProgram> MachineRt<P> {
    fn deliver(&self, dst: CellId, msg: P::Msg) {
        self.inbox_next.lock().entry(dst).or_default().push(msg);
    }

    fn count_frame(&self, src: MachineId) {
        let mut f = self.fence.lock();
        f.got[src.0 as usize] += 1;
        self.fence_cv.notify_all();
    }

    /// Block until every peer's fence has arrived and every announced
    /// frame has been received.
    fn await_quiescence(&self, self_machine: usize) {
        let mut f = self.fence.lock();
        loop {
            let done = (0..self.machines)
                .all(|p| p == self_machine || matches!(f.expected[p], Some(e) if f.got[p] >= e));
            if done {
                // Reset for the next superstep.
                for p in 0..self.machines {
                    f.expected[p] = None;
                    f.got[p] = 0;
                }
                return;
            }
            self.fence_cv.wait(&mut f);
        }
    }
}

/// The distributed BSP job runner.
pub struct BspRunner<P: VertexProgram> {
    graph: Arc<DistributedGraph>,
    program: Arc<P>,
    cfg: BspConfig,
}

impl<P: VertexProgram> BspRunner<P> {
    /// Prepare a job over `graph`.
    pub fn new(graph: Arc<DistributedGraph>, program: P, cfg: BspConfig) -> Self {
        BspRunner {
            graph,
            program: Arc::new(program),
            cfg,
        }
    }

    /// The graph this job runs over.
    pub fn graph(&self) -> &Arc<DistributedGraph> {
        &self.graph
    }

    /// Execute to termination (all vertices halted and no messages in
    /// flight) or to the superstep limit. Returns final vertex states and
    /// per-superstep measurements.
    pub fn run(&self) -> BspResult<P> {
        self.run_resumed(None, 0)
    }

    /// Execute starting from a resume point (checkpoint restart), with
    /// superstep numbering offset by `superstep_offset` in the reports.
    pub fn run_resumed(
        &self,
        resume: Option<ResumePoint<P>>,
        superstep_offset: usize,
    ) -> BspResult<P> {
        let machines = self.graph.machines();
        // Split the resume point by owning machine.
        let per_machine_resume: Vec<Mutex<Option<MachineResume<P>>>> = {
            let mut split: Vec<MachineResume<P>> = (0..machines)
                .map(|_| MachineResume {
                    states: HashMap::new(),
                    pending: HashMap::new(),
                    active: Default::default(),
                })
                .collect();
            if let Some(r) = resume {
                let table = self.graph.cloud().node(0).table();
                for (id, st) in r.states {
                    split[table.machine_of(id).0 as usize].states.insert(id, st);
                }
                for (id, msgs) in r.pending {
                    split[table.machine_of(id).0 as usize]
                        .pending
                        .insert(id, msgs);
                }
                for id in r.active {
                    split[table.machine_of(id).0 as usize].active.insert(id);
                }
                split.into_iter().map(|mr| Mutex::new(Some(mr))).collect()
            } else {
                (0..machines).map(|_| Mutex::new(None)).collect()
            }
        };
        let rts: Vec<Arc<MachineRt<P>>> = (0..machines)
            .map(|m| {
                let endpoint = Arc::clone(self.graph.cloud().node(m).endpoint());
                Arc::new(MachineRt {
                    metrics: BspMetrics::new(&endpoint),
                    endpoint,
                    machines,
                    inbox_next: Mutex::new(HashMap::new()),
                    local_deliveries: AtomicU64::new(0),
                    fence: Mutex::new(FenceState {
                        expected: vec![None; machines],
                        got: vec![0; machines],
                    }),
                    fence_cv: Condvar::new(),
                    subs: Mutex::new(HashMap::new()),
                })
            })
            .collect();
        // Register message handlers.
        for (m, rt) in rts.iter().enumerate() {
            let endpoint = Arc::clone(&rt.endpoint);
            // Vertex data messages.
            {
                let rt = Arc::clone(rt);
                endpoint.register(proto::BSP_MSG, move |src, data| {
                    if let Some((_s, dst, bytes)) = decode_data_frame(data) {
                        if let Some(msg) = P::decode_msg(bytes) {
                            rt.deliver(dst, msg);
                        }
                    }
                    rt.count_frame(src);
                    None
                });
            }
            // Hub broadcasts: fan out through the subscriber index.
            {
                let rt = Arc::clone(rt);
                endpoint.register(proto::BSP_HUB, move |src, data| {
                    // On a lapsed deadline the fan-out is skipped but the
                    // frame is still counted: fences must balance or the
                    // superstep would hang instead of finishing early.
                    if deadline_expired() {
                        rt.count_frame(src);
                        return None;
                    }
                    if let Some((_s, hub, bytes)) = decode_data_frame(data) {
                        if let Some(msg) = P::decode_msg(bytes) {
                            let subs = rt.subs.lock();
                            if let Some(targets) = subs.get(&hub) {
                                let mut inbox = rt.inbox_next.lock();
                                for &t in targets {
                                    inbox.entry(t).or_default().push(msg.clone());
                                }
                                rt.local_deliveries
                                    .fetch_add(targets.len() as u64, Ordering::Relaxed);
                                rt.metrics.hub_fanout.add(targets.len() as u64);
                            }
                        }
                    }
                    rt.count_frame(src);
                    None
                });
            }
            // Fences.
            {
                let rt = Arc::clone(rt);
                endpoint.register(proto::BSP_FENCE, move |src, data| {
                    if data.len() >= 12 {
                        let count = u64::from_le_bytes(data[4..12].try_into().unwrap());
                        let mut f = rt.fence.lock();
                        f.expected[src.0 as usize] = Some(count);
                        rt.fence_cv.notify_all();
                    }
                    None
                });
            }
            // Hub subscription discovery: given a peer's hub ids, scan the
            // local partition for vertices referencing them and remember
            // the subscriptions; reply with the subscribed subset.
            {
                let rt = Arc::clone(rt);
                let handle = self.graph.handle(m).clone();
                endpoint.register(proto::BSP_HUB_SETUP, move |_src, data| {
                    let hubs: std::collections::HashSet<CellId> = data
                        .chunks_exact(8)
                        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
                        .collect();
                    let mut found: HashMap<CellId, Vec<CellId>> = HashMap::new();
                    handle.for_each_local_node(|id, view| {
                        // In-neighbors when stored; otherwise the graph is
                        // undirected and out-neighbors are the same set.
                        if view.has_ins() {
                            for src_v in view.ins() {
                                if hubs.contains(&src_v) {
                                    found.entry(src_v).or_default().push(id);
                                }
                            }
                        } else {
                            for src_v in view.outs() {
                                if hubs.contains(&src_v) {
                                    found.entry(src_v).or_default().push(id);
                                }
                            }
                        }
                    });
                    let mut reply = Vec::with_capacity(found.len() * 8);
                    let mut subs = rt.subs.lock();
                    for (hub, targets) in found {
                        reply.extend_from_slice(&hub.to_le_bytes());
                        subs.insert(hub, targets);
                    }
                    Some(reply)
                });
            }
        }

        // One trace id for the whole job: every driver thread installs it,
        // so all BSP traffic (data frames, fences, hub setup calls) is
        // stamped with it and the job can be reconstructed from span rings
        // across the cluster.
        let trace = next_trace_id();
        // A serving-tier deadline installed on the submitting thread is
        // inherited by every machine driver: the job aborts between
        // supersteps once the budget lapses.
        let deadline = current_deadline();

        // Shared cross-machine coordination (control plane only).
        let barrier = Arc::new(Barrier::new(machines));
        let agg = Arc::new(Mutex::new(RoundAgg::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let terminated = Arc::new(AtomicBool::new(false));
        let reports = Arc::new(Mutex::new(Vec::<SuperstepReport>::new()));
        let finals = Arc::new(Mutex::new(FinalState::<P>::default()));

        std::thread::scope(|scope| {
            for m in 0..machines {
                let rt = Arc::clone(&rts[m]);
                let graph = Arc::clone(&self.graph);
                let program = Arc::clone(&self.program);
                let cfg = self.cfg.clone();
                let barrier = Arc::clone(&barrier);
                let agg = Arc::clone(&agg);
                let stop = Arc::clone(&stop);
                let terminated = Arc::clone(&terminated);
                let reports = Arc::clone(&reports);
                let finals = Arc::clone(&finals);
                let resume = per_machine_resume[m].lock().take();
                scope.spawn(move || {
                    machine_driver(DriverArgs {
                        m,
                        rt,
                        graph,
                        program,
                        cfg,
                        barrier,
                        agg,
                        stop,
                        terminated,
                        reports,
                        finals,
                        resume,
                        superstep_offset,
                        trace,
                        deadline,
                    })
                });
            }
        });

        let mut finals_guard = finals.lock();
        let mut reports_guard = reports.lock();
        let result = BspResult {
            states: std::mem::take(&mut finals_guard.states),
            reports: std::mem::take(&mut *reports_guard),
            terminated: terminated.load(Ordering::Acquire),
            pending: std::mem::take(&mut finals_guard.pending),
            active: std::mem::take(&mut finals_guard.active),
        };
        drop(reports_guard);
        drop(finals_guard);
        result
    }
}

/// Per-machine slice of a resume point.
struct MachineResume<P: VertexProgram> {
    states: HashMap<CellId, P::State>,
    pending: HashMap<CellId, Vec<P::Msg>>,
    active: std::collections::HashSet<CellId>,
}

/// Merged exit state of all drivers.
struct FinalState<P: VertexProgram> {
    states: HashMap<CellId, P::State>,
    pending: HashMap<CellId, Vec<P::Msg>>,
    active: std::collections::HashSet<CellId>,
}

impl<P: VertexProgram> Default for FinalState<P> {
    fn default() -> Self {
        FinalState {
            states: HashMap::new(),
            pending: HashMap::new(),
            active: Default::default(),
        }
    }
}

struct DriverArgs<P: VertexProgram> {
    m: usize,
    rt: Arc<MachineRt<P>>,
    graph: Arc<DistributedGraph>,
    program: Arc<P>,
    cfg: BspConfig,
    barrier: Arc<Barrier>,
    agg: Arc<Mutex<RoundAgg>>,
    stop: Arc<AtomicBool>,
    terminated: Arc<AtomicBool>,
    reports: Arc<Mutex<Vec<SuperstepReport>>>,
    finals: Arc<Mutex<FinalState<P>>>,
    resume: Option<MachineResume<P>>,
    superstep_offset: usize,
    trace: u64,
    deadline: u64,
}

#[derive(Default)]
struct RoundAgg {
    arrived: usize,
    active: usize,
    computed: usize,
    deliveries: u64,
    remote_frames: u64,
    local_frames: u64,
    compute_max: f64,
    compute_sum: f64,
    net_max: StatsDelta,
    decision_stop: bool,
}

fn machine_driver<P: VertexProgram>(args: DriverArgs<P>) {
    let DriverArgs {
        m,
        rt,
        graph,
        program,
        cfg,
        barrier,
        agg,
        stop,
        terminated,
        reports,
        finals,
        resume,
        superstep_offset,
        trace,
        deadline,
    } = args;
    // The job's trace id covers every send/call this driver thread makes,
    // and the submitter's deadline budget bounds them.
    let _trace_guard = TraceGuard::enter(trace);
    let _deadline_guard = DeadlineGuard::enter(deadline);
    let handle: &GraphHandle = graph.handle(m);
    let machines = graph.machines();
    let table = graph.cloud().node(m).table();
    let cost = graph.cloud().fabric().cost_model();

    // --- Setup: local vertex census + state init -----------------------
    // States are initialized during the census pass, where the program
    // gets zero-copy access to each vertex's cell.
    let mut local: Vec<(CellId, usize)> = Vec::new(); // (id, out_degree)
    let mut fresh_states: HashMap<CellId, P::State> = HashMap::new();
    {
        let resume_states = resume.as_ref().map(|r| &r.states);
        handle.for_each_local_node(|id, view| {
            local.push((id, view.out_degree()));
            // On resume, checkpointed states win; anything missing from
            // the checkpoint starts fresh.
            if resume_states.is_none_or(|s| !s.contains_key(&id)) {
                fresh_states.insert(id, program.init(id, &view));
            }
        });
    }
    local.sort_unstable();
    let (mut states, resume_pending, resume_active) = match resume {
        Some(r) => {
            let mut states = r.states;
            states.extend(fresh_states);
            (states, r.pending, Some(r.active))
        }
        None => (fresh_states, HashMap::new(), None),
    };
    let mut active: std::collections::HashSet<CellId> = match resume_active {
        Some(a) => a,
        None => local.iter().map(|&(id, _)| id).collect(),
    };

    // --- Setup: hub discovery ------------------------------------------
    // Hub buffering needs the receiving machines to know which of their
    // vertices are targets of a hub's broadcast, which requires reverse
    // traversal (symmetric out-lists or stored in-links). On a directed
    // graph loaded without in-links the optimization silently disables.
    let hub_allowed = graph.reverse_traversable();
    let mut hub_targets: HashMap<CellId, Vec<MachineId>> = HashMap::new();
    if !hub_allowed && cfg.hub_threshold.is_some() {
        // Keep barrier symmetry with the enabled path (none needed: the
        // decision is identical on every machine).
    }
    if let Some(threshold) = cfg.hub_threshold.filter(|_| hub_allowed) {
        let hubs: Vec<CellId> = local
            .iter()
            .filter(|&&(_, deg)| deg >= threshold)
            .map(|&(id, _)| id)
            .collect();
        barrier.wait();
        if !hubs.is_empty() {
            let mut req = Vec::with_capacity(hubs.len() * 8);
            for h in &hubs {
                req.extend_from_slice(&h.to_le_bytes());
            }
            for peer in 0..machines {
                if peer == m {
                    continue;
                }
                if let Ok(reply) =
                    rt.endpoint
                        .call(MachineId(peer as u16), proto::BSP_HUB_SETUP, &req)
                {
                    for c in reply.chunks_exact(8) {
                        let hub = u64::from_le_bytes(c.try_into().unwrap());
                        hub_targets
                            .entry(hub)
                            .or_default()
                            .push(MachineId(peer as u16));
                    }
                }
            }
        }
        barrier.wait();
    }

    // --- Supersteps ------------------------------------------------------
    let mut inbox: HashMap<CellId, Vec<P::Msg>> = resume_pending;
    let mut superstep = 0usize;
    loop {
        let net_before = rt.endpoint.stats().snapshot();
        let wall_start_us = rt.endpoint.obs().now_us();
        let t0 = crate::cputime::ThreadTimer::start();
        let mut sent_to: Vec<u64> = vec![0; machines];
        let mut outgoing: Vec<HashMap<CellId, P::Msg>> = vec![HashMap::new(); machines]; // combine buffers
        let mut computed = 0usize;
        let empty: Vec<P::Msg> = Vec::new();

        for &(id, _deg) in &local {
            let msgs = inbox.get(&id);
            if msgs.is_none() && !active.contains(&id) {
                continue;
            }
            computed += 1;
            let state = states.get_mut(&id).expect("state exists for local vertex");
            let msgs = msgs.unwrap_or(&empty);
            // Read the adjacency through a zero-copy view.
            let outs: Vec<CellId> = handle
                .with_node(id, |view| view.outs().collect())
                .ok()
                .flatten()
                .unwrap_or_default();
            let mut ctx = VertexContext {
                superstep: superstep_offset + superstep,
                outs: &outs,
                sends: Vec::new(),
                broadcast: None,
                halt: false,
            };
            program.compute(&mut ctx, id, state, msgs);
            if ctx.halt {
                active.remove(&id);
            } else {
                active.insert(id);
            }
            // Route the broadcast (restrictive model).
            if let Some(msg) = ctx.broadcast {
                let is_hub = hub_targets.contains_key(&id);
                let mut remote_machines_hit: Vec<bool> = vec![false; machines];
                for &dst in &outs {
                    let owner = table.machine_of(dst).0 as usize;
                    if owner == m {
                        rt.deliver(dst, msg.clone());
                        rt.local_deliveries.fetch_add(1, Ordering::Relaxed);
                    } else if is_hub {
                        remote_machines_hit[owner] = true;
                    } else {
                        enqueue(
                            &mut outgoing,
                            &mut sent_to,
                            &rt,
                            &cfg,
                            superstep,
                            owner,
                            dst,
                            &msg,
                            m,
                        );
                    }
                }
                if is_hub {
                    // One frame per machine that subscribes to this hub.
                    for &peer in hub_targets.get(&id).into_iter().flatten() {
                        let frame = encode_data_frame(superstep as u32, id, &P::encode_msg(&msg));
                        rt.endpoint.send(peer, proto::BSP_HUB, &frame);
                        rt.metrics.hub_broadcasts.inc();
                        if cfg.messaging == MessagingMode::Unpacked {
                            rt.endpoint.flush_to(peer);
                        }
                        sent_to[peer.0 as usize] += 1;
                    }
                }
            }
            // Route point sends (general model).
            for (dst, msg) in ctx.sends {
                let owner = table.machine_of(dst).0 as usize;
                if owner == m {
                    rt.deliver(dst, msg);
                    rt.local_deliveries.fetch_add(1, Ordering::Relaxed);
                } else {
                    enqueue(
                        &mut outgoing,
                        &mut sent_to,
                        &rt,
                        &cfg,
                        superstep,
                        owner,
                        dst,
                        &msg,
                        m,
                    );
                }
            }
        }
        // Flush combine buffers.
        if cfg.combine {
            for (peer, buf) in outgoing.iter_mut().enumerate() {
                for (dst, msg) in buf.drain() {
                    let frame = encode_data_frame(superstep as u32, dst, &P::encode_msg(&msg));
                    rt.endpoint
                        .send(MachineId(peer as u16), proto::BSP_MSG, &frame);
                    if cfg.messaging == MessagingMode::Unpacked {
                        rt.endpoint.flush_to(MachineId(peer as u16));
                    }
                    sent_to[peer] += 1;
                }
            }
        }
        let compute_seconds = t0.elapsed_seconds();

        // Fence: announce per-peer frame counts, flush everything, wait
        // until all announced frames (from every peer) have arrived.
        for (peer, &sent) in sent_to.iter().enumerate() {
            if peer == m {
                continue;
            }
            let mut fence = Vec::with_capacity(12);
            fence.extend_from_slice(&(superstep as u32).to_le_bytes());
            fence.extend_from_slice(&sent.to_le_bytes());
            rt.endpoint
                .send(MachineId(peer as u16), proto::BSP_FENCE, &fence);
            rt.endpoint.flush_to(MachineId(peer as u16));
        }
        rt.endpoint.flush();
        rt.await_quiescence(m);
        barrier.wait();

        // Swap inboxes; aggregate the round.
        inbox = std::mem::take(&mut *rt.inbox_next.lock());
        // Message arrivals reactivate halted vertices.
        for id in inbox.keys() {
            if states.contains_key(id) {
                active.insert(*id);
            }
        }
        let net_delta = rt.endpoint.stats().delta(&net_before);
        let local_delivered = rt.local_deliveries.swap(0, Ordering::Relaxed);
        let frames_sent: u64 = sent_to.iter().sum();
        rt.metrics.supersteps.inc();
        rt.metrics.computed.add(computed as u64);
        rt.metrics.frames_remote.add(frames_sent);
        rt.metrics.frames_local.add(local_delivered);
        rt.metrics.compute_us.record((compute_seconds * 1e6) as u64);
        rt.metrics
            .superstep_us
            .record(rt.endpoint.obs().now_us().saturating_sub(wall_start_us));
        rt.endpoint.obs().span(
            "bsp.superstep",
            proto::BSP_MSG,
            net_delta.remote_bytes,
            frames_sent.min(u32::MAX as u64) as u32,
            wall_start_us,
        );
        {
            let mut a = agg.lock();
            a.arrived += 1;
            a.active += active.len();
            a.computed += computed;
            a.deliveries += inbox.len() as u64;
            a.remote_frames += frames_sent;
            a.local_frames += local_delivered;
            a.compute_max = a.compute_max.max(compute_seconds);
            a.compute_sum += compute_seconds;
            if cost.transfer_seconds(&net_delta) > cost.transfer_seconds(&a.net_max) {
                a.net_max = net_delta;
            }
        }
        let leader = barrier.wait().is_leader();
        if leader {
            let mut a = agg.lock();
            let quiet = a.deliveries == 0 && a.active == 0;
            // Stop on quiescence, the superstep cap, or a lapsed serving
            // deadline (the job ends un-terminated with partial state).
            a.decision_stop = quiet || superstep + 1 >= cfg.max_supersteps || deadline_expired();
            let compute_parallel = a.compute_sum / machines as f64;
            let modeled = compute_parallel
                + cost.transfer_seconds(&a.net_max)
                + 2.0 * cost.envelope_latency_s * (machines as f64).log2().max(1.0);
            reports.lock().push(SuperstepReport {
                superstep: superstep_offset + superstep,
                computed: a.computed,
                active_after: a.active,
                remote_messages: a.remote_frames,
                local_messages: a.local_frames,
                compute_seconds: a.compute_max,
                compute_parallel_seconds: compute_parallel,
                max_machine_net: a.net_max,
                modeled_seconds: modeled,
            });
            if a.decision_stop {
                if quiet {
                    terminated.store(true, Ordering::Release);
                }
                stop.store(true, Ordering::Release);
            }
            *a = RoundAgg::default();
        }
        barrier.wait();
        superstep += 1;
        if stop.load(Ordering::Acquire) {
            break;
        }
    }
    // Export this machine's slice of the job state (checkpoint material).
    let mut f = finals.lock();
    f.states.extend(states);
    f.pending.extend(inbox);
    f.active.extend(active);
}

/// Queue one remote vertex message, combining when enabled.
#[allow(clippy::too_many_arguments)]
fn enqueue<P: VertexProgram>(
    outgoing: &mut [HashMap<CellId, P::Msg>],
    sent_to: &mut [u64],
    rt: &MachineRt<P>,
    cfg: &BspConfig,
    superstep: usize,
    owner: usize,
    dst: CellId,
    msg: &P::Msg,
    _self_machine: usize,
) {
    if cfg.combine {
        match outgoing[owner].entry(dst) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                if P::combine(e.get_mut(), msg) {
                    return;
                }
                // Not combinable after all: ship the buffered one and
                // replace it.
                let prev = e.insert(msg.clone());
                let frame = encode_data_frame(superstep as u32, dst, &P::encode_msg(&prev));
                rt.endpoint
                    .send(MachineId(owner as u16), proto::BSP_MSG, &frame);
                sent_to[owner] += 1;
                return;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(msg.clone());
                return;
            }
        }
    }
    let frame = encode_data_frame(superstep as u32, dst, &P::encode_msg(msg));
    rt.endpoint
        .send(MachineId(owner as u16), proto::BSP_MSG, &frame);
    if cfg.messaging == MessagingMode::Unpacked {
        rt.endpoint.flush_to(MachineId(owner as u16));
    }
    sent_to[owner] += 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use trinity_graph::{load_graph, Csr, LoadOptions};
    use trinity_memcloud::{CloudConfig, MemoryCloud};

    /// Classic Pregel example: propagate the maximum vertex id.
    struct MaxValue;

    impl VertexProgram for MaxValue {
        type State = u64;
        type Msg = u64;

        fn init(&self, id: CellId, _view: &trinity_graph::NodeView<'_>) -> u64 {
            id
        }

        fn compute(
            &self,
            ctx: &mut VertexContext<'_, u64>,
            _id: CellId,
            state: &mut u64,
            msgs: &[u64],
        ) {
            let before = *state;
            for &m in msgs {
                *state = (*state).max(m);
            }
            if ctx.superstep() == 0 || *state > before {
                ctx.send_to_neighbors(*state);
            }
            ctx.vote_to_halt();
        }

        fn encode_msg(m: &u64) -> Vec<u8> {
            m.to_le_bytes().to_vec()
        }

        fn decode_msg(b: &[u8]) -> Option<u64> {
            Some(u64::from_le_bytes(b.try_into().ok()?))
        }

        fn encode_state(s: &u64) -> Vec<u8> {
            s.to_le_bytes().to_vec()
        }

        fn decode_state(b: &[u8]) -> Option<u64> {
            Some(u64::from_le_bytes(b.try_into().ok()?))
        }

        fn combine(a: &mut u64, b: &u64) -> bool {
            *a = (*a).max(*b);
            true
        }
    }

    fn run_max(csr: &Csr, machines: usize, cfg: BspConfig) -> BspResult<MaxValue> {
        let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(machines)));
        let graph = Arc::new(load_graph(Arc::clone(&cloud), csr, &LoadOptions::default()).unwrap());
        let result = BspRunner::new(graph, MaxValue, cfg).run();
        cloud.shutdown();
        result
    }

    fn ring(n: usize) -> Csr {
        let edges: Vec<(u64, u64)> = (0..n as u64).map(|v| (v, (v + 1) % n as u64)).collect();
        Csr::undirected_from_edges(n, &edges, true)
    }

    #[test]
    fn max_propagation_converges_on_a_ring() {
        let n = 40;
        let r = run_max(&ring(n), 3, BspConfig::default());
        assert_eq!(r.states.len(), n);
        assert!(
            r.states.values().all(|&v| v == (n - 1) as u64),
            "all vertices learn the max"
        );
        // A ring needs about n/2 supersteps to converge, then one quiet step.
        assert!(
            r.supersteps() >= n / 2 && r.supersteps() <= n,
            "{} supersteps",
            r.supersteps()
        );
    }

    #[test]
    fn terminates_immediately_when_everyone_halts_silently() {
        struct Silent;
        impl VertexProgram for Silent {
            type State = ();
            type Msg = u64;
            fn init(&self, _id: CellId, _view: &trinity_graph::NodeView<'_>) {}
            fn compute(
                &self,
                ctx: &mut VertexContext<'_, u64>,
                _id: CellId,
                _s: &mut (),
                _m: &[u64],
            ) {
                ctx.vote_to_halt();
            }
            fn encode_msg(m: &u64) -> Vec<u8> {
                m.to_le_bytes().to_vec()
            }
            fn decode_msg(b: &[u8]) -> Option<u64> {
                Some(u64::from_le_bytes(b.try_into().ok()?))
            }
            fn encode_state(_s: &()) -> Vec<u8> {
                Vec::new()
            }
            fn decode_state(_b: &[u8]) -> Option<()> {
                Some(())
            }
        }
        let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(2)));
        let graph =
            Arc::new(load_graph(Arc::clone(&cloud), &ring(10), &LoadOptions::default()).unwrap());
        let r = BspRunner::new(graph, Silent, BspConfig::default()).run();
        assert_eq!(r.supersteps(), 1);
        cloud.shutdown();
    }

    #[test]
    fn all_messaging_modes_agree() {
        let csr = trinity_graphgen::social(200, 10, 3);
        let base = run_max(
            &csr,
            3,
            BspConfig {
                hub_threshold: None,
                ..BspConfig::default()
            },
        );
        for cfg in [
            BspConfig {
                messaging: MessagingMode::Unpacked,
                hub_threshold: None,
                ..BspConfig::default()
            },
            BspConfig {
                hub_threshold: Some(8),
                ..BspConfig::default()
            },
            BspConfig {
                combine: true,
                hub_threshold: None,
                ..BspConfig::default()
            },
            BspConfig {
                combine: true,
                hub_threshold: Some(4),
                ..BspConfig::default()
            },
        ] {
            let r = run_max(&csr, 3, cfg.clone());
            assert_eq!(r.states, base.states, "config {cfg:?} changed the results");
        }
    }

    #[test]
    fn hub_buffering_reduces_remote_messages_on_power_law() {
        let csr = trinity_graphgen::power_law(2_000, 2.16, 1, 400, 5);
        let plain = run_max(
            &csr,
            4,
            BspConfig {
                hub_threshold: None,
                combine: false,
                ..BspConfig::default()
            },
        );
        let hubbed = run_max(
            &csr,
            4,
            BspConfig {
                hub_threshold: Some(8),
                combine: false,
                ..BspConfig::default()
            },
        );
        assert_eq!(plain.states, hubbed.states);
        let plain_msgs: u64 = plain.reports.iter().map(|r| r.remote_messages).sum();
        let hub_msgs: u64 = hubbed.reports.iter().map(|r| r.remote_messages).sum();
        assert!(
            (hub_msgs as f64) < 0.75 * plain_msgs as f64,
            "hub buffering should cut remote frames by >25%: {hub_msgs} vs {plain_msgs}"
        );
    }

    #[test]
    fn hub_buffering_collapses_star_broadcasts() {
        // A star: node 0 connects to everyone. Broadcasting from the hub
        // should cost one frame per machine instead of one per neighbor.
        let n = 800;
        let edges: Vec<(u64, u64)> = (1..n as u64).map(|v| (0, v)).collect();
        let csr = Csr::undirected_from_edges(n, &edges, true);
        let plain = run_max(
            &csr,
            4,
            BspConfig {
                hub_threshold: None,
                combine: false,
                ..BspConfig::default()
            },
        );
        let hubbed = run_max(
            &csr,
            4,
            BspConfig {
                hub_threshold: Some(100),
                combine: false,
                ..BspConfig::default()
            },
        );
        assert_eq!(plain.states, hubbed.states);
        // Superstep 0: the hub alone sends ~600 remote frames plain,
        // but only <= 3 hub frames when buffered (leaves send to node 0
        // either way).
        let plain_msgs: u64 = plain.reports.iter().map(|r| r.remote_messages).sum();
        let hub_msgs: u64 = hubbed.reports.iter().map(|r| r.remote_messages).sum();
        assert!(
            hub_msgs * 3 < plain_msgs * 2,
            "star hub should collapse broadcasts: {hub_msgs} vs {plain_msgs}"
        );
    }

    #[test]
    fn packing_reduces_envelopes_not_frames() {
        let csr = trinity_graphgen::social(400, 16, 8);
        let packed = run_max(
            &csr,
            3,
            BspConfig {
                hub_threshold: None,
                ..BspConfig::default()
            },
        );
        let unpacked = run_max(
            &csr,
            3,
            BspConfig {
                messaging: MessagingMode::Unpacked,
                hub_threshold: None,
                ..BspConfig::default()
            },
        );
        assert_eq!(packed.states, unpacked.states);
        let env_packed: u64 = packed
            .reports
            .iter()
            .map(|r| r.max_machine_net.remote_envelopes)
            .sum();
        let env_unpacked: u64 = unpacked
            .reports
            .iter()
            .map(|r| r.max_machine_net.remote_envelopes)
            .sum();
        assert!(
            env_packed * 3 < env_unpacked,
            "packing should collapse envelopes: {env_packed} vs {env_unpacked}"
        );
        assert!(packed.modeled_seconds() < unpacked.modeled_seconds());
    }

    #[test]
    fn general_model_point_sends_reach_arbitrary_vertices() {
        /// Every vertex sends its id to vertex 0 in superstep 0; vertex 0
        /// sums what it received.
        struct SendToZero;
        impl VertexProgram for SendToZero {
            type State = u64;
            type Msg = u64;
            fn init(&self, _id: CellId, _view: &trinity_graph::NodeView<'_>) -> u64 {
                0
            }
            fn compute(
                &self,
                ctx: &mut VertexContext<'_, u64>,
                id: CellId,
                state: &mut u64,
                msgs: &[u64],
            ) {
                if ctx.superstep() == 0 && id != 0 {
                    ctx.send(0, id);
                }
                for &m in msgs {
                    *state += m;
                }
                ctx.vote_to_halt();
            }
            fn encode_msg(m: &u64) -> Vec<u8> {
                m.to_le_bytes().to_vec()
            }
            fn decode_msg(b: &[u8]) -> Option<u64> {
                Some(u64::from_le_bytes(b.try_into().ok()?))
            }
            fn encode_state(s: &u64) -> Vec<u8> {
                s.to_le_bytes().to_vec()
            }
            fn decode_state(b: &[u8]) -> Option<u64> {
                Some(u64::from_le_bytes(b.try_into().ok()?))
            }
        }
        let n = 30u64;
        let cloud = Arc::new(MemoryCloud::new(CloudConfig::small(3)));
        let graph = Arc::new(
            load_graph(
                Arc::clone(&cloud),
                &ring(n as usize),
                &LoadOptions::default(),
            )
            .unwrap(),
        );
        let r = BspRunner::new(
            graph,
            SendToZero,
            BspConfig {
                hub_threshold: None,
                ..BspConfig::default()
            },
        )
        .run();
        assert_eq!(r.states[&0], (1..n).sum::<u64>());
        cloud.shutdown();
    }
}
